/root/repo/target/release/deps/squery_streaming-4df6c6b57384d66b.d: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

/root/repo/target/release/deps/libsquery_streaming-4df6c6b57384d66b.rlib: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

/root/repo/target/release/deps/libsquery_streaming-4df6c6b57384d66b.rmeta: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

crates/streaming/src/lib.rs:
crates/streaming/src/checkpoint.rs:
crates/streaming/src/dag.rs:
crates/streaming/src/message.rs:
crates/streaming/src/runtime.rs:
crates/streaming/src/source.rs:
crates/streaming/src/state.rs:
crates/streaming/src/worker.rs:
