/root/repo/target/release/deps/squery_sql-6a8056f9fcfa3897.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs

/root/repo/target/release/deps/libsquery_sql-6a8056f9fcfa3897.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs

/root/repo/target/release/deps/libsquery_sql-6a8056f9fcfa3897.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/catalog.rs:
crates/sql/src/display.rs:
crates/sql/src/engine.rs:
crates/sql/src/exec.rs:
crates/sql/src/expr.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/plan.rs:
crates/sql/src/systables.rs:
crates/sql/src/tables.rs:
