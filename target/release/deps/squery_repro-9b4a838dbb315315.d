/root/repo/target/release/deps/squery_repro-9b4a838dbb315315.d: src/lib.rs

/root/repo/target/release/deps/libsquery_repro-9b4a838dbb315315.rlib: src/lib.rs

/root/repo/target/release/deps/libsquery_repro-9b4a838dbb315315.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
