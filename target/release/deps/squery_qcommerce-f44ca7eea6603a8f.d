/root/repo/target/release/deps/squery_qcommerce-f44ca7eea6603a8f.d: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

/root/repo/target/release/deps/libsquery_qcommerce-f44ca7eea6603a8f.rlib: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

/root/repo/target/release/deps/libsquery_qcommerce-f44ca7eea6603a8f.rmeta: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

crates/qcommerce/src/lib.rs:
crates/qcommerce/src/events.rs:
crates/qcommerce/src/pipeline.rs:
crates/qcommerce/src/queries.rs:
