/root/repo/target/release/deps/squery_tspoon-2656456bbe5f4708.d: crates/tspoon/src/lib.rs

/root/repo/target/release/deps/libsquery_tspoon-2656456bbe5f4708.rlib: crates/tspoon/src/lib.rs

/root/repo/target/release/deps/libsquery_tspoon-2656456bbe5f4708.rmeta: crates/tspoon/src/lib.rs

crates/tspoon/src/lib.rs:
