/root/repo/target/release/deps/paper_figures-2e1aaa73f6a377df.d: crates/bench/src/bin/paper_figures.rs

/root/repo/target/release/deps/paper_figures-2e1aaa73f6a377df: crates/bench/src/bin/paper_figures.rs

crates/bench/src/bin/paper_figures.rs:
