/root/repo/target/release/deps/squery_bench-261f37c5ea21f0e7.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

/root/repo/target/release/deps/libsquery_bench-261f37c5ea21f0e7.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

/root/repo/target/release/deps/libsquery_bench-261f37c5ea21f0e7.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scale.rs:
crates/bench/src/util.rs:
