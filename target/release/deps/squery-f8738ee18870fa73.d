/root/repo/target/release/deps/squery-f8738ee18870fa73.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs

/root/repo/target/release/deps/libsquery-f8738ee18870fa73.rlib: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs

/root/repo/target/release/deps/libsquery-f8738ee18870fa73.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/config.rs:
crates/core/src/direct.rs:
crates/core/src/isolation.rs:
crates/core/src/overview.rs:
crates/core/src/systables.rs:
crates/core/src/system.rs:
