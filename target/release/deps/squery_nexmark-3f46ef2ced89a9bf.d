/root/repo/target/release/deps/squery_nexmark-3f46ef2ced89a9bf.d: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

/root/repo/target/release/deps/libsquery_nexmark-3f46ef2ced89a9bf.rlib: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

/root/repo/target/release/deps/libsquery_nexmark-3f46ef2ced89a9bf.rmeta: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

crates/nexmark/src/lib.rs:
crates/nexmark/src/generator.rs:
crates/nexmark/src/q6.rs:
