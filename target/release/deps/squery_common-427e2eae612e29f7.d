/root/repo/target/release/deps/squery_common-427e2eae612e29f7.d: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/release/deps/libsquery_common-427e2eae612e29f7.rlib: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/release/deps/libsquery_common-427e2eae612e29f7.rmeta: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/metrics.rs:
crates/common/src/partition.rs:
crates/common/src/schema.rs:
crates/common/src/telemetry.rs:
crates/common/src/time.rs:
crates/common/src/value.rs:
