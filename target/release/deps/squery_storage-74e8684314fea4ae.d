/root/repo/target/release/deps/squery_storage-74e8684314fea4ae.d: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

/root/repo/target/release/deps/libsquery_storage-74e8684314fea4ae.rlib: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

/root/repo/target/release/deps/libsquery_storage-74e8684314fea4ae.rmeta: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

crates/storage/src/lib.rs:
crates/storage/src/grid.rs:
crates/storage/src/imap.rs:
crates/storage/src/locks.rs:
crates/storage/src/partition_table.rs:
crates/storage/src/registry.rs:
crates/storage/src/replication.rs:
crates/storage/src/snapshot.rs:
