/root/repo/target/debug/examples/debugging_time_travel-6336105a0a922593.d: examples/debugging_time_travel.rs Cargo.toml

/root/repo/target/debug/examples/libdebugging_time_travel-6336105a0a922593.rmeta: examples/debugging_time_travel.rs Cargo.toml

examples/debugging_time_travel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
