/root/repo/target/debug/examples/qcommerce_monitoring-f8a3c79cad2916d8.d: examples/qcommerce_monitoring.rs

/root/repo/target/debug/examples/qcommerce_monitoring-f8a3c79cad2916d8: examples/qcommerce_monitoring.rs

examples/qcommerce_monitoring.rs:
