/root/repo/target/debug/examples/nexmark_analytics-1d530276496806d9.d: examples/nexmark_analytics.rs

/root/repo/target/debug/examples/nexmark_analytics-1d530276496806d9: examples/nexmark_analytics.rs

examples/nexmark_analytics.rs:
