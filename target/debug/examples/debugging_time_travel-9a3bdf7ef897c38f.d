/root/repo/target/debug/examples/debugging_time_travel-9a3bdf7ef897c38f.d: examples/debugging_time_travel.rs

/root/repo/target/debug/examples/debugging_time_travel-9a3bdf7ef897c38f: examples/debugging_time_travel.rs

examples/debugging_time_travel.rs:
