/root/repo/target/debug/examples/isolation_demo-84394f475dbe4558.d: examples/isolation_demo.rs Cargo.toml

/root/repo/target/debug/examples/libisolation_demo-84394f475dbe4558.rmeta: examples/isolation_demo.rs Cargo.toml

examples/isolation_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
