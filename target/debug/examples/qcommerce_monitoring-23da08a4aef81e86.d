/root/repo/target/debug/examples/qcommerce_monitoring-23da08a4aef81e86.d: examples/qcommerce_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libqcommerce_monitoring-23da08a4aef81e86.rmeta: examples/qcommerce_monitoring.rs Cargo.toml

examples/qcommerce_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
