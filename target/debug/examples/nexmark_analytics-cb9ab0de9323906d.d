/root/repo/target/debug/examples/nexmark_analytics-cb9ab0de9323906d.d: examples/nexmark_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libnexmark_analytics-cb9ab0de9323906d.rmeta: examples/nexmark_analytics.rs Cargo.toml

examples/nexmark_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
