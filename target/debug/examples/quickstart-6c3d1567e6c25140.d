/root/repo/target/debug/examples/quickstart-6c3d1567e6c25140.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6c3d1567e6c25140: examples/quickstart.rs

examples/quickstart.rs:
