/root/repo/target/debug/examples/isolation_demo-fbb623f165014edc.d: examples/isolation_demo.rs

/root/repo/target/debug/examples/isolation_demo-fbb623f165014edc: examples/isolation_demo.rs

examples/isolation_demo.rs:
