/root/repo/target/debug/examples/sql_shell-60efbf72cfd7b775.d: examples/sql_shell.rs

/root/repo/target/debug/examples/sql_shell-60efbf72cfd7b775: examples/sql_shell.rs

examples/sql_shell.rs:
