/root/repo/target/debug/deps/squery_qcommerce-e4da5078816798f9.d: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_qcommerce-e4da5078816798f9.rmeta: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs Cargo.toml

crates/qcommerce/src/lib.rs:
crates/qcommerce/src/events.rs:
crates/qcommerce/src/pipeline.rs:
crates/qcommerce/src/queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
