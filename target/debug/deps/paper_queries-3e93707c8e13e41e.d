/root/repo/target/debug/deps/paper_queries-3e93707c8e13e41e.d: tests/paper_queries.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_queries-3e93707c8e13e41e.rmeta: tests/paper_queries.rs tests/common/mod.rs Cargo.toml

tests/paper_queries.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
