/root/repo/target/debug/deps/squery_qcommerce-e1134bec9fd1934e.d: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

/root/repo/target/debug/deps/libsquery_qcommerce-e1134bec9fd1934e.rlib: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

/root/repo/target/debug/deps/libsquery_qcommerce-e1134bec9fd1934e.rmeta: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

crates/qcommerce/src/lib.rs:
crates/qcommerce/src/events.rs:
crates/qcommerce/src/pipeline.rs:
crates/qcommerce/src/queries.rs:
