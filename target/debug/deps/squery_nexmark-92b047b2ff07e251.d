/root/repo/target/debug/deps/squery_nexmark-92b047b2ff07e251.d: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

/root/repo/target/debug/deps/squery_nexmark-92b047b2ff07e251: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

crates/nexmark/src/lib.rs:
crates/nexmark/src/generator.rs:
crates/nexmark/src/q6.rs:
