/root/repo/target/debug/deps/storage_ops-a972805c464cfc89.d: crates/bench/benches/storage_ops.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_ops-a972805c464cfc89.rmeta: crates/bench/benches/storage_ops.rs Cargo.toml

crates/bench/benches/storage_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
