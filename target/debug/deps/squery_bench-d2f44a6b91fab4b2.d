/root/repo/target/debug/deps/squery_bench-d2f44a6b91fab4b2.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/squery_bench-d2f44a6b91fab4b2: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scale.rs:
crates/bench/src/util.rs:
