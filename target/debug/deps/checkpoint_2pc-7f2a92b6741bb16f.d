/root/repo/target/debug/deps/checkpoint_2pc-7f2a92b6741bb16f.d: crates/bench/benches/checkpoint_2pc.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_2pc-7f2a92b6741bb16f.rmeta: crates/bench/benches/checkpoint_2pc.rs Cargo.toml

crates/bench/benches/checkpoint_2pc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
