/root/repo/target/debug/deps/squery-4832a9fb68a80cf6.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libsquery-4832a9fb68a80cf6.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/config.rs:
crates/core/src/direct.rs:
crates/core/src/isolation.rs:
crates/core/src/overview.rs:
crates/core/src/systables.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
