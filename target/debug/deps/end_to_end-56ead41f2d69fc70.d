/root/repo/target/debug/deps/end_to_end-56ead41f2d69fc70.d: tests/end_to_end.rs tests/common/mod.rs

/root/repo/target/debug/deps/end_to_end-56ead41f2d69fc70: tests/end_to_end.rs tests/common/mod.rs

tests/end_to_end.rs:
tests/common/mod.rs:
