/root/repo/target/debug/deps/squery_sql-d761bf97c7f01a3e.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_sql-d761bf97c7f01a3e.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs Cargo.toml

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/catalog.rs:
crates/sql/src/display.rs:
crates/sql/src/engine.rs:
crates/sql/src/exec.rs:
crates/sql/src/expr.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/plan.rs:
crates/sql/src/systables.rs:
crates/sql/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
