/root/repo/target/debug/deps/squery_storage-9a394c19f28ee0c4.d: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

/root/repo/target/debug/deps/squery_storage-9a394c19f28ee0c4: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

crates/storage/src/lib.rs:
crates/storage/src/grid.rs:
crates/storage/src/imap.rs:
crates/storage/src/locks.rs:
crates/storage/src/partition_table.rs:
crates/storage/src/registry.rs:
crates/storage/src/replication.rs:
crates/storage/src/snapshot.rs:
