/root/repo/target/debug/deps/squery_tspoon-887b0f53139fe673.d: crates/tspoon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_tspoon-887b0f53139fe673.rmeta: crates/tspoon/src/lib.rs Cargo.toml

crates/tspoon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
