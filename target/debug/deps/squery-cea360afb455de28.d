/root/repo/target/debug/deps/squery-cea360afb455de28.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libsquery-cea360afb455de28.rlib: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libsquery-cea360afb455de28.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/isolation.rs crates/core/src/overview.rs crates/core/src/systables.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/config.rs:
crates/core/src/direct.rs:
crates/core/src/isolation.rs:
crates/core/src/overview.rs:
crates/core/src/systables.rs:
crates/core/src/system.rs:
