/root/repo/target/debug/deps/paper_figures-79a4bfa2526d006a.d: crates/bench/src/bin/paper_figures.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_figures-79a4bfa2526d006a.rmeta: crates/bench/src/bin/paper_figures.rs Cargo.toml

crates/bench/src/bin/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
