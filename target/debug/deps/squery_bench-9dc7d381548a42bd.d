/root/repo/target/debug/deps/squery_bench-9dc7d381548a42bd.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/libsquery_bench-9dc7d381548a42bd.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/libsquery_bench-9dc7d381548a42bd.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scale.rs:
crates/bench/src/util.rs:
