/root/repo/target/debug/deps/squery_repro-a095f8e0105fa76b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_repro-a095f8e0105fa76b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
