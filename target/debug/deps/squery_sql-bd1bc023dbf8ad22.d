/root/repo/target/debug/deps/squery_sql-bd1bc023dbf8ad22.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs

/root/repo/target/debug/deps/libsquery_sql-bd1bc023dbf8ad22.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs

/root/repo/target/debug/deps/libsquery_sql-bd1bc023dbf8ad22.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/catalog.rs crates/sql/src/display.rs crates/sql/src/engine.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/plan.rs crates/sql/src/systables.rs crates/sql/src/tables.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/catalog.rs:
crates/sql/src/display.rs:
crates/sql/src/engine.rs:
crates/sql/src/exec.rs:
crates/sql/src/expr.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/plan.rs:
crates/sql/src/systables.rs:
crates/sql/src/tables.rs:
