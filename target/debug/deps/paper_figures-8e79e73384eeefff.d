/root/repo/target/debug/deps/paper_figures-8e79e73384eeefff.d: crates/bench/src/bin/paper_figures.rs

/root/repo/target/debug/deps/paper_figures-8e79e73384eeefff: crates/bench/src/bin/paper_figures.rs

crates/bench/src/bin/paper_figures.rs:
