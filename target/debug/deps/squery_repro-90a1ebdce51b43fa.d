/root/repo/target/debug/deps/squery_repro-90a1ebdce51b43fa.d: src/lib.rs

/root/repo/target/debug/deps/squery_repro-90a1ebdce51b43fa: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
