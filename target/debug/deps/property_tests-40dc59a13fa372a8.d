/root/repo/target/debug/deps/property_tests-40dc59a13fa372a8.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-40dc59a13fa372a8: tests/property_tests.rs

tests/property_tests.rs:
