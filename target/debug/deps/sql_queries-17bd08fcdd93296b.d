/root/repo/target/debug/deps/sql_queries-17bd08fcdd93296b.d: crates/bench/benches/sql_queries.rs Cargo.toml

/root/repo/target/debug/deps/libsql_queries-17bd08fcdd93296b.rmeta: crates/bench/benches/sql_queries.rs Cargo.toml

crates/bench/benches/sql_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
