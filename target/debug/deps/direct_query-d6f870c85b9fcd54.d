/root/repo/target/debug/deps/direct_query-d6f870c85b9fcd54.d: crates/bench/benches/direct_query.rs Cargo.toml

/root/repo/target/debug/deps/libdirect_query-d6f870c85b9fcd54.rmeta: crates/bench/benches/direct_query.rs Cargo.toml

crates/bench/benches/direct_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
