/root/repo/target/debug/deps/squery_streaming-bb1e439b3254c5c6.d: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_streaming-bb1e439b3254c5c6.rmeta: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs Cargo.toml

crates/streaming/src/lib.rs:
crates/streaming/src/checkpoint.rs:
crates/streaming/src/dag.rs:
crates/streaming/src/message.rs:
crates/streaming/src/runtime.rs:
crates/streaming/src/source.rs:
crates/streaming/src/state.rs:
crates/streaming/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
