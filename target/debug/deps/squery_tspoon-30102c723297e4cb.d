/root/repo/target/debug/deps/squery_tspoon-30102c723297e4cb.d: crates/tspoon/src/lib.rs

/root/repo/target/debug/deps/squery_tspoon-30102c723297e4cb: crates/tspoon/src/lib.rs

crates/tspoon/src/lib.rs:
