/root/repo/target/debug/deps/squery_common-ac7992842e2079bc.d: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libsquery_common-ac7992842e2079bc.rlib: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libsquery_common-ac7992842e2079bc.rmeta: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/metrics.rs:
crates/common/src/partition.rs:
crates/common/src/schema.rs:
crates/common/src/telemetry.rs:
crates/common/src/time.rs:
crates/common/src/value.rs:
