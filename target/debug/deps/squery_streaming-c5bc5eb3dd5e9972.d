/root/repo/target/debug/deps/squery_streaming-c5bc5eb3dd5e9972.d: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

/root/repo/target/debug/deps/libsquery_streaming-c5bc5eb3dd5e9972.rlib: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

/root/repo/target/debug/deps/libsquery_streaming-c5bc5eb3dd5e9972.rmeta: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

crates/streaming/src/lib.rs:
crates/streaming/src/checkpoint.rs:
crates/streaming/src/dag.rs:
crates/streaming/src/message.rs:
crates/streaming/src/runtime.rs:
crates/streaming/src/source.rs:
crates/streaming/src/state.rs:
crates/streaming/src/worker.rs:
