/root/repo/target/debug/deps/squery_storage-70e290030e216352.d: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

/root/repo/target/debug/deps/libsquery_storage-70e290030e216352.rlib: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

/root/repo/target/debug/deps/libsquery_storage-70e290030e216352.rmeta: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs

crates/storage/src/lib.rs:
crates/storage/src/grid.rs:
crates/storage/src/imap.rs:
crates/storage/src/locks.rs:
crates/storage/src/partition_table.rs:
crates/storage/src/registry.rs:
crates/storage/src/replication.rs:
crates/storage/src/snapshot.rs:
