/root/repo/target/debug/deps/paper_figures-8e092c2bbd0576a7.d: crates/bench/src/bin/paper_figures.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_figures-8e092c2bbd0576a7.rmeta: crates/bench/src/bin/paper_figures.rs Cargo.toml

crates/bench/src/bin/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
