/root/repo/target/debug/deps/isolation_levels-aa4a10356dedfc54.d: tests/isolation_levels.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libisolation_levels-aa4a10356dedfc54.rmeta: tests/isolation_levels.rs tests/common/mod.rs Cargo.toml

tests/isolation_levels.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
