/root/repo/target/debug/deps/isolation_levels-8139d02a919d209b.d: tests/isolation_levels.rs tests/common/mod.rs

/root/repo/target/debug/deps/isolation_levels-8139d02a919d209b: tests/isolation_levels.rs tests/common/mod.rs

tests/isolation_levels.rs:
tests/common/mod.rs:
