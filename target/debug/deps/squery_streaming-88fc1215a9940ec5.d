/root/repo/target/debug/deps/squery_streaming-88fc1215a9940ec5.d: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

/root/repo/target/debug/deps/squery_streaming-88fc1215a9940ec5: crates/streaming/src/lib.rs crates/streaming/src/checkpoint.rs crates/streaming/src/dag.rs crates/streaming/src/message.rs crates/streaming/src/runtime.rs crates/streaming/src/source.rs crates/streaming/src/state.rs crates/streaming/src/worker.rs

crates/streaming/src/lib.rs:
crates/streaming/src/checkpoint.rs:
crates/streaming/src/dag.rs:
crates/streaming/src/message.rs:
crates/streaming/src/runtime.rs:
crates/streaming/src/source.rs:
crates/streaming/src/state.rs:
crates/streaming/src/worker.rs:
