/root/repo/target/debug/deps/sys_tables-0975a64f44e6cdc3.d: crates/nexmark/tests/sys_tables.rs

/root/repo/target/debug/deps/sys_tables-0975a64f44e6cdc3: crates/nexmark/tests/sys_tables.rs

crates/nexmark/tests/sys_tables.rs:
