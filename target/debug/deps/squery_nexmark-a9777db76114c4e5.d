/root/repo/target/debug/deps/squery_nexmark-a9777db76114c4e5.d: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

/root/repo/target/debug/deps/libsquery_nexmark-a9777db76114c4e5.rlib: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

/root/repo/target/debug/deps/libsquery_nexmark-a9777db76114c4e5.rmeta: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs

crates/nexmark/src/lib.rs:
crates/nexmark/src/generator.rs:
crates/nexmark/src/q6.rs:
