/root/repo/target/debug/deps/squery_common-e43fe1a3e668e61c.d: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_common-e43fe1a3e668e61c.rmeta: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/metrics.rs crates/common/src/partition.rs crates/common/src/schema.rs crates/common/src/telemetry.rs crates/common/src/time.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/metrics.rs:
crates/common/src/partition.rs:
crates/common/src/schema.rs:
crates/common/src/telemetry.rs:
crates/common/src/time.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
