/root/repo/target/debug/deps/sys_tables-a141313b8869b9a4.d: crates/nexmark/tests/sys_tables.rs Cargo.toml

/root/repo/target/debug/deps/libsys_tables-a141313b8869b9a4.rmeta: crates/nexmark/tests/sys_tables.rs Cargo.toml

crates/nexmark/tests/sys_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
