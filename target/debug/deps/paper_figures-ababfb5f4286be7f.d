/root/repo/target/debug/deps/paper_figures-ababfb5f4286be7f.d: crates/bench/src/bin/paper_figures.rs

/root/repo/target/debug/deps/paper_figures-ababfb5f4286be7f: crates/bench/src/bin/paper_figures.rs

crates/bench/src/bin/paper_figures.rs:
