/root/repo/target/debug/deps/squery_repro-76ad22b54a1db3f4.d: src/lib.rs

/root/repo/target/debug/deps/libsquery_repro-76ad22b54a1db3f4.rlib: src/lib.rs

/root/repo/target/debug/deps/libsquery_repro-76ad22b54a1db3f4.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
