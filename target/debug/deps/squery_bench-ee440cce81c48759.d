/root/repo/target/debug/deps/squery_bench-ee440cce81c48759.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_bench-ee440cce81c48759.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scale.rs crates/bench/src/util.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scale.rs:
crates/bench/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
