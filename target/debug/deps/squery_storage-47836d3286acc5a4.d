/root/repo/target/debug/deps/squery_storage-47836d3286acc5a4.d: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_storage-47836d3286acc5a4.rmeta: crates/storage/src/lib.rs crates/storage/src/grid.rs crates/storage/src/imap.rs crates/storage/src/locks.rs crates/storage/src/partition_table.rs crates/storage/src/registry.rs crates/storage/src/replication.rs crates/storage/src/snapshot.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/grid.rs:
crates/storage/src/imap.rs:
crates/storage/src/locks.rs:
crates/storage/src/partition_table.rs:
crates/storage/src/registry.rs:
crates/storage/src/replication.rs:
crates/storage/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
