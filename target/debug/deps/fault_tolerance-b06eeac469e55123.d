/root/repo/target/debug/deps/fault_tolerance-b06eeac469e55123.d: tests/fault_tolerance.rs tests/common/mod.rs

/root/repo/target/debug/deps/fault_tolerance-b06eeac469e55123: tests/fault_tolerance.rs tests/common/mod.rs

tests/fault_tolerance.rs:
tests/common/mod.rs:
