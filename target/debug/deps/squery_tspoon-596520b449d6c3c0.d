/root/repo/target/debug/deps/squery_tspoon-596520b449d6c3c0.d: crates/tspoon/src/lib.rs

/root/repo/target/debug/deps/libsquery_tspoon-596520b449d6c3c0.rlib: crates/tspoon/src/lib.rs

/root/repo/target/debug/deps/libsquery_tspoon-596520b449d6c3c0.rmeta: crates/tspoon/src/lib.rs

crates/tspoon/src/lib.rs:
