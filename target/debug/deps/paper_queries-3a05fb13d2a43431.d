/root/repo/target/debug/deps/paper_queries-3a05fb13d2a43431.d: tests/paper_queries.rs tests/common/mod.rs

/root/repo/target/debug/deps/paper_queries-3a05fb13d2a43431: tests/paper_queries.rs tests/common/mod.rs

tests/paper_queries.rs:
tests/common/mod.rs:
