/root/repo/target/debug/deps/squery_nexmark-32e673ea6aca0cc3.d: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs Cargo.toml

/root/repo/target/debug/deps/libsquery_nexmark-32e673ea6aca0cc3.rmeta: crates/nexmark/src/lib.rs crates/nexmark/src/generator.rs crates/nexmark/src/q6.rs Cargo.toml

crates/nexmark/src/lib.rs:
crates/nexmark/src/generator.rs:
crates/nexmark/src/q6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
