/root/repo/target/debug/deps/squery_qcommerce-17ebabd3efee9b81.d: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

/root/repo/target/debug/deps/squery_qcommerce-17ebabd3efee9b81: crates/qcommerce/src/lib.rs crates/qcommerce/src/events.rs crates/qcommerce/src/pipeline.rs crates/qcommerce/src/queries.rs

crates/qcommerce/src/lib.rs:
crates/qcommerce/src/events.rs:
crates/qcommerce/src/pipeline.rs:
crates/qcommerce/src/queries.rs:
