//! Reproduction package for **S-QUERY: Opening the Black Box of Internal
//! Stream Processor State** (ICDE 2022).
//!
//! This crate is the workspace's integration surface: it hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`),
//! and re-exports the workspace's public API for convenience.
//!
//! Start with `examples/quickstart.rs`, then see the `squery` crate docs for
//! the system's architecture.

pub use squery::{
    DirectQuery, Grid, IsolationLevel, JobHandle, JobSpec, ResultSet, SQuery, SQueryConfig,
    SnapshotMode, StateConfig, StateView,
};
pub use squery_common::{SnapshotId, Value};

/// Workspace version, surfaced for examples.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compose() {
        let system = crate::SQuery::new(crate::SQueryConfig::default()).unwrap();
        assert!(system.latest_snapshot().is_none());
        assert!(!crate::VERSION.is_empty());
    }
}
