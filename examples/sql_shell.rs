//! An interactive SQL shell over a live S-QUERY deployment.
//!
//! Starts the q-commerce monitoring job with periodic checkpoints, then
//! reads SQL statements from stdin (one per line; `\t` lists tables, `\o`
//! prints the state-store overview, `\q` quits) and prints result tables —
//! the "database view of the processing state" experience of the paper's
//! introduction.
//!
//! Run with: `cargo run --example sql_shell`
//! (pipe queries in non-interactively: `echo "SELECT ..." | cargo run --example sql_shell`)

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_qcommerce::{order_monitoring_job, QCommerceConfig};
use std::io::{BufRead, Write};
use std::time::Duration;

fn main() {
    let config = SQueryConfig {
        checkpoint_interval: Some(Duration::from_millis(500)),
        ..SQueryConfig::default().with_state(StateConfig::live_and_snapshot())
    };
    let system = SQuery::new(config).expect("bring up S-QUERY");
    let cfg = QCommerceConfig {
        orders: 1_000,
        riders: 200,
        events_per_instance: 0, // unbounded: the state keeps churning
        rate_per_instance: Some(2_000.0), // gently, so the shell stays snappy
        prefill_passes: 1,
    };
    let job = system
        .submit(order_monitoring_job(cfg, 1, 2))
        .expect("submit monitoring job");

    // Wait for the first committed snapshot so snapshot_* tables answer.
    while system.latest_snapshot().is_none() {
        std::thread::sleep(Duration::from_millis(20));
    }
    eprintln!("S-QUERY SQL shell — tables: \\t, overview: \\o, quit: \\q");
    eprintln!("try:  SELECT orderState, COUNT(*) FROM orderstate GROUP BY orderState;");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("squery> ");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "exit" | "quit" => break,
            "\\t" => {
                for t in system.grid().all_table_names() {
                    writeln!(out, "{t}").unwrap();
                }
            }
            "\\o" => {
                writeln!(out, "{}", system.overview()).unwrap();
            }
            sql => match system.query(sql) {
                Ok(result) => writeln!(out, "{result}").unwrap(),
                Err(e) => eprintln!("error: {e}"),
            },
        }
        out.flush().unwrap();
    }
    job.stop();
    eprintln!("bye");
}
