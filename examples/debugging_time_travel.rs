//! Debugging with time travel: watching state mutate across snapshots.
//!
//! The paper's §III ("Debugging"): *"if there is also the option of
//! switching between specific versions of the state, one would also be able
//! to see how the state mutates over time. This is an invaluable capability
//! for debugging complex streaming systems."*
//!
//! This demo retains several snapshot versions, keeps checkpointing a
//! running counter job, and then inspects one key's history across versions
//! with a single multi-version SQL query (`WHERE ssid >= 0` scans every
//! retained version, each row labelled with its snapshot id).
//!
//! Run with: `cargo run --example debugging_time_travel`

use squery::{SQuery, SQueryConfig, StateConfig, StateView};
use squery_common::schema::schema;
use squery_common::{DataType, Value};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::{SourceFactory, Stateful};
use squery_streaming::source::{GeneratorSource, Source};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Retain 5 snapshot versions instead of the default 2 (§VI-A: "If
    // maintaining more versions ... is important to an application, S-QUERY
    // can be configured to preserve many versions").
    let mut config = SQueryConfig::default().with_retention(5);
    config.state = StateConfig::live_and_snapshot();
    let system = SQuery::new(config).expect("bring up S-QUERY");

    struct Ticks;
    impl SourceFactory for Ticks {
        fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
            // 2 000 paced events/s over 4 keys.
            Box::new(
                GeneratorSource::new(0, |i| Some(Record::new((i % 4) as i64, 1i64)))
                    .with_rate(2_000.0),
            )
        }
    }
    let counter = Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                let n = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0) + 1;
                state.put(r.key.clone(), Value::Int(n));
                out.push(Record {
                    key: r.key,
                    value: Value::Int(n),
                    src_ts: r.src_ts,
                    port: 0,
                });
            },
        )) as Box<dyn Stateful>
    }));
    let mut b = JobSpec::builder("time-travel");
    let src = b.source("ticks", 1, Arc::new(Ticks));
    let op = b.stateful_with_schema("tally", 1, counter, schema(vec![("this", DataType::Int)]));
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    let job = system.submit(b.build().unwrap()).expect("submit");

    // Take five checkpoints while the job keeps counting.
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(120));
        job.checkpoint_now().expect("checkpoint");
    }
    println!(
        "retained snapshot versions: {:?}\n",
        system.retained_snapshots()
    );

    // Time travel: key 0's value across every retained version, one query.
    let history = system
        .query(
            "SELECT ssid, this AS counter FROM snapshot_tally \
             WHERE ssid >= 0 AND partitionKey = 0 ORDER BY ssid",
        )
        .expect("history query");
    println!("history of key 0 across snapshots (state mutating over time):\n{history}\n");

    // Debug check: the counter must be non-decreasing across versions.
    let counters: Vec<i64> = history
        .column("counter")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert!(
        counters.windows(2).all(|w| w[0] <= w[1]),
        "a decreasing counter would be the bug this view exists to catch"
    );
    println!("invariant verified: counter is monotone across versions {counters:?}");

    // Pinpoint one historical version via the direct interface too.
    let oldest = system.retained_snapshots()[0];
    let at_oldest = system
        .direct()
        .get("tally", &Value::Int(0), StateView::Snapshot(oldest))
        .unwrap();
    println!("direct read at the oldest retained version {oldest}: {at_oldest:?}");

    job.stop();
}
