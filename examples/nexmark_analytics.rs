//! Ad-hoc analytics over NEXMark query 6's internal state.
//!
//! The paper's §III ("Simplifying Streaming Topologies") argues that with
//! queryable state you do not need a new streaming job for every ad-hoc
//! question — you query the existing operators' state. This example runs the
//! q6 job (average selling price per seller) and then answers questions q6
//! itself never emits: top sellers, price distribution, seller coverage —
//! all straight from the `average` and `maxbid` operator state.
//!
//! Run with: `cargo run --example nexmark_analytics`

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_nexmark::{q6_job, NexmarkConfig};
use std::time::Duration;

fn main() {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).expect("bring up S-QUERY");

    let cfg = NexmarkConfig {
        sellers: 1_000,
        active_auctions: 2_000,
        events_per_instance: 40_000,
        rate_per_instance: None,
    };
    let mut job = system.submit(q6_job(cfg, 1, 2)).expect("submit q6");
    let ssid = job
        .drain_and_checkpoint(Duration::from_secs(60))
        .expect("drain the auction streams");
    println!("q6 ran to completion; snapshot {ssid} committed\n");

    // Q: which sellers command the highest average selling price?
    let top = system
        .query(
            "SELECT partitionKey AS seller, average, count FROM average \
             ORDER BY average DESC LIMIT 5",
        )
        .expect("top sellers");
    println!("top sellers by average selling price (live state):\n{top}\n");

    // Q: what does the selling-price distribution look like?
    let stats = system
        .query(
            "SELECT COUNT(*) AS sellers, AVG(average) AS mean_price, \
             MIN(average) AS min_price, MAX(average) AS max_price FROM snapshot_average",
        )
        .expect("distribution");
    println!("price distribution over the committed snapshot:\n{stats}\n");

    // Q: how many sellers have a full 10-auction window already?
    let full_windows = system
        .query("SELECT COUNT(*) AS full_windows FROM average WHERE count = 10")
        .expect("full windows");
    println!("sellers with a full last-10 window:\n{full_windows}\n");

    // Q: join live state across operators — currently open auctions per
    // seller with their running average (the join capability §VI-A adds).
    let join = system
        .query(
            "SELECT a.partitionKey AS seller, COUNT(*) AS open_auctions, MAX(m.best) AS best_open \
             FROM average a JOIN maxbid m ON a.partitionKey = m.seller \
             GROUP BY a.partitionKey ORDER BY open_auctions DESC LIMIT 5",
        )
        .expect("cross-operator join");
    println!("open auctions per seller (join of two operators' live state):\n{join}");

    job.stop();
}
