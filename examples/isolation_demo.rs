//! Isolation levels, live: the paper's Figures 5 and 6 as a runnable demo.
//!
//! A counting operator processes a gated stream so we control exactly how
//! many events exist on each side of a checkpoint. We then observe:
//!
//! * **Figure 5 (read uncommitted)** — a live query reads 5, the job fails,
//!   and after recovery the counter is 4 again: the read was dirty.
//! * **Figure 6 (serializable)** — a query pinned to a snapshot id reads the
//!   same value before and after the failure.
//!
//! Run with: `cargo run --example isolation_demo`

use squery::{IsolationLevel, SQuery, SQueryConfig, StateConfig, StateView};
use squery_common::schema::schema;
use squery_common::{DataType, Value};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::{SourceFactory, Stateful};
use squery_streaming::source::{Source, SourceStatus};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A source whose output is gated by a shared allowance, so the demo decides
/// exactly when each event exists.
struct GatedSource {
    index: u64,
    allowance: Arc<AtomicU64>,
}

impl Source for GatedSource {
    fn next_batch(&mut self, max: usize, _now: u64, out: &mut Vec<Record>) -> SourceStatus {
        let allowed = self.allowance.load(Ordering::Acquire);
        let budget = allowed.saturating_sub(self.index).min(max as u64);
        if budget == 0 {
            return SourceStatus::Idle;
        }
        for _ in 0..budget {
            out.push(Record::new(0i64, 1i64));
            self.index += 1;
        }
        SourceStatus::Active
    }
    fn offset(&self) -> Value {
        Value::Int(self.index as i64)
    }
    fn rewind(&mut self, offset: &Value) {
        self.index = offset.as_int().unwrap() as u64;
    }
}

struct GatedFactory(Arc<AtomicU64>);
impl SourceFactory for GatedFactory {
    fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
        Box::new(GatedSource {
            index: 0,
            allowance: Arc::clone(&self.0),
        })
    }
}

fn main() {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).expect("bring up S-QUERY");
    let allowance = Arc::new(AtomicU64::new(0));

    let counter = Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                let n = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0) + 1;
                state.put(r.key.clone(), Value::Int(n));
                out.push(Record {
                    key: r.key,
                    value: Value::Int(n),
                    src_ts: r.src_ts,
                    port: 0,
                });
            },
        )) as Box<dyn Stateful>
    }));
    let mut b = JobSpec::builder("count-demo");
    let src = b.source("events", 1, Arc::new(GatedFactory(Arc::clone(&allowance))));
    let op = b.stateful_with_schema("count", 1, counter, schema(vec![("this", DataType::Int)]));
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    let mut job = system.submit(b.build().unwrap()).expect("submit");

    let live = |system: &SQuery| {
        system
            .direct()
            .get("count", &Value::Int(0), StateView::Live)
            .unwrap()
            .and_then(|v| v.as_int())
            .unwrap_or(0)
    };

    println!(
        "live view isolation:    {} — {}",
        IsolationLevel::of_view(StateView::Live, false),
        IsolationLevel::of_view(StateView::Live, false).description()
    );
    println!(
        "snapshot view isolation: {} — {}\n",
        IsolationLevel::of_view(StateView::LatestSnapshot, false),
        IsolationLevel::of_view(StateView::LatestSnapshot, false).description()
    );

    // ---- Figure 5: dirty read on the live state -------------------------
    allowance.store(4, Ordering::Release);
    job.wait_for_sink_count(4, Duration::from_secs(10)).unwrap();
    let ssid = job.checkpoint_now().expect("checkpoint");
    println!("Fig 5a: counter = {}, snapshot {ssid} taken", live(&system));

    allowance.store(5, Ordering::Release);
    job.wait_for_sink_count(5, Duration::from_secs(10)).unwrap();
    let dirty = live(&system);
    println!("Fig 5b: live query returns {dirty}   <-- not yet committed anywhere");

    job.crash();
    // Lower the gate so the rolled-back 5th event is not instantly replayed
    // before we can observe the restored state.
    allowance.store(4, Ordering::Release);
    job.recover().expect("recover from snapshot");
    println!(
        "Fig 5c: job failed & recovered; live query now returns {} — the read of {dirty} was a DIRTY READ\n",
        live(&system)
    );

    // ---- Figure 6: snapshot queries are immune to the failure -----------
    let pinned = system
        .direct()
        .get("count", &Value::Int(0), StateView::Snapshot(ssid))
        .unwrap();
    println!("Fig 6: query pinned to snapshot {ssid} returns {pinned:?} — before and after the failure, always");
    assert_eq!(pinned, Some(Value::Int(4)));

    job.stop();
}
