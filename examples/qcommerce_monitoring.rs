//! Real-time order-delivery monitoring — the Delivery Hero use case (§VIII).
//!
//! Ingests order-info, order-status, and rider-location event streams into
//! three stateful operators, then answers the paper's four real monitoring
//! queries *against the operators' internal state* — no caching layer, no
//! external database (the architecture change of the paper's Figure 1 vs
//! Figure 7).
//!
//! Run with: `cargo run --example qcommerce_monitoring`

use squery::{SQuery, SQueryConfig, StateConfig, StateView};
use squery_common::Value;
use squery_qcommerce::{
    order_monitoring_job, QCommerceConfig, OPERATOR_RIDER, QUERY_1, QUERY_2, QUERY_3, QUERY_4,
};
use std::time::Duration;

fn main() {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).expect("bring up S-QUERY");

    // 2 000 orders progressing through the order state machine, plus rider
    // location pings; every source emits its full pass then stops.
    let orders = 2_000;
    let cfg = QCommerceConfig {
        orders,
        riders: 400,
        events_per_instance: orders * 8,
        rate_per_instance: None,
        prefill_passes: 0,
    };
    let mut job = system
        .submit(order_monitoring_job(cfg, 1, 2))
        .expect("submit monitoring job");
    let ssid = job
        .drain_and_checkpoint(Duration::from_secs(60))
        .expect("ingest the workload");
    println!("ingested {orders} orders; consistent snapshot {ssid} committed\n");

    for (n, (question, sql)) in [
        ("How many orders are late per area?", QUERY_1),
        (
            "How many deliveries are ready for pickup per category?",
            QUERY_2,
        ),
        ("How many deliveries are being prepared per area?", QUERY_3),
        ("How many deliveries are in transit per area?", QUERY_4),
    ]
    .iter()
    .enumerate()
    {
        let result = system.query(sql).expect("paper query runs");
        println!("Query {}: {question}\n{result}\n", n + 1);
    }

    // The direct object interface on rider locations (the Figure 14 path).
    let riders: Vec<Value> = (0..3).map(Value::Int).collect();
    let positions = system
        .direct()
        .get_many(OPERATOR_RIDER, &riders, StateView::Live)
        .expect("rider lookup");
    println!("live rider positions (direct object interface):");
    for (rider, pos) in positions {
        println!(
            "  rider {rider}: {}",
            pos.map_or("<unknown>".into(), |p| p.to_string())
        );
    }

    job.stop();
}
