//! Quickstart: run a stateful streaming job and query its internal state.
//!
//! The "average" pipeline of the paper's Figure 2/4: a stream of numbers
//! flows into a stateful operator that keeps `(count, total)` per key and
//! emits the running average. With S-QUERY, that internal state is not a
//! black box — we query it live with SQL while the job runs, and query its
//! snapshots after a checkpoint.
//!
//! Run with: `cargo run --example quickstart`

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::schema::schema;
use squery_common::{DataType, Value};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::{SourceFactory, Stateful};
use squery_streaming::source::{GeneratorSource, Source};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Bring up S-QUERY: stream processor + state store + query system.
    //    Live write-through AND queryable snapshots enabled (Figure 8's
    //    "live+snap" configuration).
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).expect("bring up S-QUERY");

    // 2. Describe the job: numbers keyed 0..5 → averaging operator → sink.
    struct Numbers;
    impl SourceFactory for Numbers {
        fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
            Box::new(GeneratorSource::new(1_000, |i| {
                Some(Record::new((i % 5) as i64, (i * 3 % 100) as i64))
            }))
        }
    }
    let average_schema = schema(vec![
        ("count", DataType::Int),
        ("total", DataType::Int),
        ("average", DataType::Float),
    ]);
    let avg_schema2 = Arc::clone(&average_schema);
    let averaging = Arc::new(FnStateful(move |_, _| {
        let schema = Arc::clone(&avg_schema2);
        Box::new(FnStatefulOp(
            move |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                let (mut count, mut total) = state
                    .get(&r.key)
                    .and_then(|v| {
                        let sv = v.as_struct()?.clone();
                        Some((sv.field("count")?.as_int()?, sv.field("total")?.as_int()?))
                    })
                    .unwrap_or_default();
                count += 1;
                total += r.value.as_int().unwrap_or(0);
                let average = total as f64 / count as f64;
                state.put(
                    r.key.clone(),
                    Value::record(
                        &schema,
                        vec![Value::Int(count), Value::Int(total), Value::Float(average)],
                    ),
                );
                out.push(Record {
                    key: r.key,
                    value: Value::Float(average),
                    src_ts: r.src_ts,
                    port: 0,
                });
            },
        )) as Box<dyn Stateful>
    }));

    let mut b = JobSpec::builder("quickstart");
    let src = b.source("numbers", 1, Arc::new(Numbers));
    let avg = b.stateful_with_schema("average", 2, averaging, average_schema);
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, avg, EdgeKind::Keyed);
    b.edge(avg, sink, EdgeKind::Forward);
    let spec = b.build().expect("valid job");

    // 3. Run it and wait for the input to drain through the DAG.
    let job = system.submit(spec).expect("submit");
    job.wait_for_sink_count(1_000, Duration::from_secs(30))
        .expect("pipeline drains");

    // 4. Query the LIVE state — the paper's Figure 4 left-hand query.
    let live = system
        .query("SELECT partitionKey, count, total, average FROM average ORDER BY partitionKey")
        .expect("live query");
    println!("live state of the running 'average' operator:\n{live}\n");

    // 5. Checkpoint, then query the SNAPSHOT state (serializable isolation).
    let ssid = job.checkpoint_now().expect("checkpoint");
    let snap = system
        .query(&format!(
            "SELECT partitionKey, count, total FROM snapshot_average WHERE ssid = {} ORDER BY partitionKey",
            ssid.0
        ))
        .expect("snapshot query");
    println!("snapshot {ssid} of the same state:\n{snap}\n");

    // 6. The direct object interface: a point read without SQL.
    let value = system
        .direct()
        .get("average", &Value::Int(3), squery::StateView::LatestSnapshot)
        .expect("direct read");
    println!("direct read of key 3 at the latest snapshot: {value:?}");

    let report = job.stop();
    println!(
        "\nprocessed {} records end-to-end (p99 latency {:.2} ms)",
        report.sink_records,
        report.latency.percentile(0.99) as f64 / 1000.0
    );
}
