//! Property: vectorized execution is invisible in results. For every query
//! and every degree of parallelism, the columnar engine returns
//! **row-for-row identical** output (same rows, same order) to the row
//! engine — including over sys tables, over pinned snapshots while
//! checkpoints commit concurrently, and when kernels only cover part of the
//! work and fall back to row evaluation mid-plan.

mod common;

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::Value;
use squery_nexmark::{q6_job, NexmarkConfig};
use squery_qcommerce::{
    order_monitoring_job, QCommerceConfig, ORDER_STATES, QUERY_1, QUERY_2, QUERY_3, QUERY_4,
};
use std::time::Duration;

const DOPS: [usize; 3] = [1, 4, 8];

/// Row-for-row equality with the same documented relaxation as the parallel
/// equivalence suite (DESIGN.md §5): float aggregates may differ by a few
/// ulps because per-batch accumulation and the parallel merge reassociate
/// float addition. Everything else must be bit-identical.
fn rows_equivalent(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => {
                        x == y || (x - y).abs() <= 8.0 * f64::EPSILON * x.abs().max(y.abs())
                    }
                    _ => va == vb,
                })
        })
}

/// For each query: row engine at DOP 1 is the baseline; the columnar engine
/// must match it at every DOP, and so must the row engine (guarding against
/// the baseline itself drifting).
fn assert_vectorized_equivalence(system: &SQuery, queries: &[&str]) {
    for sql in queries {
        let baseline = system.query_with_opts(sql, 1, false).expect(sql);
        for dop in DOPS {
            for vectorized in [true, false] {
                let got = system.query_with_opts(sql, dop, vectorized).expect(sql);
                assert!(
                    rows_equivalent(got.rows(), baseline.rows()),
                    "dop {dop} vectorized={vectorized} differs from row baseline for: {sql}\n \
                     got: {:?}\n baseline: {:?}",
                    got.rows(),
                    baseline.rows()
                );
            }
        }
    }
}

#[test]
fn paper_queries_match_row_engine_at_every_dop() {
    const ORDERS: u64 = 1_000;
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let cfg = QCommerceConfig {
        orders: ORDERS,
        riders: 100,
        events_per_instance: ORDERS * ORDER_STATES.len() as u64,
        rate_per_instance: None,
        prefill_passes: 0,
    };
    let mut job = system.submit(order_monitoring_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(120)).unwrap();

    assert_vectorized_equivalence(
        &system,
        &[
            QUERY_1,
            QUERY_2,
            QUERY_3,
            QUERY_4,
            // Live-table scan joined back onto snapshot state.
            "SELECT COUNT(*) AS n FROM orderinfo JOIN snapshot_orderstate USING(partitionKey)",
            // Multi-version scan: every retained ssid materialized.
            "SELECT ssid, COUNT(*) FROM snapshot_orderinfo WHERE ssid >= 0 GROUP BY ssid",
            // Non-aggregate ORDER BY + LIMIT over a parallel batched scan.
            "SELECT partitionKey, deliveryZone FROM snapshot_orderinfo \
             ORDER BY partitionKey LIMIT 50",
        ],
    );
    job.stop();
}

#[test]
fn q6_and_sys_table_queries_match_row_engine() {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let cfg = NexmarkConfig {
        sellers: 200,
        active_auctions: 400,
        events_per_instance: 5_000,
        rate_per_instance: None,
    };
    let mut job = system.submit(q6_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(120)).unwrap();

    assert_vectorized_equivalence(
        &system,
        &[
            "SELECT COUNT(*) AS n, AVG(average) AS m FROM snapshot_average",
            "SELECT partitionKey, average FROM snapshot_average ORDER BY partitionKey LIMIT 20",
            "SELECT COUNT(*) FROM snapshot_average JOIN snapshot_maxbid USING(partitionKey)",
            // Sys tables are Whole scans: the vectorized driver batches them
            // at the morsel boundary instead of the slice boundary.
            "SELECT operator, snapshot_entries FROM sys_operators ORDER BY operator",
            "SELECT store, ssid, entries, committed FROM sys_snapshots ORDER BY store, ssid",
            "SELECT job, COUNT(*) FROM sys_checkpoints GROUP BY job",
        ],
    );
    job.stop();
}

/// Plans the kernels cover only partially must still agree with the row
/// engine: filters outside the compilable subset (scalar functions,
/// arithmetic) force a whole-query row fallback, and mixed-type columns
/// degrade single batches to boxed values with per-batch row evaluation —
/// all under the same cost-model join planning.
#[test]
fn forced_fallback_and_mixed_batches_match_row_engine() {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();

    // A raw live map with deliberately mixed value types: the `this` column
    // degrades to a boxed Any column, so comparison kernels refuse it and
    // batches row-evaluate. Ints and floats still compare numerically.
    let mixed = system.grid().map("mixed");
    for i in 0..300i64 {
        let v = match i % 3 {
            0 => Value::Int(i),
            1 => Value::Float(i as f64 + 0.5),
            _ => Value::str(format!("s{i}")),
        };
        mixed.put(Value::Int(i), v);
    }
    // A typed companion table so join + cost model engage.
    let sizes = system.grid().map("sizes");
    for i in 0..40i64 {
        sizes.put(Value::Int(i), Value::Int(i * 2));
    }

    assert_vectorized_equivalence(
        &system,
        &[
            // Mixed-type batches: kernel refuses, per-batch row fallback.
            "SELECT partitionKey FROM mixed WHERE this IN (0, 3.5, '' ) ORDER BY partitionKey",
            "SELECT COUNT(*) FROM mixed WHERE this IS NOT NULL",
            // Arithmetic in the filter: not compilable, whole-query fallback.
            "SELECT partitionKey FROM sizes WHERE this + 1 > 10 ORDER BY partitionKey",
            // Kernel filter over the probe output of a cost-model-planned
            // join (40-row build side under a 300-row probe side).
            "SELECT COUNT(*) FROM mixed JOIN sizes USING(partitionKey) \
             WHERE partitionKey >= 10",
        ],
    );

    // The same mixed-vs-typed disagreement must also *error* identically:
    // ordering a string against an int fails on both engines.
    let sql = "SELECT partitionKey FROM mixed WHERE this > 5";
    for dop in DOPS {
        assert!(system.query_with_opts(sql, dop, true).is_err(), "dop {dop}");
        assert!(
            system.query_with_opts(sql, dop, false).is_err(),
            "dop {dop}"
        );
    }
}

/// Pinned-ssid scans stay equivalent across engines while later checkpoints
/// commit concurrently: every worker of either engine reads the pinned
/// version.
#[test]
fn pinned_snapshot_queries_match_row_engine_under_checkpoints() {
    let (system, job, allowance) = common::gated_counter_system_with(
        SQueryConfig::default()
            .with_state(StateConfig::live_and_snapshot())
            .with_retention(10),
        64,
        2,
    );

    common::advance(&job, &allowance, 64);
    let pinned = job.checkpoint_now().unwrap();
    let sql = format!(
        "SELECT partitionKey, this FROM snapshot_count WHERE ssid = {} ORDER BY partitionKey",
        pinned.0
    );
    let baseline = system.query_with_opts(&sql, 1, false).unwrap();
    assert_eq!(baseline.len(), 64);

    // Six more checkpoints commit while the comparison loop runs; with
    // retention 10 the pinned id is never pruned or folded away.
    std::thread::scope(|scope| {
        let querier = scope.spawn(|| {
            for round in 0..40 {
                for dop in DOPS {
                    let vectorized = system.query_with_opts(&sql, dop, true).unwrap();
                    assert_eq!(
                        vectorized.rows(),
                        baseline.rows(),
                        "round {round}, dop {dop}: pinned-snapshot result changed"
                    );
                }
            }
        });
        for step in 1..=6u64 {
            common::advance(&job, &allowance, 64 + step * 64);
            job.checkpoint_now().unwrap();
        }
        querier.join().unwrap();
    });
    job.stop();
}
