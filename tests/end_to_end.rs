//! Whole-system integration: NEXMark q6 under periodic checkpoints with
//! concurrent SQL and direct-object query load — all interfaces at once,
//! the way the paper's scalability experiment drives the system.

mod common;

use squery::{SQuery, SQueryConfig, StateConfig, StateView};
use squery_common::Value;
use squery_nexmark::{q6_job, NexmarkConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn q6_system(interval: Option<Duration>) -> (Arc<SQuery>, squery::JobHandle) {
    let mut config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    config.checkpoint_interval = interval;
    let system = Arc::new(SQuery::new(config).unwrap());
    let cfg = NexmarkConfig {
        sellers: 300,
        active_auctions: 600,
        events_per_instance: 0,
        rate_per_instance: Some(5_000.0),
    };
    let job = system.submit(q6_job(cfg, 1, 2)).unwrap();
    (system, job)
}

/// Queries from multiple interfaces run concurrently with processing and
/// periodic checkpoints, without errors, torn reads, or stalls.
#[test]
fn concurrent_queries_during_periodic_checkpoints() {
    let (system, job) = q6_system(Some(Duration::from_millis(100)));
    // Wait for the first committed snapshot.
    let deadline = Instant::now() + Duration::from_secs(20);
    while system.latest_snapshot().is_none() {
        assert!(Instant::now() < deadline, "no checkpoint committed");
        std::thread::sleep(Duration::from_millis(10));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let sql_worker = {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut runs = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let rs = system
                    .query("SELECT COUNT(*) AS n, AVG(average) AS m FROM snapshot_average")
                    .expect("snapshot query always succeeds once one is committed");
                assert_eq!(rs.len(), 1);
                runs += 1;
            }
            runs
        })
    };
    let direct_worker = {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut runs = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Live point reads under key locks.
                let _ = system
                    .direct()
                    .get("average", &Value::Int((runs % 300) as i64), StateView::Live)
                    .expect("live reads never fail");
                runs += 1;
            }
            runs
        })
    };

    std::thread::sleep(Duration::from_secs(2));
    stop.store(true, Ordering::Relaxed);
    let sql_runs = sql_worker.join().unwrap();
    let direct_runs = direct_worker.join().unwrap();
    assert!(sql_runs > 5, "SQL queries made progress: {sql_runs}");
    assert!(
        direct_runs > 100,
        "direct reads made progress: {direct_runs}"
    );

    let report = job.stop();
    assert!(
        report.checkpoints.len() >= 3,
        "periodic checkpoints kept committing under query load: {}",
        report.checkpoints.len()
    );
    assert!(report.sink_records > 0);
}

/// Snapshot-table aggregates are internally consistent: within one query the
/// join of a snapshot table with itself over the shared snapshot id can
/// never produce mismatched values.
#[test]
fn snapshot_self_consistency_under_load() {
    let (system, job) = q6_system(Some(Duration::from_millis(80)));
    let deadline = Instant::now() + Duration::from_secs(20);
    while system.latest_snapshot().is_none() {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    for _ in 0..30 {
        // a and b scan the same table; with one ssid per query every key
        // joins itself exactly once with equal values.
        let rs = system
            .query(
                "SELECT COUNT(*) AS mismatches FROM snapshot_average a \
                 JOIN snapshot_average b USING(partitionKey) WHERE a.count <> b.count",
            )
            .unwrap();
        assert_eq!(
            rs.scalar("mismatches"),
            Some(&Value::Int(0)),
            "a query must never observe two different versions"
        );
    }
    job.stop();
}

/// Disabling mechanisms works end to end: in jet-baseline mode there are no
/// queryable tables, and snapshot-only mode has no live tables.
#[test]
fn state_mechanisms_toggle_visibility() {
    // Jet baseline: no live map, blob snapshots (not SQL-queryable columns).
    let config = SQueryConfig::default().with_state(StateConfig::jet_baseline());
    let system = SQuery::new(config).unwrap();
    let cfg = NexmarkConfig {
        sellers: 50,
        active_auctions: 100,
        events_per_instance: 2_000,
        rate_per_instance: None,
    };
    let mut job = system.submit(q6_job(cfg, 1, 1)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
    assert!(
        system.query("SELECT * FROM average").is_err(),
        "no live table in the baseline"
    );
    job.stop();

    // Snapshot-only: snapshot tables answer, live tables absent.
    let config = SQueryConfig::default().with_state(StateConfig::snapshot_only());
    let system = SQuery::new(config).unwrap();
    let mut job = system.submit(q6_job(cfg, 1, 1)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
    assert!(system.query("SELECT * FROM average").is_err());
    let rs = system
        .query("SELECT COUNT(*) AS n FROM snapshot_average")
        .unwrap();
    assert!(rs.scalar("n").unwrap().as_int().unwrap() > 0);
    job.stop();
}
