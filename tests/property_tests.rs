//! Property-based tests (proptest) on the core data structures and
//! invariants: codec roundtrips, snapshot-store differential reads vs a
//! model, partitioner coverage, histogram percentile bounds, SQL arithmetic
//! vs native evaluation, and the total order on values.

use proptest::prelude::*;
use squery_common::codec;
use squery_common::metrics::Histogram;
use squery_common::schema::{schema, Schema};
use squery_common::{DataType, PartitionId, Partitioner, SnapshotId, Value};
use squery_storage::SnapshotStore;
use std::collections::HashMap;
use std::sync::Arc;

// ---------- strategies -------------------------------------------------------

fn leaf_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<i64>().prop_map(Value::Timestamp),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::str),
        proptest::collection::vec(any::<u8>(), 0..32)
            .prop_map(|b| Value::Bytes(Arc::from(&b[..]))),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    leaf_value().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::list),
            proptest::collection::vec(inner, 1..5).prop_map(|vals| {
                let fields: Vec<(String, DataType)> = vals
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (format!("f{i}"), codec::infer_dtype(v)))
                    .collect();
                let schema = Arc::new(Schema::new(fields));
                Value::record(&schema, vals)
            }),
        ]
    })
}

fn key_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..64).prop_map(Value::Int),
        "[a-z]{1,6}".prop_map(Value::str),
    ]
}

// ---------- codec -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity, and encoded_len is exact.
    #[test]
    fn codec_roundtrips_arbitrary_values(v in value_strategy()) {
        let bytes = codec::encode(&v);
        prop_assert_eq!(bytes.len(), codec::encoded_len(&v));
        let back = codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Decoding never panics on arbitrary bytes — it errors or succeeds.
    #[test]
    fn codec_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = codec::decode(&bytes);
    }
}

// ---------- partitioner ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key maps into range, deterministically, and the instance that
    /// owns the key's partition is the instance the exchange routes to.
    #[test]
    fn partitioner_routing_is_consistent(
        keys in proptest::collection::vec(key_strategy(), 1..50),
        parts in 1u32..512,
        n in 1u32..16,
    ) {
        let p = Partitioner::new(parts);
        for key in &keys {
            let pid = p.partition_of(key);
            prop_assert!(pid.0 < parts);
            prop_assert_eq!(pid, p.partition_of(key));
            let inst = p.instance_of(key, n);
            prop_assert_eq!(inst, p.instance_of_partition(pid, n));
            prop_assert!(inst < n);
        }
        // Instances partition the partition space exactly.
        let total: usize = (0..n).map(|i| p.partitions_of_instance(i, n).len()).sum();
        prop_assert_eq!(total, parts as usize);
    }
}

// ---------- snapshot store vs model ----------------------------------------------

/// One checkpoint's worth of changes.
type Delta = Vec<(u8, Option<i32>)>;

fn delta_strategy() -> impl Strategy<Value = Vec<Delta>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<u8>(), proptest::option::of(any::<i32>())), 0..12),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The store's differential read at every snapshot id equals a model
    /// that applies the deltas to a plain map — including after pruning.
    #[test]
    fn snapshot_store_matches_model(deltas in delta_strategy(), prune_at in 0usize..8) {
        let partitioner = Partitioner::new(16);
        let store = SnapshotStore::new("model", partitioner);
        let mut model: HashMap<Value, Value> = HashMap::new();
        let mut views: Vec<HashMap<Value, Value>> = Vec::new();

        for (i, delta) in deltas.iter().enumerate() {
            let ssid = SnapshotId(i as u64 + 1);
            // Apply to the model.
            for (k, v) in delta {
                let key = Value::Int(*k as i64);
                match v {
                    Some(x) => { model.insert(key, Value::Int(*x as i64)); }
                    None => { model.remove(&key); }
                }
            }
            views.push(model.clone());
            // Write to the store: first checkpoint full, later ones deltas.
            let full = i == 0;
            let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
            for pid in 0..16 {
                by_pid.insert(pid, Vec::new());
            }
            if full {
                for (k, v) in &model {
                    by_pid.entry(partitioner.partition_of(k).0).or_default()
                        .push((k.clone(), Some(v.clone())));
                }
            } else {
                // Dedup: the last write per key within the delta wins.
                let mut latest: HashMap<Value, Option<Value>> = HashMap::new();
                for (k, v) in delta {
                    latest.insert(Value::Int(*k as i64), v.map(|x| Value::Int(x as i64)));
                }
                for (k, v) in latest {
                    by_pid.entry(partitioner.partition_of(&k).0).or_default().push((k, v));
                }
            }
            for (pid, entries) in by_pid {
                store.write_partition(ssid, PartitionId(pid), entries, full);
            }
        }

        // Every version resolves to its model view.
        for (i, view) in views.iter().enumerate() {
            let ssid = SnapshotId(i as u64 + 1);
            let (scan, _) = store.scan_at(ssid).unwrap();
            let got: HashMap<Value, Value> = scan.into_iter().collect();
            prop_assert_eq!(&got, view, "mismatch at {}", ssid);
        }

        // Prune to an arbitrary horizon; surviving versions still match.
        let horizon = (prune_at % deltas.len()) as u64 + 1;
        store.prune_below(SnapshotId(horizon));
        for (i, view) in views.iter().enumerate() {
            let ssid = SnapshotId(i as u64 + 1);
            if ssid.0 < horizon {
                prop_assert!(store.scan_at(ssid).is_err(), "pruned id must error");
            } else {
                let (scan, _) = store.scan_at(ssid).unwrap();
                let got: HashMap<Value, Value> = scan.into_iter().collect();
                prop_assert_eq!(&got, view, "post-prune mismatch at {}", ssid);
            }
        }
    }
}

// ---------- histogram -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Percentiles are bounded by the recorded extremes, monotone in q, and
    /// within the quantization error of the exact answer.
    #[test]
    fn histogram_percentiles_are_sound(values in proptest::collection::vec(0u64..10_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = h.percentile(q);
            prop_assert!(est >= h.min() && est <= h.max());
            prop_assert!(est >= last, "percentile must be monotone in q");
            last = est;
            // Mirror the histogram's own rank convention (ceil(q·n), 1-based)
            // so only bucket quantization separates est from exact.
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            // Log-linear buckets: ≤ ~6.25% relative error above 32.
            if exact > 32 {
                let err = (est as f64 - exact as f64).abs() / exact as f64;
                prop_assert!(err < 0.08, "q={} est={} exact={}", q, est, exact);
            }
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }
}

// ---------- SQL arithmetic vs native ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Integer arithmetic evaluated by the SQL engine equals native Rust
    /// (wrapping) arithmetic for + - *.
    #[test]
    fn sql_arithmetic_matches_native(a in -10_000i64..10_000, b in -10_000i64..10_000, op in 0u8..3) {
        use squery_sql::catalog::{MemCatalog, MemTable};
        use squery_sql::SqlEngine;
        let (sym, expected) = match op {
            0 => ("+", a.wrapping_add(b)),
            1 => ("-", a.wrapping_sub(b)),
            _ => ("*", a.wrapping_mul(b)),
        };
        let t = schema(vec![("x", DataType::Int)]);
        let engine = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new(
            "t", t, vec![vec![Value::Int(0)]],
        ))]));
        // Negative literals need parenthesization in the second operand.
        let sql = format!("SELECT {a} {sym} ({b}) AS r FROM t");
        let rs = engine.query(&sql).unwrap();
        prop_assert_eq!(rs.scalar("r"), Some(&Value::Int(expected)));
    }

    /// WHERE-clause comparisons agree with native ordering on integers.
    #[test]
    fn sql_comparisons_match_native(a in -1000i64..1000, b in -1000i64..1000) {
        use squery_sql::catalog::{MemCatalog, MemTable};
        use squery_sql::SqlEngine;
        let t = schema(vec![("x", DataType::Int)]);
        let engine = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new(
            "t", t, vec![vec![Value::Int(a)]],
        ))]));
        for (sym, holds) in [
            ("<", a < b),
            ("<=", a <= b),
            (">", a > b),
            (">=", a >= b),
            ("=", a == b),
            ("<>", a != b),
        ] {
            let rs = engine
                .query(&format!("SELECT x FROM t WHERE x {sym} ({b})"))
                .unwrap();
            prop_assert_eq!(rs.len() == 1, holds, "{} {} {}", a, sym, b);
        }
    }
}

// ---------- LIKE matcher vs oracle ------------------------------------------------------

/// Reference implementation: straightforward recursion.
fn like_oracle(text: &[char], pattern: &[char]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => {
            (0..=text.len()).any(|skip| like_oracle(&text[skip..], rest))
        }
        Some(('_', rest)) => match text.split_first() {
            Some((_, t_rest)) => like_oracle(t_rest, rest),
            None => false,
        },
        Some((c, rest)) => match text.split_first() {
            Some((t, t_rest)) if t == c => like_oracle(t_rest, rest),
            _ => false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The iterative backtracking matcher agrees with the recursive oracle
    /// on arbitrary short texts and patterns.
    #[test]
    fn like_matches_oracle(text in "[ab%_]{0,10}", pattern in "[ab%_]{0,8}") {
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        prop_assert_eq!(
            squery_sql::expr::like_match(&text, &pattern),
            like_oracle(&t, &p),
            "text={:?} pattern={:?}", text, pattern
        );
    }
}

// ---------- value total order ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The value ordering is a strict total order usable for sorting: it is
    /// antisymmetric and sorting is stable under resorting.
    #[test]
    fn value_total_order_is_consistent(values in proptest::collection::vec(value_strategy(), 2..20)) {
        use std::cmp::Ordering;
        for a in &values {
            prop_assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &values {
                prop_assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
        let mut sorted = values.clone();
        sorted.sort();
        let mut resorted = sorted.clone();
        resorted.sort();
        prop_assert_eq!(sorted, resorted);
    }

    /// Hash agrees with equality (HashMap-key safety).
    #[test]
    fn value_hash_agrees_with_eq(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut hasher = DefaultHasher::new();
            v.hash(&mut hasher);
            hasher.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }
}
