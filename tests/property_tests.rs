//! Randomized property tests on the core data structures and invariants:
//! codec roundtrips, snapshot-store differential reads vs a model,
//! partitioner coverage, histogram percentile bounds, SQL arithmetic vs
//! native evaluation, and the total order on values.
//!
//! The cases are driven by a small deterministic xorshift PRNG seeded per
//! test, so failures reproduce exactly without an external property-testing
//! dependency (the build environment vendors all deps locally).

use squery_common::codec;
use squery_common::metrics::Histogram;
use squery_common::schema::{schema, Schema};
use squery_common::{DataType, PartitionId, Partitioner, SnapshotId, Value};
use squery_storage::SnapshotStore;
use std::collections::HashMap;
use std::sync::Arc;

// ---------- deterministic generator ------------------------------------------

/// xorshift64* — tiny, fast, and deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform in `[lo, hi)`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.below((hi - lo) as u64) as i64)
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn ascii_string(&mut self, alphabet: &[u8], max_len: usize) -> String {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize] as char)
            .collect()
    }
}

fn leaf_value(rng: &mut Rng) -> Value {
    match rng.below(7) {
        0 => Value::Null,
        1 => Value::Bool(rng.bool()),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::Float(f64::from_bits(rng.next_u64() & !(0x7ff << 52)) * 1e3),
        4 => Value::Timestamp(rng.next_u64() as i64),
        5 => Value::str(rng.ascii_string(b"abcXYZ09 _-", 24)),
        _ => {
            let len = rng.below(32) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            Value::Bytes(Arc::from(&bytes[..]))
        }
    }
}

fn arbitrary_value(rng: &mut Rng, depth: u32) -> Value {
    if depth == 0 || rng.below(3) == 0 {
        return leaf_value(rng);
    }
    if rng.bool() {
        let n = rng.below(6) as usize;
        Value::list((0..n).map(|_| arbitrary_value(rng, depth - 1)).collect())
    } else {
        let n = 1 + rng.below(4) as usize;
        let vals: Vec<Value> = (0..n).map(|_| arbitrary_value(rng, depth - 1)).collect();
        let fields: Vec<(String, DataType)> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("f{i}"), codec::infer_dtype(v)))
            .collect();
        let schema = Arc::new(Schema::new(fields));
        Value::record(&schema, vals)
    }
}

fn arbitrary_key(rng: &mut Rng) -> Value {
    if rng.bool() {
        Value::Int(rng.range_i64(0, 64))
    } else {
        let s = rng.ascii_string(b"abcdefghij", 6);
        Value::str(if s.is_empty() { "k".into() } else { s })
    }
}

// ---------- codec -------------------------------------------------------------

/// encode → decode is the identity, and encoded_len is exact.
#[test]
fn codec_roundtrips_arbitrary_values() {
    let mut rng = Rng::new(0xC0DE_C0DE);
    for _ in 0..256 {
        let v = arbitrary_value(&mut rng, 3);
        let bytes = codec::encode(&v);
        assert_eq!(bytes.len(), codec::encoded_len(&v), "encoded_len for {v:?}");
        let back = codec::decode(&bytes).unwrap();
        assert_eq!(back, v);
    }
}

/// Decoding never panics on arbitrary bytes — it errors or succeeds.
#[test]
fn codec_decode_is_total() {
    let mut rng = Rng::new(0xDEAD_BEEF);
    for _ in 0..512 {
        let len = rng.below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = codec::decode(&bytes);
    }
}

// ---------- partitioner ---------------------------------------------------------

/// Every key maps into range, deterministically, and the instance that owns
/// the key's partition is the instance the exchange routes to.
#[test]
fn partitioner_routing_is_consistent() {
    let mut rng = Rng::new(0x9A27_1271);
    for _ in 0..64 {
        let parts = 1 + rng.below(511) as u32;
        let n = 1 + rng.below(15) as u32;
        let p = Partitioner::new(parts);
        let keys: Vec<Value> = (0..1 + rng.below(49))
            .map(|_| arbitrary_key(&mut rng))
            .collect();
        for key in &keys {
            let pid = p.partition_of(key);
            assert!(pid.0 < parts);
            assert_eq!(pid, p.partition_of(key));
            let inst = p.instance_of(key, n);
            assert_eq!(inst, p.instance_of_partition(pid, n));
            assert!(inst < n);
        }
        // Instances partition the partition space exactly.
        let total: usize = (0..n).map(|i| p.partitions_of_instance(i, n).len()).sum();
        assert_eq!(total, parts as usize);
    }
}

// ---------- snapshot store vs model ----------------------------------------------

/// The store's differential read at every snapshot id equals a model that
/// applies the deltas to a plain map — including after pruning.
#[test]
fn snapshot_store_matches_model() {
    let mut rng = Rng::new(0x5A5A_1111);
    for case in 0..128 {
        let rounds = 1 + rng.below(7) as usize;
        let deltas: Vec<Vec<(u8, Option<i32>)>> = (0..rounds)
            .map(|_| {
                (0..rng.below(12))
                    .map(|_| {
                        (
                            rng.next_u64() as u8,
                            if rng.bool() {
                                Some(rng.next_u64() as i32)
                            } else {
                                None
                            },
                        )
                    })
                    .collect()
            })
            .collect();

        let partitioner = Partitioner::new(16);
        let store = SnapshotStore::new("model", partitioner);
        let mut model: HashMap<Value, Value> = HashMap::new();
        let mut views: Vec<HashMap<Value, Value>> = Vec::new();

        for (i, delta) in deltas.iter().enumerate() {
            let ssid = SnapshotId(i as u64 + 1);
            for (k, v) in delta {
                let key = Value::Int(*k as i64);
                match v {
                    Some(x) => {
                        model.insert(key, Value::Int(*x as i64));
                    }
                    None => {
                        model.remove(&key);
                    }
                }
            }
            views.push(model.clone());
            // Write to the store: first checkpoint full, later ones deltas.
            let full = i == 0;
            let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
            for pid in 0..16 {
                by_pid.insert(pid, Vec::new());
            }
            if full {
                for (k, v) in &model {
                    by_pid
                        .entry(partitioner.partition_of(k).0)
                        .or_default()
                        .push((k.clone(), Some(v.clone())));
                }
            } else {
                // Dedup: the last write per key within the delta wins.
                let mut latest: HashMap<Value, Option<Value>> = HashMap::new();
                for (k, v) in delta {
                    latest.insert(Value::Int(*k as i64), v.map(|x| Value::Int(x as i64)));
                }
                for (k, v) in latest {
                    by_pid
                        .entry(partitioner.partition_of(&k).0)
                        .or_default()
                        .push((k, v));
                }
            }
            for (pid, entries) in by_pid {
                store.write_partition(ssid, PartitionId(pid), entries, full);
            }
        }

        // Every version resolves to its model view.
        for (i, view) in views.iter().enumerate() {
            let ssid = SnapshotId(i as u64 + 1);
            let (scan, _) = store.scan_at(ssid).unwrap();
            let got: HashMap<Value, Value> = scan.into_iter().collect();
            assert_eq!(&got, view, "case {case}: mismatch at {ssid}");
        }

        // Prune to an arbitrary horizon; surviving versions still match.
        let horizon = rng.below(deltas.len() as u64) + 1;
        store.prune_below(SnapshotId(horizon));
        for (i, view) in views.iter().enumerate() {
            let ssid = SnapshotId(i as u64 + 1);
            if ssid.0 < horizon {
                assert!(store.scan_at(ssid).is_err(), "pruned id must error");
            } else {
                let (scan, _) = store.scan_at(ssid).unwrap();
                let got: HashMap<Value, Value> = scan.into_iter().collect();
                assert_eq!(&got, view, "case {case}: post-prune mismatch at {ssid}");
            }
        }
    }
}

// ---------- histogram -------------------------------------------------------------

/// Percentiles are bounded by the recorded extremes, monotone in q, and
/// within the quantization error of the exact answer.
#[test]
fn histogram_percentiles_are_sound() {
    let mut rng = Rng::new(0x4157_0611);
    for _ in 0..128 {
        let n = 1 + rng.below(499) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.below(10_000_000)).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = h.percentile(q);
            assert!(est >= h.min() && est <= h.max());
            assert!(est >= last, "percentile must be monotone in q");
            last = est;
            // Mirror the histogram's own rank convention (ceil(q·n), 1-based)
            // so only bucket quantization separates est from exact.
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            // Log-linear buckets: ≤ ~6.25% relative error above 32.
            if exact > 32 {
                let err = (est as f64 - exact as f64).abs() / exact as f64;
                assert!(err < 0.08, "q={q} est={est} exact={exact}");
            }
        }
        assert_eq!(h.count(), values.len() as u64);
    }
}

// ---------- SQL arithmetic vs native ------------------------------------------------

/// Integer arithmetic evaluated by the SQL engine equals native Rust
/// (wrapping) arithmetic for + - *.
#[test]
fn sql_arithmetic_matches_native() {
    use squery_sql::catalog::{MemCatalog, MemTable};
    use squery_sql::SqlEngine;
    let mut rng = Rng::new(0x0501_AB1E);
    let t = schema(vec![("x", DataType::Int)]);
    let engine = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new(
        "t",
        t,
        vec![vec![Value::Int(0)]],
    ))]));
    for _ in 0..128 {
        let a = rng.range_i64(-10_000, 10_000);
        let b = rng.range_i64(-10_000, 10_000);
        let (sym, expected) = match rng.below(3) {
            0 => ("+", a.wrapping_add(b)),
            1 => ("-", a.wrapping_sub(b)),
            _ => ("*", a.wrapping_mul(b)),
        };
        // Negative literals need parenthesization in the second operand.
        let sql = format!("SELECT {a} {sym} ({b}) AS r FROM t");
        let rs = engine.query(&sql).unwrap();
        assert_eq!(rs.scalar("r"), Some(&Value::Int(expected)), "{sql}");
    }
}

/// WHERE-clause comparisons agree with native ordering on integers.
#[test]
fn sql_comparisons_match_native() {
    use squery_sql::catalog::{MemCatalog, MemTable};
    use squery_sql::SqlEngine;
    let mut rng = Rng::new(0xC0A1_77E5);
    for _ in 0..64 {
        let a = rng.range_i64(-1000, 1000);
        let b = rng.range_i64(-1000, 1000);
        let t = schema(vec![("x", DataType::Int)]);
        let engine = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new(
            "t",
            t,
            vec![vec![Value::Int(a)]],
        ))]));
        for (sym, holds) in [
            ("<", a < b),
            ("<=", a <= b),
            (">", a > b),
            (">=", a >= b),
            ("=", a == b),
            ("<>", a != b),
        ] {
            let rs = engine
                .query(&format!("SELECT x FROM t WHERE x {sym} ({b})"))
                .unwrap();
            assert_eq!(rs.len() == 1, holds, "{a} {sym} {b}");
        }
    }
}

// ---------- LIKE matcher vs oracle ------------------------------------------------------

/// Reference implementation: straightforward recursion.
fn like_oracle(text: &[char], pattern: &[char]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => (0..=text.len()).any(|skip| like_oracle(&text[skip..], rest)),
        Some(('_', rest)) => match text.split_first() {
            Some((_, t_rest)) => like_oracle(t_rest, rest),
            None => false,
        },
        Some((c, rest)) => match text.split_first() {
            Some((t, t_rest)) if t == c => like_oracle(t_rest, rest),
            _ => false,
        },
    }
}

/// The iterative backtracking matcher agrees with the recursive oracle on
/// arbitrary short texts and patterns.
#[test]
fn like_matches_oracle() {
    let mut rng = Rng::new(0x11CE_CAFE);
    for _ in 0..512 {
        let text = rng.ascii_string(b"ab%_", 10);
        let pattern = rng.ascii_string(b"ab%_", 8);
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        assert_eq!(
            squery_sql::expr::like_match(&text, &pattern),
            like_oracle(&t, &p),
            "text={text:?} pattern={pattern:?}"
        );
    }
}

// ---------- value total order ----------------------------------------------------------

/// The value ordering is a strict total order usable for sorting: it is
/// antisymmetric and sorting is stable under resorting.
#[test]
fn value_total_order_is_consistent() {
    use std::cmp::Ordering;
    let mut rng = Rng::new(0x0D0E_0007);
    for _ in 0..64 {
        let n = 2 + rng.below(18) as usize;
        let values: Vec<Value> = (0..n).map(|_| arbitrary_value(&mut rng, 3)).collect();
        for a in &values {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &values {
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
        let mut sorted = values.clone();
        sorted.sort();
        let mut resorted = sorted.clone();
        resorted.sort();
        assert_eq!(sorted, resorted);
    }
}

/// Hash agrees with equality (HashMap-key safety).
#[test]
fn value_hash_agrees_with_eq() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    fn h(v: &Value) -> u64 {
        let mut hasher = DefaultHasher::new();
        v.hash(&mut hasher);
        hasher.finish()
    }
    let mut rng = Rng::new(0x4A54_0001);
    for _ in 0..256 {
        let a = arbitrary_value(&mut rng, 2);
        let b = if rng.bool() {
            a.clone()
        } else {
            arbitrary_value(&mut rng, 2)
        };
        if a == b {
            assert_eq!(h(&a), h(&b));
        }
    }
}
