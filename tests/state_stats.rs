//! Continuous state-statistics integration tests: write-path accounting vs
//! real scans across degrees of parallelism, pinned-snapshot partition
//! profiles, and survival of the counters through supervised recovery.

mod common;

use common::{advance, gated_counter_system_with};
use squery::{RestartPolicy, SQueryConfig, StateConfig};
use squery_common::fault::{FaultAction, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint};
use squery_common::{PartitionId, Value};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Per-partition row counts of a live map, counted by really scanning it.
fn scanned_partition_rows(grid: &squery::Grid, map: &str) -> HashMap<i64, i64> {
    let map = grid.get_map(map).expect("live map");
    let mut out = HashMap::new();
    for pid in 0..map.partitioner().partition_count() {
        let mut n = 0i64;
        map.for_each_in_partition(PartitionId(pid), |_, _| n += 1);
        if n > 0 {
            out.insert(pid as i64, n);
        }
    }
    out
}

/// The accounting behind `sys_partitions` must agree, partition by
/// partition, with what a real scan returns — at every supported degree of
/// parallelism, for the live table and for a pinned snapshot version.
#[test]
fn sys_partitions_match_scan_counts_at_every_dop() {
    let (system, job, allowance) = gated_counter_system_with(
        SQueryConfig::default().with_state(StateConfig::live_and_snapshot()),
        97,
        2,
    );
    advance(&job, &allowance, 500);
    let pinned = job.checkpoint_now().unwrap();
    // More churn after the checkpoint: live and snapshot profiles diverge.
    advance(&job, &allowance, 700);

    let expected_live = scanned_partition_rows(system.grid(), "count");
    assert!(!expected_live.is_empty(), "fixture populated partitions");
    let expected_live_total: i64 = expected_live.values().sum();

    for dop in [1usize, 4, 8] {
        let rs = system
            .query_with_dop(
                "SELECT partition, rows FROM sys_partitions \
                 WHERE table = 'count' AND ssid IS NULL",
                dop,
            )
            .unwrap();
        let accounted: HashMap<i64, i64> = rs
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            accounted, expected_live,
            "live accounting diverged from scan at dop {dop}"
        );

        // The pinned snapshot's profile must sum to the checkpoint-time
        // population (97 distinct keys seen by event 500).
        let rs = system
            .query_with_dop(
                &format!(
                    "SELECT SUM(rows) AS n FROM sys_partitions \
                     WHERE table = 'snapshot_count' AND ssid = {}",
                    pinned.0
                ),
                dop,
            )
            .unwrap();
        assert_eq!(
            rs.scalar("n"),
            Some(&Value::Int(97)),
            "pinned snapshot profile wrong at dop {dop}"
        );
    }

    // Cross-check the catalog totals against a real COUNT(*).
    let counted = system
        .query("SELECT COUNT(*) AS n FROM count")
        .unwrap()
        .scalar("n")
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(counted, expected_live_total);
    assert_eq!(system.stats().estimated_rows("count"), Some(counted as u64));
    job.stop();
}

/// Supervised recovery clears and reloads live maps; the accounting must
/// come out of it matching the restored state — never negative, and with
/// the restore itself not counted as write churn.
#[test]
fn stats_survive_supervised_recovery() {
    let config = SQueryConfig::default()
        .with_state(StateConfig::live_and_snapshot())
        .with_stats_interval(Some(Duration::from_millis(10)));
    let system = std::sync::Arc::new(squery::SQuery::new(config).unwrap());
    let injector = system.inject_faults(FaultPlan::new(0).with(FaultSpec {
        point: InjectionPoint::WorkerPostAck,
        action: FaultAction::PanicWorker,
        trigger: FaultTrigger {
            at_ssid: Some(2),
            operator: Some("count".into()),
            instance: Some(0),
            ..FaultTrigger::default()
        },
        once: true,
    }));

    let allowance = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut b = squery::JobSpec::builder("stats-recovery");
    let src = b.source(
        "events",
        1,
        std::sync::Arc::new(common::GatedFactory {
            keys: 13,
            allowance: std::sync::Arc::clone(&allowance),
        }),
    );
    let op = b.stateful_with_schema(
        "count",
        2,
        common::counter_factory(),
        squery_common::schema::schema(vec![("this", squery_common::DataType::Int)]),
    );
    let sink = b.sink(
        "sink",
        1,
        std::sync::Arc::new(squery_streaming::dag::adapters::NullSinkFactory),
    );
    b.edge(src, op, squery::EdgeKind::Keyed);
    b.edge(op, sink, squery::EdgeKind::Forward);
    let job = system
        .submit_supervised(
            b.build().unwrap(),
            RestartPolicy {
                max_restarts: 5,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(50),
                poll_interval: Duration::from_millis(2),
                jitter_seed: 7,
            },
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);

    let live_total = |sys: &squery::SQuery| -> i64 {
        sys.query("SELECT SUM(this) AS n FROM count")
            .unwrap()
            .scalar("n")
            .and_then(|v| v.as_int())
            .unwrap_or(0)
    };

    // Round 1 commits; round 2's checkpoint fires the planned worker panic
    // and the supervisor recovers on its own.
    allowance.store(100, Ordering::Release);
    while live_total(&system) < 100 {
        assert!(Instant::now() < deadline, "round 1 never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    job.with_job(|j| j.checkpoint_now()).unwrap();
    allowance.store(200, Ordering::Release);
    while live_total(&system) < 200 {
        assert!(Instant::now() < deadline, "round 2 never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = job.with_job(|j| j.checkpoint_now()); // fires the fault
    while injector.records().is_empty() || job.status().restarts == 0 {
        assert!(!job.status().gave_up, "supervisor gave up");
        assert!(Instant::now() < deadline, "recovery never happened");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let the replay finish: state catches back up to the full stream.
    while live_total(&system) < 200 {
        assert!(Instant::now() < deadline, "replay never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The accounting matches the restored reality: per-table rows equal a
    // real scan, and nothing went negative through clear + reload.
    let expected = scanned_partition_rows(system.grid(), "count");
    let stats = system.stats().table("count").expect("stats for count");
    assert_eq!(
        stats.rows,
        expected.values().sum::<i64>() as u64,
        "restored accounting diverged from scan"
    );
    for (pid, s) in system
        .grid()
        .get_map("count")
        .unwrap()
        .partition_stats()
        .into_iter()
        .enumerate()
    {
        let scanned = expected.get(&(pid as i64)).copied().unwrap_or(0) as u64;
        assert_eq!(s.rows, scanned, "partition {pid} rows wrong after recovery");
    }
    // Sampler keeps running against the recovered state without panicking,
    // and the sketches still see the full key population.
    let before = system.stats().samples_total();
    system.sample_stats_now();
    assert!(system.stats().samples_total() > before);
    let t = system.stats().table("count").unwrap();
    assert_eq!(t.distinct_keys, 13, "HLL exact at 13 keys");
    job.stop();
}
