//! Integration tests for the paper's §VII isolation-level semantics,
//! exercising the full stack: stream engine → grid → query system.

mod common;

use common::{advance, gated_counter_system};
use squery::{IsolationLevel, StateConfig, StateView};
use squery_common::{SnapshotId, Value};

fn live_count(system: &squery::SQuery, key: i64) -> i64 {
    system
        .direct()
        .get("count", &Value::Int(key), StateView::Live)
        .unwrap()
        .and_then(|v| v.as_int())
        .unwrap_or(0)
}

fn snapshot_count(system: &squery::SQuery, key: i64, ssid: SnapshotId) -> i64 {
    system
        .direct()
        .get("count", &Value::Int(key), StateView::Snapshot(ssid))
        .unwrap()
        .and_then(|v| v.as_int())
        .unwrap_or(0)
}

/// Figure 5 end-to-end: live reads are read-uncommitted across failures.
#[test]
fn live_reads_are_dirty_across_failures() {
    let (system, mut job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 1, 1);
    advance(&job, &allowance, 4);
    job.checkpoint_now().unwrap();
    advance(&job, &allowance, 5);
    assert_eq!(live_count(&system, 0), 5, "uncommitted update observed");
    job.crash();
    // Gate the 5th event again so the recovery-restored value is observable
    // before the source replays it.
    allowance.store(4, std::sync::atomic::Ordering::Release);
    job.recover().unwrap();
    assert_eq!(
        live_count(&system, 0),
        4,
        "recovery rolled the observed value back: the read was dirty"
    );
    job.stop();
}

/// Absent failures, live reads only ever observe committed-by-arrival
/// serialized updates (read committed per §VII-B).
#[test]
fn live_reads_without_failures_are_monotone() {
    let (system, job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 1, 1);
    let mut last = 0;
    for step in 1..=20u64 {
        advance(&job, &allowance, step);
        let now = live_count(&system, 0);
        assert!(now >= last, "live counter went backwards without a failure");
        last = now;
    }
    assert_eq!(last, 20);
    job.stop();
}

/// Figure 6 end-to-end: snapshot reads are serializable — stable across
/// concurrent updates and failures.
#[test]
fn snapshot_reads_are_stable_across_updates_and_failures() {
    let (system, mut job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 1, 1);
    advance(&job, &allowance, 2);
    let ssid = job.checkpoint_now().unwrap();
    let first_read = snapshot_count(&system, 0, ssid);
    assert_eq!(first_read, 2);

    advance(&job, &allowance, 3); // concurrent update
    assert_eq!(snapshot_count(&system, 0, ssid), first_read);

    job.crash();
    job.recover().unwrap();
    assert_eq!(
        snapshot_count(&system, 0, ssid),
        first_read,
        "pinned snapshot survives failure + recovery"
    );
    job.stop();
}

/// The atomic publication of Figure 1: while a checkpoint is in progress,
/// default snapshot queries keep answering from the previous committed id.
#[test]
fn queries_use_previous_snapshot_until_commit() {
    let (system, job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 1, 1);
    advance(&job, &allowance, 3);
    let s1 = job.checkpoint_now().unwrap();
    assert_eq!(system.latest_snapshot(), Some(s1));
    advance(&job, &allowance, 7);
    // Between checkpoints the default-ssid query still reads s1's data.
    let rs = system
        .query("SELECT this FROM snapshot_count WHERE partitionKey = 0")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(3));
    let s2 = job.checkpoint_now().unwrap();
    assert!(s2 > s1);
    let rs = system
        .query("SELECT this FROM snapshot_count WHERE partitionKey = 0")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(7), "flips atomically at commit");
    job.stop();
}

/// A multi-table snapshot query reads ONE consistent snapshot id even while
/// checkpoints race with it (the serializable join path of §VII-B).
#[test]
fn joins_read_one_consistent_snapshot() {
    let (system, job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 4, 2);
    advance(&job, &allowance, 40);
    job.checkpoint_now().unwrap();
    // Self-join of the snapshot table: with a single resolved ssid both
    // sides agree on every key, so the join never loses or duplicates rows.
    let rs = system
        .query(
            "SELECT COUNT(*) AS n FROM snapshot_count a JOIN snapshot_count b \
             USING(partitionKey) WHERE a.this = b.this",
        )
        .unwrap();
    assert_eq!(rs.scalar("n"), Some(&Value::Int(4)));
    job.stop();
}

/// Isolation-level metadata matches the view semantics demonstrated above.
#[test]
fn isolation_level_classification() {
    assert_eq!(
        IsolationLevel::of_view(StateView::Live, false),
        IsolationLevel::ReadUncommitted
    );
    assert_eq!(
        IsolationLevel::of_view(StateView::Live, true),
        IsolationLevel::ReadCommitted
    );
    assert_eq!(
        IsolationLevel::of_view(StateView::LatestSnapshot, false),
        IsolationLevel::Serializable
    );
    assert!(IsolationLevel::ReadUncommitted.allows_dirty_reads());
    assert!(IsolationLevel::Serializable.is_snapshot_stable());
}

/// Querying a pruned snapshot version fails instead of silently answering
/// from the wrong data.
#[test]
fn pruned_versions_are_rejected() {
    let (system, job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 1, 1);
    advance(&job, &allowance, 1);
    let s1 = job.checkpoint_now().unwrap();
    for _ in 0..3 {
        job.checkpoint_now().unwrap();
    }
    // Default retention is 2: s1 is gone.
    assert!(!system.retained_snapshots().contains(&s1));
    let err = system
        .direct()
        .get("count", &Value::Int(0), StateView::Snapshot(s1))
        .unwrap_err();
    assert!(matches!(err, squery_common::SqError::NotFound(_)), "{err}");
    job.stop();
}
