//! Lock-order tracker soak: run seeded chaos iterations with the runtime
//! tracker armed and assert it stays silent. The tracker's positive case
//! (that A→B/B→A interleavings DO fire) is unit-tested next to the tracker
//! in `squery_common::lockorder`; here we prove the real system honours the
//! canonical order end to end, crashes and restarts included.
//!
//! The full 100-seed soak runs in CI via `scripts/check.sh --only chaos`
//! with `SQUERY_LOCK_ORDER=1`; this test keeps a small always-on slice in
//! the default suite.

use squery::chaos::{run_seed, ChaosConfig};
use squery::invariants;
use squery_common::lockorder;

#[test]
fn lock_order_tracker_is_silent_across_chaos_seeds() {
    lockorder::set_enabled(true);
    let cfg = ChaosConfig::default();
    for seed in 1..=4u64 {
        let report = run_seed(&cfg, seed)
            .unwrap_or_else(|e| panic!("seed {seed} failed under the tracker: {e}"));
        // run_seed already checks the invariant per seed; assert the drained
        // global list stayed empty afterwards too.
        invariants::check_lock_order_clean()
            .unwrap_or_else(|e| panic!("seed {seed} (fingerprint {}): {e}", report.fingerprint));
    }
    lockorder::set_enabled(false);
}
