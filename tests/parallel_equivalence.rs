//! Property: parallel query execution is invisible in results. For any
//! degree of parallelism, every query returns **row-for-row identical**
//! output (same rows, same order) to sequential execution — including over
//! sys tables and while checkpoints commit concurrently.

mod common;

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::Value;
use squery_nexmark::{q6_job, NexmarkConfig};
use squery_qcommerce::{
    order_monitoring_job, QCommerceConfig, ORDER_STATES, QUERY_1, QUERY_2, QUERY_3, QUERY_4,
};
use std::time::Duration;

const DOPS: [usize; 3] = [2, 4, 8];

/// Row-for-row equality, with one documented relaxation (DESIGN.md §5):
/// float aggregates may differ by a few ulps because the parallel merge
/// reassociates float addition. Everything else must be bit-identical.
fn rows_equivalent(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => {
                        x == y || (x - y).abs() <= 8.0 * f64::EPSILON * x.abs().max(y.abs())
                    }
                    _ => va == vb,
                })
        })
}

fn assert_dop_equivalence(system: &SQuery, queries: &[&str]) {
    for sql in queries {
        let sequential = system.query_with_dop(sql, 1).expect(sql);
        for dop in DOPS {
            let parallel = system.query_with_dop(sql, dop).expect(sql);
            assert!(
                rows_equivalent(parallel.rows(), sequential.rows()),
                "dop {dop} differs from sequential for: {sql}\n parallel: {:?}\n sequential: {:?}",
                parallel.rows(),
                sequential.rows()
            );
        }
    }
}

#[test]
fn paper_queries_are_dop_invariant() {
    const ORDERS: u64 = 1_000;
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let cfg = QCommerceConfig {
        orders: ORDERS,
        riders: 100,
        events_per_instance: ORDERS * ORDER_STATES.len() as u64,
        rate_per_instance: None,
        prefill_passes: 0,
    };
    let mut job = system.submit(order_monitoring_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(120)).unwrap();

    assert_dop_equivalence(
        &system,
        &[
            QUERY_1,
            QUERY_2,
            QUERY_3,
            QUERY_4,
            // Live-table scan with a join back onto snapshot state.
            "SELECT COUNT(*) AS n FROM orderinfo JOIN snapshot_orderstate USING(partitionKey)",
            // Multi-version scan: every retained ssid materialized.
            "SELECT ssid, COUNT(*) FROM snapshot_orderinfo WHERE ssid >= 0 GROUP BY ssid",
            // Non-aggregate ORDER BY + LIMIT over a parallel scan.
            "SELECT partitionKey, deliveryZone FROM snapshot_orderinfo \
             ORDER BY partitionKey LIMIT 50",
        ],
    );
    job.stop();
}

#[test]
fn q6_and_sys_table_queries_are_dop_invariant() {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let cfg = NexmarkConfig {
        sellers: 200,
        active_auctions: 400,
        events_per_instance: 5_000,
        rate_per_instance: None,
    };
    let mut job = system.submit(q6_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(120)).unwrap();

    assert_dop_equivalence(
        &system,
        &[
            "SELECT COUNT(*) AS n, AVG(average) AS m FROM snapshot_average",
            "SELECT partitionKey, average FROM snapshot_average ORDER BY partitionKey LIMIT 20",
            "SELECT COUNT(*) FROM snapshot_average JOIN snapshot_maxbid USING(partitionKey)",
            // Sys tables are Whole scans: the parallel driver chunks them.
            "SELECT operator, snapshot_entries FROM sys_operators ORDER BY operator",
            "SELECT store, ssid, entries, committed FROM sys_snapshots ORDER BY store, ssid",
            "SELECT job, COUNT(*) FROM sys_checkpoints GROUP BY job",
        ],
    );
    job.stop();
}

/// Queries pinned to an explicit snapshot id stay dop-invariant while later
/// checkpoints commit concurrently: all workers read the pinned version and
/// retention is high enough that it is never pruned mid-comparison.
#[test]
fn pinned_snapshot_queries_are_dop_invariant_under_checkpoints() {
    let (system, job, allowance) = {
        let keys = 64;
        let state = StateConfig::live_and_snapshot();
        let config = SQueryConfig::default().with_state(state).with_retention(10);
        let system = SQuery::new(config).unwrap();
        let allowance = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut b = squery::JobSpec::builder("gated-counter");
        let src = b.source(
            "events",
            1,
            std::sync::Arc::new(common::GatedFactory {
                keys,
                allowance: std::sync::Arc::clone(&allowance),
            }),
        );
        let op = b.stateful_with_schema(
            "count",
            2,
            common::counter_factory(),
            squery_common::schema::schema(vec![("this", squery_common::DataType::Int)]),
        );
        let sink = b.sink(
            "sink",
            1,
            std::sync::Arc::new(squery_streaming::dag::adapters::NullSinkFactory),
        );
        b.edge(src, op, squery_streaming::EdgeKind::Keyed);
        b.edge(op, sink, squery_streaming::EdgeKind::Forward);
        let job = system.submit(b.build().unwrap()).unwrap();
        (system, job, allowance)
    };

    common::advance(&job, &allowance, 64);
    let pinned = job.checkpoint_now().unwrap();
    let sql = format!(
        "SELECT partitionKey, this FROM snapshot_count WHERE ssid = {} ORDER BY partitionKey",
        pinned.0
    );
    let baseline = system.query_with_dop(&sql, 1).unwrap();
    assert_eq!(baseline.len(), 64);

    // Six more checkpoints commit while the comparison loop runs; with
    // retention 10 the pinned id is never pruned or folded away.
    std::thread::scope(|scope| {
        let querier = scope.spawn(|| {
            for round in 0..60 {
                for dop in DOPS {
                    let parallel = system.query_with_dop(&sql, dop).unwrap();
                    assert_eq!(
                        parallel.rows(),
                        baseline.rows(),
                        "round {round}, dop {dop}: pinned-snapshot result changed"
                    );
                }
            }
        });
        for step in 1..=6u64 {
            common::advance(&job, &allowance, 64 + step * 64);
            job.checkpoint_now().unwrap();
        }
        querier.join().unwrap();
    });
    job.stop();
}
