//! End-to-end reproduction of the paper's query listings: Figure 4's
//! live/snapshot queries and §VIII's Queries 1–4, at a larger scale than the
//! crate-level unit tests.

mod common;

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::Value;
use squery_qcommerce::queries::{
    expected_query1, expected_query2, expected_query3, expected_query4,
};
use squery_qcommerce::{
    order_monitoring_job, QCommerceConfig, ORDER_STATES, QUERY_1, QUERY_2, QUERY_3, QUERY_4,
};
use std::collections::BTreeMap;
use std::time::Duration;

const ORDERS: u64 = 2_000;

fn monitoring_system() -> (SQuery, squery::JobHandle) {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let cfg = QCommerceConfig {
        orders: ORDERS,
        riders: 200,
        events_per_instance: ORDERS * ORDER_STATES.len() as u64,
        rate_per_instance: None,
        prefill_passes: 0,
    };
    let mut job = system.submit(order_monitoring_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(120)).unwrap();
    (system, job)
}

fn result_map(rs: &squery::ResultSet, group_col: &str) -> BTreeMap<String, i64> {
    rs.column(group_col)
        .unwrap()
        .iter()
        .zip(rs.column("COUNT(*)").unwrap())
        .map(|(g, c)| (g.as_str().unwrap().to_string(), c.as_int().unwrap()))
        .collect()
}

fn owned(m: BTreeMap<&'static str, i64>) -> BTreeMap<String, i64> {
    m.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

#[test]
fn paper_queries_1_to_4_at_scale() {
    let (system, job) = monitoring_system();
    assert_eq!(
        result_map(&system.query(QUERY_1).unwrap(), "deliveryZone"),
        owned(expected_query1(ORDERS)),
        "Query 1 (late orders per area)"
    );
    assert_eq!(
        result_map(&system.query(QUERY_2).unwrap(), "vendorCategory"),
        owned(expected_query2(ORDERS)),
        "Query 2 (ready for pickup per category)"
    );
    assert_eq!(
        result_map(&system.query(QUERY_3).unwrap(), "deliveryZone"),
        owned(expected_query3(ORDERS)),
        "Query 3 (in preparation per area)"
    );
    assert_eq!(
        result_map(&system.query(QUERY_4).unwrap(), "deliveryZone"),
        owned(expected_query4(ORDERS)),
        "Query 4 (in transit per area)"
    );
    job.stop();
}

/// The queries answer from the committed snapshot: concurrent live updates
/// between checkpoints must not change their results.
#[test]
fn snapshot_queries_ignore_concurrent_live_updates() {
    let (system, job) = monitoring_system();
    let before = result_map(&system.query(QUERY_3).unwrap(), "deliveryZone");
    // Mutate live state directly (as continued stream processing would).
    let live = system.grid().get_map("orderstate").unwrap();
    let schema = squery_qcommerce::events::order_state_schema();
    for o in 0..ORDERS as i64 {
        live.put(
            Value::Int(o),
            Value::record(&schema, vec![Value::str("DELIVERED"), Value::Timestamp(0)]),
        );
    }
    let after = result_map(&system.query(QUERY_3).unwrap(), "deliveryZone");
    assert_eq!(before, after, "snapshot isolation shields the query");
    // A live query over the same state does see the change.
    let rs = system
        .query("SELECT COUNT(*) AS n FROM orderstate WHERE orderState = 'DELIVERED'")
        .unwrap();
    assert_eq!(rs.scalar("n"), Some(&Value::Int(ORDERS as i64)));
    job.stop();
}

/// Figure 4's two queries, live and pinned-snapshot, against a real job.
#[test]
fn figure4_live_and_snapshot_queries() {
    let (system, mut job, allowance) =
        common::gated_counter_system(StateConfig::live_and_snapshot(), 2, 1);
    common::advance(&job, &allowance, 6); // key0=3, key1=3
    let s_old = job.checkpoint_now().unwrap();
    common::advance(&job, &allowance, 10); // key0=5, key1=5
    let s_new = job.checkpoint_now().unwrap();

    // Live query (Figure 4 left): current values.
    let rs = system
        .query("SELECT this FROM count WHERE partitionKey = 1")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(5));

    // Snapshot query with explicit ssid (Figure 4 right): the older version.
    let rs = system
        .query(&format!(
            "SELECT this FROM snapshot_count WHERE ssid = {} AND partitionKey = 1",
            s_old.0
        ))
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(3));

    // Both retained versions side by side ("integrate the state of multiple
    // snapshot versions with explicit mention of each pair's version").
    let rs = system
        .query(
            "SELECT ssid, this FROM snapshot_count WHERE ssid >= 0 AND partitionKey = 1 \
             ORDER BY ssid",
        )
        .unwrap();
    assert_eq!(
        rs.rows(),
        &[
            vec![Value::Int(s_old.0 as i64), Value::Int(3)],
            vec![Value::Int(s_new.0 as i64), Value::Int(5)],
        ]
    );
    job.crash();
    job.recover().unwrap();
    job.stop();
}

/// The SQL layer's aggregate/join surface over realistic state: answers
/// computed two different ways must agree.
#[test]
fn sql_cross_checks_on_monitoring_state() {
    let (system, job) = monitoring_system();
    // COUNT per zone summed over zones == COUNT(*) overall.
    let per_zone = system
        .query("SELECT deliveryZone, COUNT(*) AS n FROM snapshot_orderinfo GROUP BY deliveryZone")
        .unwrap();
    let total: i64 = per_zone
        .column("n")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .sum();
    let overall = system
        .query("SELECT COUNT(*) AS n FROM snapshot_orderinfo")
        .unwrap();
    assert_eq!(Some(&Value::Int(total)), overall.scalar("n"));
    assert_eq!(total, ORDERS as i64);

    // HAVING prunes groups consistently with a client-side filter.
    let big_zones = system
        .query(
            "SELECT deliveryZone, COUNT(*) AS n FROM snapshot_orderinfo \
             GROUP BY deliveryZone HAVING COUNT(*) > 250 ORDER BY n DESC",
        )
        .unwrap();
    for row in big_zones.rows() {
        assert!(row[1].as_int().unwrap() > 250);
    }

    // Join cardinality: orderinfo ⋈ orderstate on the key is 1:1.
    let joined = system
        .query(
            "SELECT COUNT(*) AS n FROM snapshot_orderinfo \
             JOIN snapshot_orderstate USING(partitionKey)",
        )
        .unwrap();
    assert_eq!(joined.scalar("n"), Some(&Value::Int(ORDERS as i64)));
    job.stop();
}
