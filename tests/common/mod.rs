//! Shared fixtures for the integration tests.
#![allow(dead_code)] // not every test binary uses every fixture

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::schema::schema;
use squery_common::{DataType, Value};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::{SourceFactory, Stateful};
use squery_streaming::source::{Source, SourceStatus};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobHandle, JobSpec, Record};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A source gated by a shared allowance counter: tests decide exactly how
/// many records exist at any point, making checkpoint placement
/// deterministic.
pub struct GatedSource {
    index: u64,
    keys: u64,
    allowance: Arc<AtomicU64>,
}

impl Source for GatedSource {
    fn next_batch(&mut self, max: usize, _now: u64, out: &mut Vec<Record>) -> SourceStatus {
        let allowed = self.allowance.load(Ordering::Acquire);
        let budget = allowed.saturating_sub(self.index).min(max as u64);
        if budget == 0 {
            return SourceStatus::Idle;
        }
        for _ in 0..budget {
            out.push(Record::new((self.index % self.keys) as i64, 1i64));
            self.index += 1;
        }
        SourceStatus::Active
    }

    fn offset(&self) -> Value {
        Value::Int(self.index as i64)
    }

    fn rewind(&mut self, offset: &Value) {
        self.index = offset.as_int().unwrap() as u64;
    }
}

/// Factory handing each instance the same allowance gate.
pub struct GatedFactory {
    pub keys: u64,
    pub allowance: Arc<AtomicU64>,
}

impl SourceFactory for GatedFactory {
    fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
        Box::new(GatedSource {
            index: 0,
            keys: self.keys,
            allowance: Arc::clone(&self.allowance),
        })
    }
}

/// A per-key counting operator (state = plain Int exposed as column `this`).
pub fn counter_factory() -> Arc<dyn squery_streaming::dag::StatefulFactory> {
    Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                let n = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0) + 1;
                state.put(r.key.clone(), Value::Int(n));
                out.push(Record {
                    key: r.key,
                    value: Value::Int(n),
                    src_ts: r.src_ts,
                    port: 0,
                });
            },
        )) as Box<dyn Stateful>
    }))
}

/// A gated counting job over `keys` keys with `parallelism` operator
/// instances; returns the system, the job, and the allowance gate.
pub fn gated_counter_system(
    state: StateConfig,
    keys: u64,
    parallelism: u32,
) -> (SQuery, JobHandle, Arc<AtomicU64>) {
    gated_counter_system_with(SQueryConfig::default().with_state(state), keys, parallelism)
}

/// [`gated_counter_system`] with full control over the deployment config.
pub fn gated_counter_system_with(
    config: SQueryConfig,
    keys: u64,
    parallelism: u32,
) -> (SQuery, JobHandle, Arc<AtomicU64>) {
    let system = SQuery::new(config).expect("bring up S-QUERY");
    let allowance = Arc::new(AtomicU64::new(0));
    let mut b = JobSpec::builder("gated-counter");
    let src = b.source(
        "events",
        1,
        Arc::new(GatedFactory {
            keys,
            allowance: Arc::clone(&allowance),
        }),
    );
    let op = b.stateful_with_schema(
        "count",
        parallelism,
        counter_factory(),
        schema(vec![("this", DataType::Int)]),
    );
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    let job = system
        .submit(b.build().expect("valid spec"))
        .expect("submit");
    (system, job, allowance)
}

/// Release `n` more events and wait for them to reach the sink.
pub fn advance(job: &JobHandle, allowance: &AtomicU64, to_total: u64) {
    allowance.store(to_total, Ordering::Release);
    job.wait_for_sink_count(to_total, std::time::Duration::from_secs(30))
        .expect("events drain to sink");
}
