//! Fault-tolerance integration tests: crash/recover cycles, exactly-once
//! accounting, checkpoint aborts, and grid-node failover.

mod common;

use common::{advance, gated_counter_system};
use squery::{StateConfig, StateView};
use squery_common::config::{ClusterConfig, NetworkConfig};
use squery_common::{NodeId, Value};
use squery_storage::Grid;

/// Exactly-once across repeated crash/recover cycles: after every recovery
/// the per-key counts equal the number of events released, regardless of
/// where the crashes fell relative to checkpoints.
#[test]
fn repeated_crashes_preserve_exactly_once_counts() {
    let (system, mut job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 5, 2);
    let mut released = 0u64;
    for round in 1..=4u64 {
        released += 50 * round;
        advance(&job, &allowance, released);
        job.checkpoint_now().unwrap();
        if round % 2 == 0 {
            // Release more events, crash before the next checkpoint, recover.
            released += 17;
            advance(&job, &allowance, released);
            job.crash();
            job.recover().unwrap();
            // The 17 extra events replay from the snapshot's source offset.
            job.wait_for_sink_count(released, std::time::Duration::from_secs(30))
                .ok(); // sink count includes pre-crash deliveries; state is the oracle
            job.checkpoint_now().unwrap();
        }
    }
    // Total per-key counts must equal the number of released events.
    let rs = system
        .query("SELECT SUM(this) AS total FROM count")
        .unwrap();
    assert_eq!(
        rs.scalar("total"),
        Some(&Value::Int(released as i64)),
        "state must count every event exactly once"
    );
    job.stop();
}

/// Recovery restores each key to its snapshot value, not to zero and not to
/// the dirty pre-crash value.
#[test]
fn recovery_restores_per_key_values() {
    let (system, mut job, allowance) =
        gated_counter_system(StateConfig::live_and_snapshot(), 10, 2);
    advance(&job, &allowance, 100); // each key at 10
    let ssid = job.checkpoint_now().unwrap();
    advance(&job, &allowance, 150); // each key at 15 (dirty)
    job.crash();
    job.recover().unwrap();
    for k in 0..10i64 {
        assert_eq!(
            system
                .direct()
                .get("count", &Value::Int(k), StateView::Snapshot(ssid))
                .unwrap(),
            Some(Value::Int(10))
        );
    }
    // After recovery the source replays events 100..150 exactly once.
    job.wait_for_sink_count(150, std::time::Duration::from_secs(30))
        .ok();
    job.checkpoint_now().unwrap();
    let rs = system
        .query("SELECT SUM(this) AS total FROM count")
        .unwrap();
    assert_eq!(rs.scalar("total"), Some(&Value::Int(150)));
    job.stop();
}

/// A crash while a checkpoint is mid-flight aborts it cleanly: the id is
/// released, phase-1 writes are discarded, and the previous snapshot stays
/// the queryable one.
#[test]
fn crash_mid_checkpoint_aborts_cleanly() {
    let (system, mut job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 2, 1);
    advance(&job, &allowance, 10);
    let s1 = job.checkpoint_now().unwrap();
    advance(&job, &allowance, 20);
    job.crash(); // any in-flight checkpoint is aborted by crash()
    assert_eq!(system.latest_snapshot(), Some(s1));
    assert_eq!(system.grid().registry().in_progress(), None);
    job.recover().unwrap();
    let s2 = job.checkpoint_now().unwrap();
    assert!(s2 > s1, "checkpointing resumes after recovery");
    job.stop();
}

/// Stopping a job right after recovery yields a coherent report.
#[test]
fn stop_after_recovery_reports_merged_metrics() {
    let (_system, mut job, allowance) =
        gated_counter_system(StateConfig::live_and_snapshot(), 2, 1);
    advance(&job, &allowance, 30);
    job.checkpoint_now().unwrap();
    job.crash();
    job.recover().unwrap();
    let report = job.stop();
    assert!(report.sink_records >= 30);
    assert!(report.latency.count() >= 30);
    assert!(!report.checkpoints.is_empty());
}

/// Grid-level failover: with replication enabled, failing a node promotes
/// backups and loses no live-state data (paper §V-A).
#[test]
fn grid_node_failover_preserves_live_state() {
    let config = ClusterConfig {
        nodes: 3,
        partitions: 271,
        backup_count: 1,
        network: NetworkConfig::instant(),
    };
    let grid = Grid::new(config).unwrap();
    let map = grid.map("orders");
    for i in 0..1_000i64 {
        map.put(Value::Int(i), Value::Int(i * 7));
    }
    grid.flush_replication();
    // Fail two of the three nodes in sequence.
    grid.fail_node(NodeId(2)).unwrap();
    for i in 0..1_000i64 {
        assert_eq!(map.get(&Value::Int(i)), Some(Value::Int(i * 7)));
    }
    // Note: after the first failure some partitions have no remaining
    // backups (the failed node held them); a second failure of the node
    // now holding them as sole owner would error — verify that safety too.
    let second = grid.fail_node(NodeId(1));
    match second {
        Ok(_) => {
            for i in 0..1_000i64 {
                assert_eq!(map.get(&Value::Int(i)), Some(Value::Int(i * 7)));
            }
        }
        Err(e) => {
            // Data loss was detected and reported, never silent.
            assert!(e.to_string().contains("no backup"), "{e}");
        }
    }
}

/// Checkpoints keep committing after sources exhaust (the operators must
/// still be alive to serve them).
#[test]
fn checkpoints_survive_source_exhaustion() {
    let (system, job, allowance) = gated_counter_system(StateConfig::live_and_snapshot(), 2, 1);
    advance(&job, &allowance, 10);
    let s1 = job.checkpoint_now().unwrap();
    let s2 = job.checkpoint_now().unwrap();
    let s3 = job.checkpoint_now().unwrap();
    assert!(s1 < s2 && s2 < s3);
    // All three resolve the same state.
    for ssid in [s2, s3] {
        let rs = system
            .query(&format!(
                "SELECT SUM(this) AS total FROM snapshot_count WHERE ssid = {}",
                ssid.0
            ))
            .unwrap();
        assert_eq!(rs.scalar("total"), Some(&Value::Int(10)));
    }
    job.stop();
}
