//! # squery-tspoon
//!
//! A behavioural model of **TSpoon** (Margara, Affetti, Cugola — *TSpoon:
//! Transactions on a stream processor*, JPDC 2020), the comparison system of
//! the paper's Figure 14 direct-object experiment.
//!
//! TSpoon's external queries are *read-only transactions*: they enter the
//! transactional part of the dataflow graph and execute at the operator,
//! serialized with the stream's own updates "following a transaction commit
//! or abort ensuring sequential execution" (paper §X-B). Two consequences
//! this model reproduces faithfully:
//!
//! 1. every query pays a fixed transactional cost (timestamp assignment,
//!    commit bookkeeping) **and** queues behind in-flight stream updates in
//!    the operator's mailbox, whereas S-QUERY reads the state store directly
//!    and concurrently;
//! 2. per-key read cost is comparable to S-QUERY's, so the gap narrows as
//!    queries select more keys — the convergence Figure 14 shows between
//!    1-key (2× gap) and 1000-key (parity) selections.
//!
//! The model is tunable ([`TspoonConfig`]); the benchmark harness documents
//! the constants it uses in EXPERIMENTS.md. It is *not* a reimplementation of
//! TSpoon's full transactional dataflow (multi-operator transactions, aborts)
//! — only of its queryable-state path, which is what the figure measures.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use squery_common::{Partitioner, SqError, SqResult, Value};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct TspoonConfig {
    /// Parallel operator instances (each owns a key partition range).
    pub instances: u32,
    /// Fixed transactional cost charged per query at each touched instance
    /// (timestamp assignment + commit bookkeeping), in microseconds.
    pub txn_overhead_us: u64,
    /// Simulated per-key read cost in nanoseconds (state access + result
    /// serialization), applied by both this model and the Figure 14 driver's
    /// S-QUERY side so the comparison isolates the *mechanism* difference.
    pub per_key_read_ns: u64,
}

impl Default for TspoonConfig {
    fn default() -> Self {
        TspoonConfig {
            instances: 4,
            txn_overhead_us: 8,
            per_key_read_ns: 300,
        }
    }
}

enum Msg {
    /// A stream update: serialized with queries in the mailbox.
    Event {
        key: Value,
        value: Value,
    },
    /// A read-only transaction over local keys.
    Query {
        keys: Vec<Value>,
        reply: Sender<Vec<(Value, Option<Value>)>>,
    },
    Stop,
}

/// Busy-wait with microsecond-ish precision (sleep() is too coarse to model
/// fixed costs of a few µs).
pub fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// The modelled TSpoon deployment: partitioned single-threaded operators
/// whose mailboxes serialize stream updates and read-only query transactions.
pub struct TspoonCluster {
    config: TspoonConfig,
    partitioner: Partitioner,
    senders: Vec<Sender<Msg>>,
    threads: Vec<JoinHandle<()>>,
}

impl TspoonCluster {
    /// Start `config.instances` operator threads.
    pub fn start(config: TspoonConfig, partitioner: Partitioner) -> TspoonCluster {
        assert!(config.instances > 0, "need at least one instance");
        let mut senders = Vec::new();
        let mut threads = Vec::new();
        for i in 0..config.instances {
            let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
            senders.push(tx);
            let cfg = config;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tspoon-op-{i}"))
                    .spawn(move || {
                        let mut state: HashMap<Value, Value> = HashMap::new();
                        for msg in rx.iter() {
                            match msg {
                                Msg::Event { key, value } => {
                                    state.insert(key, value);
                                }
                                Msg::Query { keys, reply } => {
                                    // The read-only transaction: fixed cost,
                                    // then per-key reads, then commit (part
                                    // of the fixed cost).
                                    spin_for(Duration::from_micros(cfg.txn_overhead_us));
                                    let mut out = Vec::with_capacity(keys.len());
                                    for k in keys {
                                        spin_for(Duration::from_nanos(cfg.per_key_read_ns));
                                        let v = state.get(&k).cloned();
                                        out.push((k, v));
                                    }
                                    let _ = reply.send(out);
                                }
                                Msg::Stop => break,
                            }
                        }
                    })
                    .expect("spawn tspoon operator"),
            );
        }
        TspoonCluster {
            config,
            partitioner,
            senders,
            threads,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> TspoonConfig {
        self.config
    }

    fn instance_of(&self, key: &Value) -> usize {
        self.partitioner.instance_of(key, self.config.instances) as usize
    }

    /// Ingest one stream update (routed by key).
    pub fn ingest(&self, key: Value, value: Value) {
        let i = self.instance_of(&key);
        let _ = self.senders[i].send(Msg::Event { key, value });
    }

    /// Ingest many updates.
    pub fn ingest_bulk(&self, entries: impl IntoIterator<Item = (Value, Value)>) {
        for (k, v) in entries {
            self.ingest(k, v);
        }
    }

    /// Run a read-only transaction over `keys` and wait for the result.
    ///
    /// Sub-transactions route to each key's owning instance and execute
    /// serialized with that instance's stream updates.
    pub fn query(&self, keys: &[Value]) -> SqResult<Vec<(Value, Option<Value>)>> {
        let mut by_instance: HashMap<usize, Vec<Value>> = HashMap::new();
        for k in keys {
            by_instance
                .entry(self.instance_of(k))
                .or_default()
                .push(k.clone());
        }
        let mut replies = Vec::with_capacity(by_instance.len());
        for (i, keys) in by_instance {
            let (reply_tx, reply_rx) = bounded(1);
            self.senders[i]
                .send(Msg::Query {
                    keys,
                    reply: reply_tx,
                })
                .map_err(|_| SqError::Runtime("tspoon instance stopped".into()))?;
            replies.push(reply_rx);
        }
        let mut out = Vec::with_capacity(keys.len());
        for rx in replies {
            let part = rx
                .recv_timeout(Duration::from_secs(30))
                .map_err(|_| SqError::Runtime("tspoon query timed out".into()))?;
            out.extend(part);
        }
        Ok(out)
    }

    /// Stop all operator threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Stop);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TspoonCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(instances: u32) -> TspoonCluster {
        TspoonCluster::start(
            TspoonConfig {
                instances,
                txn_overhead_us: 0,
                per_key_read_ns: 0,
            },
            Partitioner::new(64),
        )
    }

    #[test]
    fn ingest_then_query_roundtrip() {
        let c = cluster(4);
        c.ingest_bulk((0..100i64).map(|i| (Value::Int(i), Value::Int(i * 2))));
        // Queries are serialized behind the ingests in each mailbox, so no
        // extra synchronization is needed — that's the TSpoon property.
        let res = c.query(&[Value::Int(7), Value::Int(999)]).unwrap();
        let map: HashMap<_, _> = res.into_iter().collect();
        assert_eq!(map[&Value::Int(7)], Some(Value::Int(14)));
        assert_eq!(map[&Value::Int(999)], None);
        c.stop();
    }

    #[test]
    fn updates_replace_values_in_order() {
        let c = cluster(2);
        for v in 0..50i64 {
            c.ingest(Value::Int(1), Value::Int(v));
        }
        let res = c.query(&[Value::Int(1)]).unwrap();
        assert_eq!(res[0].1, Some(Value::Int(49)));
        c.stop();
    }

    #[test]
    fn multi_instance_query_fans_out() {
        let c = cluster(4);
        c.ingest_bulk((0..1000i64).map(|i| (Value::Int(i), Value::Int(i))));
        let keys: Vec<Value> = (0..1000i64).map(Value::Int).collect();
        let res = c.query(&keys).unwrap();
        assert_eq!(res.len(), 1000);
        assert!(res.iter().all(|(k, v)| v.as_ref() == Some(k)));
        c.stop();
    }

    #[test]
    fn txn_overhead_slows_queries_measurably() {
        let slow = TspoonCluster::start(
            TspoonConfig {
                instances: 1,
                txn_overhead_us: 200,
                per_key_read_ns: 0,
            },
            Partitioner::new(16),
        );
        slow.ingest(Value::Int(1), Value::Int(1));
        let t0 = Instant::now();
        for _ in 0..20 {
            slow.query(&[Value::Int(1)]).unwrap();
        }
        let slow_time = t0.elapsed();
        assert!(
            slow_time >= Duration::from_micros(20 * 200),
            "fixed cost must be paid per query: {slow_time:?}"
        );
        slow.stop();
    }

    #[test]
    fn queries_serialize_behind_stream_updates() {
        // A query enqueued after a burst of events must observe all of them.
        let c = cluster(1);
        for v in 0..10_000i64 {
            c.ingest(Value::Int(0), Value::Int(v));
        }
        let res = c.query(&[Value::Int(0)]).unwrap();
        assert_eq!(res[0].1, Some(Value::Int(9_999)));
        c.stop();
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_rejected() {
        cluster(0);
    }
}
