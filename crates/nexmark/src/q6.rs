//! NEXMark query 6: average selling price per seller (last 10 auctions).
//!
//! Dataflow (the streaming job of the paper's §IX-B/E):
//!
//! ```text
//! bids ─────┐ port 0
//!           ├──▶ maxbid (keyed by auction) ──▶ average (keyed by seller) ──▶ sink
//! auctions ─┘ port 1        │                       │
//!                   winning (seller, price)   ring buffer of last 10
//!                   on auction CLOSE          closing prices → mean
//! ```
//!
//! Both stateful operators register their state-object schemas, so S-QUERY
//! exposes them as queryable tables: `maxbid` / `snapshot_maxbid` with
//! columns `(partitionKey, seller, best, open)` and `average` /
//! `snapshot_average` with `(partitionKey, count, total, average, prices)` —
//! the scalability experiment's "10 latest auction prices" query reads the
//! `prices` column.

use crate::generator::{AuctionSourceFactory, BidSourceFactory, NexmarkConfig};
use squery_common::schema::{schema, Schema};
use squery_common::{DataType, Value};
use squery_streaming::dag::adapters::NullSinkFactory;
use squery_streaming::dag::{Stateful, StatefulFactory};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record};
use std::sync::Arc;

/// Window width: the paper averages over the last 10 auctions per seller.
pub const LAST_N_AUCTIONS: usize = 10;

/// Names of the job's queryable operators.
#[derive(Debug, Clone)]
pub struct Q6Vertices {
    /// The per-auction max-bid operator.
    pub maxbid: &'static str,
    /// The per-seller averaging operator (10 K sellers in the paper).
    pub average: &'static str,
}

/// Schema of the `maxbid` operator's state objects.
pub fn maxbid_state_schema() -> Arc<Schema> {
    schema(vec![
        ("seller", DataType::Int),
        ("best", DataType::Float),
        ("open", DataType::Bool),
    ])
}

/// Schema of the `average` operator's state objects.
pub fn average_state_schema() -> Arc<Schema> {
    schema(vec![
        ("count", DataType::Int),
        ("total", DataType::Float),
        ("average", DataType::Float),
        ("prices", DataType::List),
    ])
}

/// Per-auction highest-bid tracking; emits `(seller, price)` on CLOSE.
struct MaxBidOp;

impl Stateful for MaxBidOp {
    fn process(&mut self, record: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>) {
        let sv = match record.value.as_struct() {
            Some(sv) => sv.clone(),
            None => return,
        };
        if record.port == 0 {
            // Bid: raise the auction's best price if the auction is open.
            let Some(current) = state.get(&record.key) else {
                return; // bid for an unknown/closed auction
            };
            let cur = current.as_struct().expect("maxbid state is a struct");
            let best = cur.field("best").and_then(Value::as_f64).unwrap_or(0.0);
            let price = sv.field("price").and_then(Value::as_f64).unwrap_or(0.0);
            if price > best {
                let updated = cur
                    .with_field("best", Value::Float(price))
                    .expect("schema has best");
                state.put(record.key, Value::Struct(updated));
            }
        } else {
            // Auction lifecycle event.
            let kind = sv.field("kind").and_then(Value::as_str).unwrap_or("");
            match kind {
                "NEW" => {
                    let seller = sv.field("seller").cloned().unwrap_or(Value::Null);
                    let reserve = sv.field("reserve").cloned().unwrap_or(Value::Float(0.0));
                    state.put(
                        record.key,
                        Value::record(
                            &maxbid_state_schema(),
                            vec![seller, reserve, Value::Bool(true)],
                        ),
                    );
                }
                "CLOSE" => {
                    if let Some(current) = state.remove(&record.key) {
                        let cur = current.as_struct().expect("maxbid state is a struct");
                        let seller = cur.field("seller").cloned().unwrap_or(Value::Null);
                        let best = cur.field("best").cloned().unwrap_or(Value::Float(0.0));
                        out.push(Record {
                            key: seller,
                            value: best,
                            src_ts: record.src_ts,
                            port: 0,
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

struct MaxBidFactory;
impl StatefulFactory for MaxBidFactory {
    fn create(&self, _instance: u32, _total: u32) -> Box<dyn Stateful> {
        Box::new(MaxBidOp)
    }
}

/// Per-seller average over the last [`LAST_N_AUCTIONS`] closing prices.
struct AverageOp;

impl Stateful for AverageOp {
    fn process(&mut self, record: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>) {
        let price = match record.value.as_f64() {
            Some(p) => p,
            None => return,
        };
        let mut prices: Vec<Value> = state
            .get(&record.key)
            .and_then(|v| {
                v.as_struct()
                    .and_then(|sv| sv.field("prices").cloned())
                    .and_then(|p| p.as_list().map(<[Value]>::to_vec))
            })
            .unwrap_or_default();
        prices.push(Value::Float(price));
        if prices.len() > LAST_N_AUCTIONS {
            prices.remove(0);
        }
        let total: f64 = prices.iter().filter_map(Value::as_f64).sum();
        let average = total / prices.len() as f64;
        let count = prices.len() as i64;
        state.put(
            record.key.clone(),
            Value::record(
                &average_state_schema(),
                vec![
                    Value::Int(count),
                    Value::Float(total),
                    Value::Float(average),
                    Value::list(prices),
                ],
            ),
        );
        out.push(Record {
            key: record.key,
            value: Value::Float(average),
            src_ts: record.src_ts,
            port: 0,
        });
    }
}

struct AverageFactory;
impl StatefulFactory for AverageFactory {
    fn create(&self, _instance: u32, _total: u32) -> Box<dyn Stateful> {
        Box::new(AverageOp)
    }
}

/// Build the query-6 job.
///
/// `parallelism` applies to both stateful operators; sources and sink run at
/// the given `source_parallelism` / 1 respectively (the stateful operators
/// dominate the work, mirroring Jet's deployment).
pub fn q6_job(cfg: NexmarkConfig, source_parallelism: u32, parallelism: u32) -> JobSpec {
    let mut b = JobSpec::builder("nexmark-q6");
    let bids = b.source("bids", source_parallelism, Arc::new(BidSourceFactory(cfg)));
    let auctions = b.source(
        "auctions",
        source_parallelism,
        Arc::new(AuctionSourceFactory(cfg)),
    );
    let maxbid = b.stateful_with_schema(
        "maxbid",
        parallelism,
        Arc::new(MaxBidFactory),
        maxbid_state_schema(),
    );
    let average = b.stateful_with_schema(
        "average",
        parallelism,
        Arc::new(AverageFactory),
        average_state_schema(),
    );
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(bids, maxbid, EdgeKind::Keyed); // port 0
    b.edge(auctions, maxbid, EdgeKind::Keyed); // port 1
    b.edge(maxbid, average, EdgeKind::Keyed);
    b.edge(average, sink, EdgeKind::Forward);
    b.build().expect("q6 spec is valid")
}

/// The job's queryable operator names.
pub fn q6_vertices() -> Q6Vertices {
    Q6Vertices {
        maxbid: "maxbid",
        average: "average",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery::{SQuery, SQueryConfig, StateConfig};
    use std::time::Duration;

    fn small_cfg() -> NexmarkConfig {
        NexmarkConfig {
            sellers: 50,
            active_auctions: 100,
            events_per_instance: 5_000,
            rate_per_instance: None,
        }
    }

    #[test]
    fn q6_runs_and_builds_seller_state() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let mut job = system.submit(q6_job(small_cfg(), 1, 2)).unwrap();
        let ssid = job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();

        // Averages accumulated per seller, queryable via SQL.
        let rs = system
            .query("SELECT COUNT(*) AS sellers FROM average")
            .unwrap();
        let sellers = rs.scalar("sellers").unwrap().as_int().unwrap();
        assert!(sellers > 10, "many sellers saw closed auctions: {sellers}");

        // Snapshot view agrees with live view after the barrier.
        let rs = system
            .query("SELECT COUNT(*) AS sellers FROM snapshot_average")
            .unwrap();
        assert_eq!(rs.scalar("sellers").unwrap().as_int().unwrap(), sellers);
        assert_eq!(system.latest_snapshot(), Some(ssid));

        // Averages are sane: between min and max generated price bounds.
        let rs = system
            .query("SELECT MIN(average) AS lo, MAX(average) AS hi FROM average")
            .unwrap();
        let lo = rs.scalar("lo").unwrap().as_f64().unwrap();
        let hi = rs.scalar("hi").unwrap().as_f64().unwrap();
        assert!(lo >= 10.0 && hi <= 1010.1, "lo={lo} hi={hi}");
        job.stop();
    }

    #[test]
    fn average_window_is_bounded_to_last_10() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let mut job = system.submit(q6_job(small_cfg(), 1, 1)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        let rs = system.query("SELECT MAX(count) AS m FROM average").unwrap();
        let m = rs.scalar("m").unwrap().as_int().unwrap();
        assert!(m <= LAST_N_AUCTIONS as i64, "ring buffer capped: {m}");
        assert!(m >= 2, "windows actually filled: {m}");
        job.stop();
    }

    #[test]
    fn scalability_query_reads_price_lists() {
        // The Figure 15 workload queries "the list of the 10 latest auction
        // prices" — the prices column of the average table.
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let mut job = system.submit(q6_job(small_cfg(), 1, 1)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        let rs = system
            .query("SELECT partitionKey, prices FROM snapshot_average LIMIT 5")
            .unwrap();
        assert!(!rs.is_empty());
        for row in rs.rows() {
            assert!(row[1].as_list().is_some(), "prices is a list");
        }
        job.stop();
    }

    #[test]
    fn maxbid_state_stays_bounded_by_active_auctions() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let cfg = small_cfg();
        let mut job = system.submit(q6_job(cfg, 1, 2)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        let live = system.grid().get_map("maxbid").unwrap();
        assert!(
            live.len() <= cfg.active_auctions as usize,
            "closed auctions are removed from state: {}",
            live.len()
        );
        job.stop();
    }

    /// Crash/recover invariants for q6. Results of the two-stream join are
    /// interleaving-dependent (the paper's §VII notes nondeterministic
    /// computations can diverge after recovery), so instead of byte-equality
    /// with a golden run we check the invariants that must hold under any
    /// interleaving: recovery restores a committed snapshot, processing
    /// resumes, and after a final barrier the live and snapshot views agree
    /// and every window stays within bounds.
    #[test]
    fn crash_and_recover_preserves_q6_invariants() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let mut job = system.submit(q6_job(small_cfg(), 1, 2)).unwrap();
        job.wait_for_sink_count(200, Duration::from_secs(30))
            .unwrap();
        let mid = job.checkpoint_now().unwrap();
        job.crash();
        // While crashed, nothing processes: the snapshot at `mid` is what
        // recovery will restore. (Right after recover() the sources resume
        // immediately, so the rolled-back live view is only observable in a
        // gated setup — the core crate's Figure 5 test covers that.)
        let (mut snap_mid, _) = system
            .grid()
            .get_snapshot_store("average")
            .unwrap()
            .scan_at(mid)
            .unwrap();
        snap_mid.sort();
        job.recover().unwrap();

        // Processing resumes and completes.
        let end = job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        assert!(end > mid);
        let mut live_end = system.grid().get_map("average").unwrap().entries();
        let (mut snap_end, _) = system
            .grid()
            .get_snapshot_store("average")
            .unwrap()
            .scan_at(end)
            .unwrap();
        live_end.sort();
        snap_end.sort();
        assert_eq!(live_end, snap_end, "final barrier: views agree");
        assert!(live_end.len() >= snap_mid.len(), "state kept growing");
        for (_k, v) in &live_end {
            let count = v
                .as_struct()
                .unwrap()
                .field("count")
                .unwrap()
                .as_int()
                .unwrap();
            assert!((1..=LAST_N_AUCTIONS as i64).contains(&count));
        }
        job.stop();
    }
}
