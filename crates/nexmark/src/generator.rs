//! Index-deterministic NEXMark event generation.
//!
//! Every event is a pure function of `(instance, index)`, so rewinding a
//! source to a snapshotted offset replays the identical suffix — the
//! determinism exactly-once recovery requires (paper §IV). Prices use a
//! splitmix-style hash of the index as the randomness source.

use squery_common::schema::{schema, Schema};
use squery_common::{DataType, Value};
use squery_streaming::dag::SourceFactory;
use squery_streaming::source::{GeneratorSource, Source};
use std::sync::Arc;

/// Workload shape for the query-6 experiments.
#[derive(Debug, Clone, Copy)]
pub struct NexmarkConfig {
    /// Distinct sellers (the paper uses 10 K).
    pub sellers: u64,
    /// Concurrently active auctions cycled by the generator.
    pub active_auctions: u64,
    /// Events per source instance (0 = unbounded).
    pub events_per_instance: u64,
    /// Offered rate per source instance in events/s (`None` = full speed).
    pub rate_per_instance: Option<f64>,
}

impl Default for NexmarkConfig {
    fn default() -> Self {
        NexmarkConfig {
            sellers: 10_000,
            active_auctions: 20_000,
            events_per_instance: 0,
            rate_per_instance: None,
        }
    }
}

/// Schema of auction-stream events.
pub fn auction_schema() -> Arc<Schema> {
    schema(vec![
        ("auction", DataType::Int),
        ("seller", DataType::Int),
        ("kind", DataType::Str), // NEW | CLOSE
        ("reserve", DataType::Float),
    ])
}

/// Schema of bid-stream events.
pub fn bid_schema() -> Arc<Schema> {
    schema(vec![
        ("auction", DataType::Int),
        ("bidder", DataType::Int),
        ("price", DataType::Float),
    ])
}

/// SplitMix64: cheap, stateless pseudo-randomness from an index.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The auction owning slot `slot` (auction ids cycle over the active set).
fn auction_of_slot(cfg: &NexmarkConfig, instance: u64, slot: u64) -> i64 {
    ((slot.wrapping_mul(2654435761).wrapping_add(instance)) % cfg.active_auctions) as i64
}

/// The (deterministic) seller of an auction.
pub fn seller_of_auction(cfg: &NexmarkConfig, auction: i64) -> i64 {
    (mix(auction as u64) % cfg.sellers) as i64
}

/// Auction-stream source: alternates `NEW` and `CLOSE` events over the
/// active-auction set; every auction that opens is closed `active_auctions`
/// events later, so closings flow continuously.
pub fn auction_source(cfg: NexmarkConfig, instance: u32, _total: u32) -> GeneratorSource {
    let instance = u64::from(instance);
    let mut src = GeneratorSource::new(cfg.events_per_instance, move |i| {
        // Even indexes open auction slot i/2; odd indexes close slot
        // (i/2 - active/4) — a lag that keeps a steady set of auctions open.
        let opening = i % 2 == 0;
        let slot = if opening {
            i / 2
        } else {
            (i / 2).wrapping_sub(cfg.active_auctions / 4)
        };
        let auction = auction_of_slot(&cfg, instance, slot);
        let seller = seller_of_auction(&cfg, auction);
        let kind = if opening { "NEW" } else { "CLOSE" };
        let reserve = 10.0 + (mix(slot ^ 0xa5a5) % 10_000) as f64 / 100.0;
        Some(squery_streaming::Record::new(
            auction,
            Value::record(
                &auction_schema(),
                vec![
                    Value::Int(auction),
                    Value::Int(seller),
                    Value::str(kind),
                    Value::Float(reserve),
                ],
            ),
        ))
    });
    if let Some(rate) = cfg.rate_per_instance {
        src = src.with_rate(rate);
    }
    src
}

/// Bid-stream source: bids spread over the active-auction set with
/// hash-derived prices.
pub fn bid_source(cfg: NexmarkConfig, instance: u32, _total: u32) -> GeneratorSource {
    let instance = u64::from(instance);
    let mut src = GeneratorSource::new(cfg.events_per_instance, move |i| {
        let slot = mix(i ^ (instance << 32));
        let auction = auction_of_slot(&cfg, instance, slot % (i / 2 + 1).max(1));
        let bidder = (mix(i ^ 0x55aa) % 1_000_000) as i64;
        let price = 10.0 + (mix(i) % 100_000) as f64 / 100.0;
        Some(squery_streaming::Record::new(
            auction,
            Value::record(
                &bid_schema(),
                vec![Value::Int(auction), Value::Int(bidder), Value::Float(price)],
            ),
        ))
    });
    if let Some(rate) = cfg.rate_per_instance {
        src = src.with_rate(rate);
    }
    src
}

/// Factory wrapper for auction sources.
pub struct AuctionSourceFactory(pub NexmarkConfig);

impl SourceFactory for AuctionSourceFactory {
    fn create(&self, instance: u32, total: u32) -> Box<dyn Source> {
        Box::new(auction_source(self.0, instance, total))
    }
}

/// Factory wrapper for bid sources.
pub struct BidSourceFactory(pub NexmarkConfig);

impl SourceFactory for BidSourceFactory {
    fn create(&self, instance: u32, total: u32) -> Box<dyn Source> {
        Box::new(bid_source(self.0, instance, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_streaming::source::Source;

    fn cfg() -> NexmarkConfig {
        NexmarkConfig {
            sellers: 100,
            active_auctions: 200,
            events_per_instance: 1000,
            rate_per_instance: None,
        }
    }

    #[test]
    fn generation_is_index_deterministic() {
        let mut a = auction_source(cfg(), 0, 1);
        let mut b = auction_source(cfg(), 0, 1);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        a.next_batch(100, 0, &mut out_a);
        b.next_batch(100, 0, &mut out_b);
        assert_eq!(out_a, out_b);
        // Rewind replays identically.
        b.rewind(&Value::Int(50));
        let mut replay = Vec::new();
        b.next_batch(10, 0, &mut replay);
        assert_eq!(&out_a[50..60], &replay[..]);
    }

    #[test]
    fn instances_produce_distinct_streams() {
        let mut a = auction_source(cfg(), 0, 2);
        let mut b = auction_source(cfg(), 1, 2);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        a.next_batch(50, 0, &mut out_a);
        b.next_batch(50, 0, &mut out_b);
        assert_ne!(out_a, out_b);
    }

    #[test]
    fn auction_events_have_schema_fields() {
        let mut s = auction_source(cfg(), 0, 1);
        let mut out = Vec::new();
        s.next_batch(10, 0, &mut out);
        for r in &out {
            let sv = r.value.as_struct().unwrap();
            let kind = sv.field("kind").unwrap().as_str().unwrap();
            assert!(kind == "NEW" || kind == "CLOSE");
            let auction = sv.field("auction").unwrap().as_int().unwrap();
            assert_eq!(r.key, Value::Int(auction), "keyed by auction id");
            let seller = sv.field("seller").unwrap().as_int().unwrap();
            assert!((0..100).contains(&seller));
        }
    }

    #[test]
    fn bid_events_have_positive_prices() {
        let mut s = bid_source(cfg(), 0, 1);
        let mut out = Vec::new();
        s.next_batch(100, 0, &mut out);
        assert_eq!(out.len(), 100);
        for r in &out {
            let sv = r.value.as_struct().unwrap();
            let price = sv.field("price").unwrap().as_f64().unwrap();
            assert!(price >= 10.0);
        }
    }

    #[test]
    fn sellers_cover_configured_range() {
        let c = cfg();
        let mut seen = std::collections::HashSet::new();
        for auction in 0..200i64 {
            seen.insert(seller_of_auction(&c, auction));
        }
        assert!(
            seen.len() > 50,
            "sellers should be well spread: {}",
            seen.len()
        );
        assert!(seen.iter().all(|s| (0..100).contains(s)));
    }

    #[test]
    fn closings_eventually_cover_opened_auctions() {
        let c = cfg();
        let mut s = auction_source(c, 0, 1);
        let mut out = Vec::new();
        s.next_batch(1000, 0, &mut out);
        let closes = out
            .iter()
            .filter(|r| r.value.as_struct().unwrap().field("kind").unwrap() == &Value::str("CLOSE"))
            .count();
        assert!(
            closes >= 450,
            "roughly half the events close auctions: {closes}"
        );
    }

    #[test]
    fn rate_limit_applies() {
        let mut c = cfg();
        c.rate_per_instance = Some(1000.0);
        let mut s = bid_source(c, 0, 1);
        let mut out = Vec::new();
        s.next_batch(100, 5_000, &mut out);
        assert_eq!(out.len(), 5, "5 events due after 5ms at 1000/s");
    }
}
