//! # squery-nexmark
//!
//! NEXMark workload for the S-QUERY evaluation (paper §IX-A/B/E).
//!
//! The paper drives its overhead and scalability experiments with query 6 of
//! Apache Beam's NEXMark implementation: *"the job computes the average
//! selling price for each seller in an auction from a bid and auction
//! stream. It accumulates state for 10K auction sellers … the average selling
//! price is taken over the last 10 auctions per seller."*
//!
//! This crate provides:
//!
//! * an index-deterministic event generator ([`generator`]) producing the
//!   auction and bid streams (deterministic in the event index so source
//!   rewind replays identically — the property exactly-once recovery needs);
//! * the query-6 dataflow ([`q6`]): `bids + auctions → maxbid (keyed by
//!   auction) → average (keyed by seller, ring buffer of the last 10 closing
//!   prices) → sink`, with both stateful operators' state objects registered
//!   as queryable schemas;
//! * smaller NEXMark queries used by tests and examples (q1 currency
//!   conversion, q2 selection).
//!
//! Simplification (recorded in DESIGN.md): auction closings are explicit
//! `CLOSE` events emitted deterministically by the auction source rather
//! than event-time window triggers — the state layout, update rate, and
//! emitted results match query 6's semantics, which is what the latency and
//! scalability experiments measure.

pub mod generator;
pub mod q6;

pub use generator::{auction_source, bid_source, NexmarkConfig};
pub use q6::{q6_job, Q6Vertices};
