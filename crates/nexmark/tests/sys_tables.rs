//! End-to-end observability test: a live NEXMark Q6 job, then every `sys_*`
//! table queried through the SQL engine, cross-checked against the engine's
//! own counters and the Prometheus export.

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::Value;
use squery_nexmark::generator::NexmarkConfig;
use squery_nexmark::q6::q6_job;
use std::time::Duration;

fn small_cfg() -> NexmarkConfig {
    NexmarkConfig {
        sellers: 50,
        active_auctions: 100,
        events_per_instance: 5_000,
        rate_per_instance: None,
    }
}

/// One drained-and-checkpointed Q6 run shared by all assertions.
fn run_q6() -> SQuery {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let mut job = system.submit(q6_job(small_cfg(), 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
    job.stop();
    system
}

#[test]
fn sys_tables_observe_a_live_q6_job() {
    let system = run_q6();

    // --- sys_operators: filter by operator name -------------------------
    let rs = system
        .query(
            "SELECT records_in, records_out, state_updates FROM sys_operators \
             WHERE operator = 'maxbid'",
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    let records_in = rs.rows()[0][0].as_int().unwrap();
    let state_updates = rs.rows()[0][2].as_int().unwrap();
    // Both sources feed maxbid: 2 instances × 5 000 events.
    assert_eq!(records_in, 10_000, "maxbid consumed every generated event");
    assert!(state_updates > 0, "maxbid updated keyed state");

    // Counter agreement with the registry itself.
    assert_eq!(
        system
            .telemetry()
            .counter_value("operator_records_in_total", &[("operator", "maxbid")]),
        Some(records_in as u64)
    );

    // Sources appear too, even though they hold no state.
    let rs = system
        .query("SELECT records_out FROM sys_operators WHERE operator = 'bids'")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(5_000));

    // --- sys_operators self-join: compare two operators in one query ----
    let rs = system
        .query(
            "SELECT a.records_in, b.records_in FROM sys_operators a \
             JOIN sys_operators b ON a.state_updates = b.state_updates \
             WHERE a.operator = 'maxbid' AND b.operator = 'maxbid'",
        )
        .unwrap();
    assert_eq!(rs.len(), 1, "self-join finds the row again");
    assert_eq!(rs.rows()[0][0], rs.rows()[0][1]);

    // --- sys_operators vs overview() ------------------------------------
    let overview = system.overview();
    let rs = system
        .query(
            "SELECT operator, live_entries FROM sys_operators \
             WHERE live_entries IS NOT NULL ORDER BY operator",
        )
        .unwrap();
    let from_overview: Vec<(String, i64)> = overview
        .operators
        .iter()
        .filter_map(|o| o.live_entries.map(|n| (o.operator.clone(), n as i64)))
        .collect();
    let from_sql: Vec<(String, i64)> = rs
        .rows()
        .iter()
        .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(from_sql, from_overview);

    // --- sys_checkpoints -------------------------------------------------
    let rs = system
        .query(
            "SELECT job, ssid, began_at_us, phase1_us, total_us FROM sys_checkpoints \
             ORDER BY ssid",
        )
        .unwrap();
    assert_eq!(rs.len(), 1, "one committed checkpoint");
    assert_eq!(rs.rows()[0][0], Value::str("nexmark-q6"));
    assert_eq!(rs.rows()[0][1], Value::Int(1));
    assert!(rs.rows()[0][2].as_int().unwrap() > 0, "began_at_us set");
    let phase1 = rs.rows()[0][3].as_int().unwrap();
    let total = rs.rows()[0][4].as_int().unwrap();
    assert!(total >= phase1, "2PC total includes phase 1");

    // --- sys_snapshots ----------------------------------------------------
    let rs = system
        .query(
            "SELECT store, entries FROM sys_snapshots \
             WHERE committed = 1 AND entries > 0 ORDER BY store",
        )
        .unwrap();
    let stores: Vec<&Value> = rs.rows().iter().map(|r| &r[0]).collect();
    assert_eq!(
        stores,
        vec![
            &Value::str("snapshot_average"),
            &Value::str("snapshot_maxbid")
        ],
        "both stateful operators captured state at ssid 1"
    );

    // --- sys_metrics ------------------------------------------------------
    let rs = system
        .query(
            "SELECT value FROM sys_metrics \
             WHERE name = 'operator_records_in_total' AND operator = 'maxbid'",
        )
        .unwrap();
    assert_eq!(rs.rows(), &[vec![Value::Int(records_in)]]);
    let rs = system
        .query(
            "SELECT count, p50_us, p99_us FROM sys_metrics \
             WHERE name = 'checkpoint_total_us'",
        )
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(1));
    assert!(rs.rows()[0][2].as_int().unwrap() >= rs.rows()[0][1].as_int().unwrap());

    // --- sys_events -------------------------------------------------------
    let rs = system
        .query(
            "SELECT COUNT(*) AS n FROM sys_events \
             WHERE kind = 'checkpoint_committed' AND ssid = 1",
        )
        .unwrap();
    assert_eq!(rs.scalar("n"), Some(&Value::Int(1)));
    let rs = system
        .query("SELECT COUNT(*) AS n FROM sys_events WHERE kind = 'worker_started'")
        .unwrap();
    // 2 sources + 2×maxbid + 2×average + 1 sink = 7 worker instances.
    assert_eq!(rs.scalar("n"), Some(&Value::Int(7)));
}

#[test]
fn prometheus_export_parses_line_by_line() {
    let system = run_q6();
    let text = system.telemetry().render_prometheus();
    assert!(!text.is_empty());
    let mut seen = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Every sample line is `name{labels} value` or `name value`.
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value separator: {line}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in: {line}"
        );
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in: {line}"
        );
        if name_end < series.len() {
            assert!(series.ends_with('}'), "unbalanced label braces in: {line}");
        }
        seen += 1;
    }
    assert!(
        seen > 20,
        "expected a substantial export, got {seen} samples"
    );
    // The workload's key series are present.
    for needle in [
        "operator_records_in_total{operator=\"maxbid\"}",
        "checkpoint_total_us",
        "map_writes_total",
    ] {
        assert!(text.contains(needle), "missing {needle} in export");
    }
}
