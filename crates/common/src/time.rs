//! Clocks.
//!
//! Latency experiments stamp every record at the source and measure at the
//! sink; checkpoint 2PC latency is probed at three points (§IX-A). Benches
//! need wall time; integration tests need reproducibility — [`Clock`] serves
//! both: a wall clock anchored at creation, or a manually advanced clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond clock.
#[derive(Debug, Clone)]
pub struct Clock {
    kind: ClockKind,
}

#[derive(Debug, Clone)]
enum ClockKind {
    Wall(Instant),
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock whose zero is "now".
    pub fn wall() -> Clock {
        Clock {
            kind: ClockKind::Wall(Instant::now()),
        }
    }

    /// A manual clock starting at zero; advance it with [`Clock::advance`].
    pub fn manual() -> Clock {
        Clock {
            kind: ClockKind::Manual(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Microseconds since this clock's zero point.
    pub fn now_micros(&self) -> u64 {
        match &self.kind {
            ClockKind::Wall(start) => start.elapsed().as_micros() as u64,
            ClockKind::Manual(t) => t.load(Ordering::Acquire),
        }
    }

    /// Advance a manual clock; panics on a wall clock (advancing wall time is
    /// always a bug).
    pub fn advance(&self, micros: u64) {
        match &self.kind {
            ClockKind::Wall(_) => panic!("cannot advance a wall clock"),
            ClockKind::Manual(t) => {
                t.fetch_add(micros, Ordering::AcqRel);
            }
        }
    }

    /// Whether this is a manual (test) clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.kind, ClockKind::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_exactly() {
        let c = Clock::manual();
        assert_eq!(c.now_micros(), 0);
        c.advance(250);
        assert_eq!(c.now_micros(), 250);
        c.advance(1);
        assert_eq!(c.now_micros(), 251);
        assert!(c.is_manual());
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let c = Clock::manual();
        let c2 = c.clone();
        c.advance(10);
        assert_eq!(c2.now_micros(), 10);
    }

    #[test]
    fn wall_clock_is_monotonic_nondecreasing() {
        let c = Clock::wall();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
        assert!(!c.is_manual());
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn advancing_wall_clock_panics() {
        Clock::wall().advance(1);
    }
}
