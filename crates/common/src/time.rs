//! Clocks.
//!
//! Latency experiments stamp every record at the source and measure at the
//! sink; checkpoint 2PC latency is probed at three points (§IX-A). Benches
//! need wall time; integration tests need reproducibility — [`Clock`] serves
//! both: a wall clock anchored at creation, or a manually advanced clock.
//!
//! A wall clock's zero is its creation instant, so raw [`Clock::now_micros`]
//! readings are process-relative and mean nothing to another process (or to
//! the same deployment after a restart). For values that must survive a cold
//! start or be compared across clock instances — snapshot seal times,
//! persisted watermarks — each wall clock also records the unix-epoch
//! microsecond count at its zero point: [`Clock::to_epoch_micros`] rebases a
//! process-relative reading into that shared epoch domain, and
//! [`Clock::epoch_micros`] reads "epoch now". Manual clocks use a zero
//! anchor, so in tests the two domains coincide and stay deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A monotonic microsecond clock.
#[derive(Debug, Clone)]
pub struct Clock {
    kind: ClockKind,
}

#[derive(Debug, Clone)]
enum ClockKind {
    Wall {
        start: Instant,
        /// µs since the unix epoch at `start`; rebases process-relative
        /// readings into the restart-surviving epoch domain.
        epoch_anchor_us: u64,
    },
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock whose zero is "now".
    pub fn wall() -> Clock {
        let epoch_anchor_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Clock {
            kind: ClockKind::Wall {
                start: Instant::now(),
                epoch_anchor_us,
            },
        }
    }

    /// A manual clock starting at zero; advance it with [`Clock::advance`].
    pub fn manual() -> Clock {
        Clock {
            kind: ClockKind::Manual(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Microseconds since this clock's zero point.
    pub fn now_micros(&self) -> u64 {
        match &self.kind {
            ClockKind::Wall { start, .. } => start.elapsed().as_micros() as u64,
            ClockKind::Manual(t) => t.load(Ordering::Acquire),
        }
    }

    /// µs since the unix epoch at this clock's zero point (0 for manual
    /// clocks, whose domains coincide).
    pub fn epoch_anchor_micros(&self) -> u64 {
        match &self.kind {
            ClockKind::Wall {
                epoch_anchor_us, ..
            } => *epoch_anchor_us,
            ClockKind::Manual(_) => 0,
        }
    }

    /// Rebase a reading of *this* clock into the unix-epoch domain. Epoch
    /// values from different clocks (or different processes) are mutually
    /// comparable, which process-relative readings are not.
    pub fn to_epoch_micros(&self, clock_us: u64) -> u64 {
        clock_us.saturating_add(self.epoch_anchor_micros())
    }

    /// "Now" in the unix-epoch domain: [`Clock::now_micros`] rebased through
    /// [`Clock::to_epoch_micros`]. Monotonic within a process (it advances
    /// with the `Instant`, not with a settable system clock), and roughly
    /// continuous across restarts.
    pub fn epoch_micros(&self) -> u64 {
        self.to_epoch_micros(self.now_micros())
    }

    /// Advance a manual clock; panics on a wall clock (advancing wall time is
    /// always a bug).
    pub fn advance(&self, micros: u64) {
        match &self.kind {
            ClockKind::Wall { .. } => panic!("cannot advance a wall clock"),
            ClockKind::Manual(t) => {
                t.fetch_add(micros, Ordering::AcqRel);
            }
        }
    }

    /// Whether this is a manual (test) clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.kind, ClockKind::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_exactly() {
        let c = Clock::manual();
        assert_eq!(c.now_micros(), 0);
        c.advance(250);
        assert_eq!(c.now_micros(), 250);
        c.advance(1);
        assert_eq!(c.now_micros(), 251);
        assert!(c.is_manual());
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let c = Clock::manual();
        let c2 = c.clone();
        c.advance(10);
        assert_eq!(c2.now_micros(), 10);
    }

    #[test]
    fn wall_clock_is_monotonic_nondecreasing() {
        let c = Clock::wall();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
        assert!(!c.is_manual());
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn advancing_wall_clock_panics() {
        Clock::wall().advance(1);
    }

    #[test]
    fn wall_clock_epoch_domain_is_anchored_at_creation() {
        let c = Clock::wall();
        let anchor = c.epoch_anchor_micros();
        // The anchor is real unix time, not process-relative: well past
        // 2020-01-01 (1.577e15 µs) on any sanely-clocked host.
        assert!(anchor > 1_577_000_000_000_000, "anchor {anchor}");
        assert_eq!(c.to_epoch_micros(250), anchor + 250);
        assert!(c.epoch_micros() >= anchor);
        // Two wall clocks created in sequence agree on the epoch domain even
        // though their process-relative zeros differ.
        let c2 = Clock::wall();
        let (a, b) = (c.epoch_micros(), c2.epoch_micros());
        assert!(a.abs_diff(b) < 5_000_000, "epoch domains agree: {a} vs {b}");
    }

    #[test]
    fn manual_clock_epoch_domain_is_the_clock_domain() {
        let c = Clock::manual();
        assert_eq!(c.epoch_anchor_micros(), 0);
        c.advance(42);
        assert_eq!(c.epoch_micros(), 42);
        assert_eq!(c.to_epoch_micros(7), 7);
    }
}
