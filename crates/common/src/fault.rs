//! Deterministic fault injection.
//!
//! The availability claims of the paper (§IV–§V) only mean something if the
//! failure schedules are *reachable*: a worker dying between checkpoint
//! phase 1 and phase 2, a phase-1 ack that never arrives, a replication
//! backlog spike during node loss. This module provides a seeded
//! [`FaultPlan`] — injection points × trigger predicates — and a
//! [`FaultInjector`] whose hooks the engine consults at each injection
//! point. With no injector attached every hook site is a cheap `Option`
//! check; with one attached, the same seed reproduces the same fault
//! schedule, which is what makes the chaos soak deterministic.
//!
//! Every fired fault is appended to a log ([`FaultRecord`]) that backs the
//! `sys_faults` virtual table, so `SELECT * FROM sys_faults` shows each
//! injected fault with its injection point and eventual recovery outcome.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// SplitMix64 — a tiny deterministic PRNG (Steele et al., "Fast splittable
/// pseudorandom number generators"). The workspace vendors no `rand` crate;
/// this is all the randomness fault plans and jittered backoff need.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next pseudorandom 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[lo, hi)` (returns `lo` when the range is empty).
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den != 0 && self.next_u64() % den < num
    }

    /// A uniformly chosen element of `items` (panics on an empty slice).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0, items.len() as u64) as usize]
    }
}

/// Exponential backoff with deterministic jitter: `base · 2^attempt`,
/// capped at `max`, plus up to 25% seeded jitter. Used by both the
/// checkpoint retry loop and the supervisor's restart policy.
pub fn backoff_with_jitter(base: Duration, attempt: u32, max: Duration, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
    let capped = exp.min(max);
    let mut rng = SplitMix64::new(seed ^ ((u64::from(attempt) + 1) << 32));
    let jitter_us = rng.gen_range(0, (capped.as_micros() as u64 / 4).max(1));
    capped + Duration::from_micros(jitter_us)
}

/// Where in the engine a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// A worker (source or operator) instance, at its Nth record.
    WorkerRecord,
    /// A worker instance right after it acked phase 1 of a checkpoint —
    /// i.e. between phase 1 and phase 2 of the 2PC snapshot commit.
    WorkerPostAck,
    /// The coordinator receiving a phase-1 ack.
    Phase1Ack,
    /// The coordinator about to run phase 2 (the registry commit).
    Phase2Commit,
    /// The replicator applying a backup write.
    Replication,
    /// A whole node failing with backup promotion (`Grid::fail_node`).
    NodeLoss,
    /// A WAL delta append during checkpoint phase 1 (kill-during-write).
    WalAppend,
    /// The coordinator about to seal the round's WAL records with commit
    /// markers (kill-before-commit-marker).
    WalSeal,
    /// The coordinator just sealed the round on disk but has not yet run
    /// the in-memory registry commit (kill-after-commit-marker).
    WalSealed,
    /// WAL segment compaction after `prune_below` (kill-mid-compaction).
    WalCompact,
}

impl InjectionPoint {
    /// Stable snake_case label (the `point` column of `sys_faults`).
    pub fn as_str(&self) -> &'static str {
        match self {
            InjectionPoint::WorkerRecord => "worker_record",
            InjectionPoint::WorkerPostAck => "worker_post_ack",
            InjectionPoint::Phase1Ack => "phase1_ack",
            InjectionPoint::Phase2Commit => "phase2_commit",
            InjectionPoint::Replication => "replication",
            InjectionPoint::NodeLoss => "node_loss",
            InjectionPoint::WalAppend => "wal_append",
            InjectionPoint::WalSeal => "wal_seal",
            InjectionPoint::WalSealed => "wal_sealed",
            InjectionPoint::WalCompact => "wal_compact",
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the worker thread (its unwind is caught; the supervisor must
    /// escalate to rollback recovery).
    PanicWorker,
    /// Stall the worker for the given duration (alignment-stall pressure).
    StallWorker {
        /// Stall duration in microseconds.
        micros: u64,
    },
    /// Silently drop a phase-1 ack at the coordinator (forces an abort).
    DropAck,
    /// Delay a phase-1 ack at the coordinator.
    DelayAck {
        /// Delay in microseconds.
        micros: u64,
    },
    /// Fail the phase-2 registry commit (the round aborts and is retried).
    FailCommit,
    /// Kill the coordinator between phase 1 and phase 2: the round aborts
    /// and the coordinator stops serving triggers until recovery.
    KillCoordinator,
    /// Delay the replicator while applying one backup write (backlog spike).
    DelayReplication {
        /// Delay in microseconds.
        micros: u64,
    },
    /// Simulate a process kill mid-write: persist only the first
    /// `keep_bytes` of the record being appended, then freeze the WAL (all
    /// later disk writes silently vanish, as after a real kill).
    TornWrite {
        /// Bytes of the in-flight record that reach the disk.
        keep_bytes: u32,
    },
    /// Simulate a clean process kill: freeze the WAL so no later append,
    /// seal, truncate, or compaction reaches the disk. The in-memory system
    /// keeps running; recovery is validated by a cold start from the
    /// directory.
    FreezeWal,
}

impl FaultAction {
    /// Stable snake_case label (the `action` column of `sys_faults`).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultAction::PanicWorker => "panic_worker",
            FaultAction::StallWorker { .. } => "stall_worker",
            FaultAction::DropAck => "drop_ack",
            FaultAction::DelayAck { .. } => "delay_ack",
            FaultAction::FailCommit => "fail_commit",
            FaultAction::KillCoordinator => "kill_coordinator",
            FaultAction::DelayReplication { .. } => "delay_replication",
            FaultAction::TornWrite { .. } => "torn_write",
            FaultAction::FreezeWal => "freeze_wal",
        }
    }

    /// Whether the action needs recovery to resolve (vs. being absorbed
    /// in-line, like a stall or delay).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            FaultAction::PanicWorker
                | FaultAction::DropAck
                | FaultAction::FailCommit
                | FaultAction::KillCoordinator
                | FaultAction::TornWrite { .. }
                | FaultAction::FreezeWal
        )
    }
}

/// Trigger predicates selecting *when* a [`FaultSpec`] fires. Unset fields
/// match anything, except `at_record`, which is required for
/// [`InjectionPoint::WorkerRecord`] (a record fault must name its record).
#[derive(Debug, Clone, Default)]
pub struct FaultTrigger {
    /// Fire at the worker's Nth record (1-based, exact match).
    pub at_record: Option<u64>,
    /// Fire during this checkpoint round (snapshot id).
    pub at_ssid: Option<u64>,
    /// Restrict to one operator/source by name.
    pub operator: Option<String>,
    /// Restrict to one worker instance (or, at `Phase1Ack`, the 0-based
    /// ordinal of the ack within the round).
    pub instance: Option<u32>,
    /// Restrict to one grid partition (replication faults).
    pub partition: Option<u32>,
}

/// One planned fault: a point, an action, and trigger predicates.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Where it fires.
    pub point: InjectionPoint,
    /// What it does.
    pub action: FaultAction,
    /// When it fires.
    pub trigger: FaultTrigger,
    /// Fire at most once (the default for fatal actions in seeded plans).
    pub once: bool,
}

/// A seeded set of [`FaultSpec`]s. Build one explicitly for a targeted
/// scenario, or sample one with [`FaultPlan::seeded`] for the chaos soak.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// The planned faults.
    pub specs: Vec<FaultSpec>,
}

/// Shape of the randomized plans [`FaultPlan::seeded`] samples.
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Fatal faults to sample (1..=max, at least one).
    pub max_fatal: u32,
    /// Benign faults to sample (0..=max).
    pub max_benign: u32,
    /// Candidate `at_record` window (lo inclusive, hi exclusive).
    pub record_range: (u64, u64),
    /// Candidate `at_ssid` window (lo inclusive, hi exclusive).
    pub ssid_range: (u64, u64),
    /// Candidate operator names for worker faults.
    pub operators: Vec<String>,
    /// Instances per operator (worker faults pick one).
    pub instances: u32,
}

impl FaultPlan {
    /// An empty plan with a seed label.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Add a fault.
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Sample a randomized plan from `seed`: 1..=`max_fatal` fatal faults
    /// with crash points spread across checkpoint phases (worker record,
    /// post-ack, ack drop, phase-2 failure, coordinator kill) plus up to
    /// `max_benign` stalls/delays. The same seed always yields the same plan.
    pub fn seeded(seed: u64, profile: &ChaosProfile) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new(seed);
        let n_fatal = rng.gen_range(1, u64::from(profile.max_fatal) + 1) as u32;
        for _ in 0..n_fatal {
            let spec = match rng.gen_range(0, 5) {
                0 => FaultSpec {
                    point: InjectionPoint::WorkerRecord,
                    action: FaultAction::PanicWorker,
                    trigger: FaultTrigger {
                        at_record: Some(
                            rng.gen_range(profile.record_range.0, profile.record_range.1),
                        ),
                        operator: Some(rng.pick(&profile.operators).clone()),
                        instance: Some(rng.gen_range(0, u64::from(profile.instances)) as u32),
                        ..FaultTrigger::default()
                    },
                    once: true,
                },
                1 => FaultSpec {
                    point: InjectionPoint::WorkerPostAck,
                    action: FaultAction::PanicWorker,
                    trigger: FaultTrigger {
                        at_ssid: Some(rng.gen_range(profile.ssid_range.0, profile.ssid_range.1)),
                        operator: Some(rng.pick(&profile.operators).clone()),
                        instance: Some(rng.gen_range(0, u64::from(profile.instances)) as u32),
                        ..FaultTrigger::default()
                    },
                    once: true,
                },
                2 => FaultSpec {
                    point: InjectionPoint::Phase1Ack,
                    action: FaultAction::DropAck,
                    trigger: FaultTrigger {
                        at_ssid: Some(rng.gen_range(profile.ssid_range.0, profile.ssid_range.1)),
                        ..FaultTrigger::default()
                    },
                    once: true,
                },
                3 => FaultSpec {
                    point: InjectionPoint::Phase2Commit,
                    action: FaultAction::FailCommit,
                    trigger: FaultTrigger {
                        at_ssid: Some(rng.gen_range(profile.ssid_range.0, profile.ssid_range.1)),
                        ..FaultTrigger::default()
                    },
                    once: true,
                },
                _ => FaultSpec {
                    point: InjectionPoint::Phase2Commit,
                    action: FaultAction::KillCoordinator,
                    trigger: FaultTrigger {
                        at_ssid: Some(rng.gen_range(profile.ssid_range.0, profile.ssid_range.1)),
                        ..FaultTrigger::default()
                    },
                    once: true,
                },
            };
            plan.specs.push(spec);
        }
        let n_benign = rng.gen_range(0, u64::from(profile.max_benign) + 1) as u32;
        for _ in 0..n_benign {
            let micros = rng.gen_range(200, 3_000);
            let spec = match rng.gen_range(0, 3) {
                0 => FaultSpec {
                    point: InjectionPoint::WorkerRecord,
                    action: FaultAction::StallWorker { micros },
                    trigger: FaultTrigger {
                        at_record: Some(
                            rng.gen_range(profile.record_range.0, profile.record_range.1),
                        ),
                        operator: Some(rng.pick(&profile.operators).clone()),
                        ..FaultTrigger::default()
                    },
                    once: true,
                },
                1 => FaultSpec {
                    point: InjectionPoint::Phase1Ack,
                    action: FaultAction::DelayAck { micros },
                    trigger: FaultTrigger {
                        at_ssid: Some(rng.gen_range(profile.ssid_range.0, profile.ssid_range.1)),
                        ..FaultTrigger::default()
                    },
                    once: true,
                },
                _ => FaultSpec {
                    point: InjectionPoint::Replication,
                    action: FaultAction::DelayReplication { micros },
                    trigger: FaultTrigger::default(),
                    once: true,
                },
            };
            plan.specs.push(spec);
        }
        plan
    }
}

/// One fired fault, as listed by `sys_faults`.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// Firing order (1-based).
    pub seq: u64,
    /// Microseconds since the injector was created.
    pub at_us: u64,
    /// Where it fired.
    pub point: InjectionPoint,
    /// What it did.
    pub action: FaultAction,
    /// The operator/source it hit, if point-specific.
    pub operator: Option<String>,
    /// The worker instance (or ack ordinal) it hit.
    pub instance: Option<u32>,
    /// The checkpoint round it hit.
    pub ssid: Option<u64>,
    /// The grid partition it hit.
    pub partition: Option<u32>,
    /// Human-readable context.
    pub detail: String,
    /// Recovery outcome: `pending` until the supervisor or checkpoint-retry
    /// loop resolves it (`recovered`, `recovered_by_retry`, `gave_up`), or
    /// set immediately for in-line faults (`absorbed`, `promoted`).
    pub outcome: String,
}

struct ArmedSpec {
    spec: FaultSpec,
    fired: u64,
}

/// The engine-side fault driver: holds a plan, matches hook calls against
/// it, and logs every firing. Attached to the grid (`Grid::
/// attach_fault_injector`) so every subsystem reaches it the same way.
pub struct FaultInjector {
    armed: Mutex<Vec<ArmedSpec>>,
    log: Mutex<Vec<FaultRecord>>,
    seq: AtomicU64,
    started: Instant,
    seed: u64,
}

/// Panic messages raised by injected faults start with this prefix, so the
/// process-wide hook below can tell a *planned* crash from a real bug.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault: ";

/// Install (once per process) a panic hook that swallows the default stderr
/// report for panics whose message starts with [`INJECTED_PANIC_PREFIX`].
/// Those panics are raised on purpose by the injector and caught by the
/// supervisor's unwind path; printing them only buries real failures in
/// expected noise (and, under ThreadSanitizer, two workers panicking at once
/// trip false races inside std's uninstrumented stderr serialization). Every
/// other panic still goes through the previously installed hook.
fn silence_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.starts_with(INJECTED_PANIC_PREFIX)) {
                return;
            }
            previous(info);
        }));
    });
}

impl FaultInjector {
    /// An injector driving `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        silence_injected_panics();
        FaultInjector {
            seed: plan.seed,
            armed: Mutex::new(
                plan.specs
                    .into_iter()
                    .map(|spec| ArmedSpec { spec, fired: 0 })
                    .collect(),
            ),
            log: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker hook: `operator` instance `instance` is about to process its
    /// `nth` record (1-based). Returns the action to apply, if any.
    pub fn on_worker_record(&self, operator: &str, instance: u32, nth: u64) -> Option<FaultAction> {
        self.fire(InjectionPoint::WorkerRecord, |t| {
            t.at_record == Some(nth)
                && t.operator.as_deref().is_none_or(|o| o == operator)
                && t.instance.is_none_or(|i| i == instance)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::WorkerRecord,
                Some(operator),
                Some(instance),
                None,
                None,
                format!("at record {nth}"),
            );
        })
    }

    /// Worker hook: `operator` instance `instance` just acked phase 1 of
    /// checkpoint `ssid` (and has not yet forwarded the marker).
    pub fn on_worker_post_ack(
        &self,
        operator: &str,
        instance: u32,
        ssid: u64,
    ) -> Option<FaultAction> {
        self.fire(InjectionPoint::WorkerPostAck, |t| {
            t.at_ssid.is_none_or(|s| s == ssid)
                && t.operator.as_deref().is_none_or(|o| o == operator)
                && t.instance.is_none_or(|i| i == instance)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::WorkerPostAck,
                Some(operator),
                Some(instance),
                Some(ssid),
                None,
                "between checkpoint phase 1 and phase 2".into(),
            );
        })
    }

    /// Coordinator hook: the `ordinal`-th phase-1 ack of round `ssid`
    /// arrived.
    pub fn on_phase1_ack(&self, ssid: u64, ordinal: u32) -> Option<FaultAction> {
        self.fire(InjectionPoint::Phase1Ack, |t| {
            t.at_ssid.is_none_or(|s| s == ssid) && t.instance.is_none_or(|i| i == ordinal)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::Phase1Ack,
                None,
                Some(ordinal),
                Some(ssid),
                None,
                format!("ack {ordinal} of round {ssid}"),
            );
        })
    }

    /// Coordinator hook: phase 2 (registry commit) of round `ssid` is about
    /// to run — all phase-1 acks are in.
    pub fn on_phase2(&self, ssid: u64) -> Option<FaultAction> {
        self.fire(InjectionPoint::Phase2Commit, |t| {
            t.at_ssid.is_none_or(|s| s == ssid)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::Phase2Commit,
                None,
                None,
                Some(ssid),
                None,
                "before registry commit".into(),
            );
        })
    }

    /// Replicator hook: a backup write for `partition` is being applied.
    pub fn on_replication_op(&self, partition: u32) -> Option<FaultAction> {
        self.fire(InjectionPoint::Replication, |t| {
            t.partition.is_none_or(|p| p == partition)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::Replication,
                None,
                None,
                None,
                Some(partition),
                "while applying backup write".into(),
            );
        })
    }

    /// WAL hook: `store` is about to append a phase-1 delta record for
    /// partition `partition` of round `ssid`.
    pub fn on_wal_append(&self, store: &str, ssid: u64, partition: u32) -> Option<FaultAction> {
        self.fire(InjectionPoint::WalAppend, |t| {
            t.at_ssid.is_none_or(|s| s == ssid)
                && t.operator.as_deref().is_none_or(|o| o == store)
                && t.partition.is_none_or(|p| p == partition)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::WalAppend,
                Some(store),
                None,
                Some(ssid),
                Some(partition),
                "during phase-1 WAL append".into(),
            );
        })
    }

    /// WAL hook: the coordinator is about to seal round `ssid` on disk
    /// (write commit markers to every touched segment).
    pub fn on_wal_seal(&self, ssid: u64) -> Option<FaultAction> {
        self.fire(InjectionPoint::WalSeal, |t| {
            t.at_ssid.is_none_or(|s| s == ssid)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::WalSeal,
                None,
                None,
                Some(ssid),
                None,
                "before WAL commit markers".into(),
            );
        })
    }

    /// WAL hook: round `ssid` is sealed on disk; the in-memory registry
    /// commit has not run yet.
    pub fn on_wal_sealed(&self, ssid: u64) -> Option<FaultAction> {
        self.fire(InjectionPoint::WalSealed, |t| {
            t.at_ssid.is_none_or(|s| s == ssid)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::WalSealed,
                None,
                None,
                Some(ssid),
                None,
                "after WAL commit markers, before registry commit".into(),
            );
        })
    }

    /// WAL hook: segment compaction is rewriting `store` partition
    /// `partition` (fires between writing the replacement file and the
    /// atomic rename).
    pub fn on_wal_compact(&self, store: &str, partition: u32) -> Option<FaultAction> {
        self.fire(InjectionPoint::WalCompact, |t| {
            t.operator.as_deref().is_none_or(|o| o == store)
                && t.partition.is_none_or(|p| p == partition)
        })
        .inspect(|&action| {
            self.record(
                action,
                InjectionPoint::WalCompact,
                Some(store),
                None,
                None,
                Some(partition),
                "mid-compaction, before rename".into(),
            );
        })
    }

    /// Grid hook: node `node` was failed and `promoted` backup partitions
    /// took over (record-only — the loss itself is driven by the caller).
    pub fn on_node_loss(&self, node: u32, promoted: usize) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::FaultState);
        self.log.lock().push(FaultRecord {
            seq,
            at_us: self.started.elapsed().as_micros() as u64,
            point: InjectionPoint::NodeLoss,
            action: FaultAction::PanicWorker,
            operator: None,
            instance: Some(node),
            ssid: None,
            partition: None,
            detail: format!("node {node} lost, {promoted} partitions promoted"),
            outcome: format!("promoted_{promoted}"),
        });
    }

    fn fire(
        &self,
        point: InjectionPoint,
        matches: impl Fn(&FaultTrigger) -> bool,
    ) -> Option<FaultAction> {
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::FaultState);
        let mut armed = self.armed.lock();
        for a in armed.iter_mut() {
            if a.spec.point != point || (a.spec.once && a.fired > 0) {
                continue;
            }
            if matches(&a.spec.trigger) {
                a.fired += 1;
                return Some(a.spec.action);
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        action: FaultAction,
        point: InjectionPoint,
        operator: Option<&str>,
        instance: Option<u32>,
        ssid: Option<u64>,
        partition: Option<u32>,
        detail: String,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::FaultState);
        self.log.lock().push(FaultRecord {
            seq,
            at_us: self.started.elapsed().as_micros() as u64,
            point,
            action,
            operator: operator.map(str::to_string),
            instance,
            ssid,
            partition,
            detail,
            outcome: if action.is_fatal() {
                "pending".into()
            } else {
                "absorbed".into()
            },
        });
    }

    /// Snapshot of every fired fault, in firing order.
    pub fn records(&self) -> Vec<FaultRecord> {
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::FaultState);
        self.log.lock().clone()
    }

    /// How many faults have fired.
    pub fn fired(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Stamp every `pending` record with `outcome` (called by the
    /// checkpoint retry loop and the supervisor once recovery settles).
    /// Returns how many records were resolved.
    pub fn resolve_pending(&self, outcome: &str) -> usize {
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::FaultState);
        let mut log = self.log.lock();
        let mut n = 0;
        for r in log.iter_mut() {
            if r.outcome == "pending" {
                r.outcome = outcome.to_string();
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut dedup = xs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), xs.len(), "no collisions in 32 draws");
        let mut c = SplitMix64::new(42);
        for _ in 0..100 {
            let v = c.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(100);
        let b0 = backoff_with_jitter(base, 0, max, 7);
        let b3 = backoff_with_jitter(base, 3, max, 7);
        let b9 = backoff_with_jitter(base, 9, max, 7);
        assert!(b0 >= base && b0 < base * 2);
        assert!(b3 >= base * 8);
        assert!(b9 <= max + max / 4, "jitter bounded by 25% of the cap");
        assert_eq!(b3, backoff_with_jitter(base, 3, max, 7));
        // Overflow-safe at absurd attempt counts.
        let _ = backoff_with_jitter(base, u32::MAX, max, 7);
    }

    #[test]
    fn worker_record_trigger_matches_exactly_once() {
        let plan = FaultPlan::new(0).with(FaultSpec {
            point: InjectionPoint::WorkerRecord,
            action: FaultAction::PanicWorker,
            trigger: FaultTrigger {
                at_record: Some(5),
                operator: Some("count".into()),
                instance: Some(1),
                ..FaultTrigger::default()
            },
            once: true,
        });
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_worker_record("count", 1, 4), None);
        assert_eq!(inj.on_worker_record("other", 1, 5), None);
        assert_eq!(inj.on_worker_record("count", 0, 5), None);
        assert_eq!(
            inj.on_worker_record("count", 1, 5),
            Some(FaultAction::PanicWorker)
        );
        // `once` — a replayed 5th record does not re-fire.
        assert_eq!(inj.on_worker_record("count", 1, 5), None);
        let records = inj.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].point.as_str(), "worker_record");
        assert_eq!(records[0].outcome, "pending");
    }

    #[test]
    fn pending_outcomes_resolve() {
        let plan = FaultPlan::new(0)
            .with(FaultSpec {
                point: InjectionPoint::Phase2Commit,
                action: FaultAction::FailCommit,
                trigger: FaultTrigger::default(),
                once: true,
            })
            .with(FaultSpec {
                point: InjectionPoint::Phase1Ack,
                action: FaultAction::DelayAck { micros: 10 },
                trigger: FaultTrigger::default(),
                once: true,
            });
        let inj = FaultInjector::new(plan);
        assert!(inj.on_phase2(1).is_some());
        assert!(inj.on_phase1_ack(2, 0).is_some());
        assert_eq!(inj.resolve_pending("recovered_by_retry"), 1);
        let outcomes: Vec<_> = inj.records().into_iter().map(|r| r.outcome).collect();
        assert!(outcomes.contains(&"recovered_by_retry".to_string()));
        assert!(outcomes.contains(&"absorbed".to_string()));
    }

    #[test]
    fn seeded_plans_reproduce_and_contain_a_fatal_fault() {
        let profile = ChaosProfile {
            max_fatal: 2,
            max_benign: 2,
            record_range: (1, 100),
            ssid_range: (1, 4),
            operators: vec!["count".into(), "events".into()],
            instances: 2,
        };
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, &profile);
            let b = FaultPlan::seeded(seed, &profile);
            assert_eq!(a.specs.len(), b.specs.len());
            for (x, y) in a.specs.iter().zip(&b.specs) {
                assert_eq!(x.point, y.point);
                assert_eq!(x.action, y.action);
                assert_eq!(x.trigger.at_record, y.trigger.at_record);
                assert_eq!(x.trigger.at_ssid, y.trigger.at_ssid);
                assert_eq!(x.trigger.operator, y.trigger.operator);
            }
            assert!(
                a.specs.iter().any(|s| s.action.is_fatal()),
                "every chaos plan exercises at least one fatal fault"
            );
        }
    }

    #[test]
    fn node_loss_records_promotion_outcome() {
        let inj = FaultInjector::new(FaultPlan::new(0));
        inj.on_node_loss(2, 7);
        let r = inj.records();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].point, InjectionPoint::NodeLoss);
        assert_eq!(r[0].outcome, "promoted_7");
    }
}
