//! Latency histograms and percentile reporting.
//!
//! The paper's evaluation reports latency *distributions* on an inverted log
//! scale — 0th, 90th, 99th, 99.9th, 99.99th percentiles (Figures 8–13). This
//! module provides a log-linear histogram (HDR-style: power-of-two buckets,
//! each split into 32 linear sub-buckets, ≈3% relative error) that records
//! microsecond values, merges across threads, and extracts those percentiles.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 32
const BUCKETS: usize = 64;

/// A log-linear histogram of `u64` values (conventionally microseconds).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record `n` occurrences of a value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[Self::index_of(value)] += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        // bucket 0 covers [0, 32) exactly (early return above); bucket b >= 1
        // covers [2^(b+4), 2^(b+5)) split into 32 linear sub-buckets, so the
        // relative quantization error is bounded by 1/32.
        let msb = 63 - value.leading_zeros();
        let bucket = (msb - SUB_BUCKET_BITS + 1) as usize;
        let shift = msb - SUB_BUCKET_BITS;
        let sub = ((value >> shift) - SUB_BUCKETS as u64) as usize;
        bucket * SUB_BUCKETS + sub
    }

    fn value_of(index: usize) -> u64 {
        let bucket = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if bucket == 0 {
            return sub;
        }
        let shift = (bucket - 1) as u32;
        // Midpoint of the sub-bucket [lo, lo + 2^shift): an unbiased estimate
        // (the previous upper-edge choice biased reported percentiles high by
        // up to the sub-bucket width, ~3% relative).
        ((SUB_BUCKETS as u64 + sub) << shift) + ((1u64 << shift) >> 1)
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (sub-bucket midpoint estimate).
    ///
    /// `q = 0` returns the recorded minimum; `q = 1` the recorded maximum.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return Self::value_of(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// The paper-style percentile row for this histogram.
    pub fn report(&self) -> PercentileReport {
        PercentileReport {
            count: self.count(),
            mean_us: self.mean(),
            p0: self.min(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            p9999: self.percentile(0.9999),
            max: self.max(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(count={}, min={}, max={})",
            self.total,
            self.min(),
            self.max
        )
    }
}

/// A shareable, mutex-guarded histogram for cross-thread recording.
#[derive(Clone, Default)]
pub struct SharedHistogram {
    inner: Arc<Mutex<Histogram>>,
}

impl fmt::Debug for SharedHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared{:?}", self.inner.lock())
    }
}

impl SharedHistogram {
    /// An empty shared histogram.
    pub fn new() -> SharedHistogram {
        SharedHistogram::default()
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::Histogram);
        self.inner.lock().record(value);
    }

    /// A snapshot copy of the current histogram.
    pub fn snapshot(&self) -> Histogram {
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::Histogram);
        self.inner.lock().clone()
    }

    /// Reset to empty.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

/// The percentile set the paper's figures report, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileReport {
    /// Number of samples.
    pub count: u64,
    /// Mean in microseconds.
    pub mean_us: f64,
    /// Minimum (the figures' "0%" point).
    pub p0: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// 99.99th percentile.
    pub p9999: u64,
    /// Maximum.
    pub max: u64,
}

impl PercentileReport {
    /// Format a figure row in milliseconds with one decimal, matching the
    /// paper's y-axes.
    pub fn as_ms_row(&self, label: &str) -> String {
        fn ms(us: u64) -> f64 {
            us as f64 / 1000.0
        }
        format!(
            "{label:<24} n={:<9} 0%={:<8.2} 50%={:<8.2} 90%={:<8.2} 99%={:<8.2} 99.9%={:<8.2} 99.99%={:<8.2} max={:.2} (ms)",
            self.count,
            ms(self.p0),
            ms(self.p50),
            ms(self.p90),
            ms(self.p99),
            ms(self.p999),
            ms(self.p9999),
            ms(self.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 31);
        // Values below 32 land in exact buckets.
        assert_eq!(h.percentile(0.5), 15);
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = (q * 100_000.0) as u64;
            let est = h.percentile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.05, "q={q}: est={est} exact={exact} err={err}");
        }
    }

    #[test]
    fn percentile_never_exceeds_recorded_extremes() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.percentile(0.5), 1_000_003);
        assert_eq!(h.percentile(0.9999), 1_000_003);
        assert_eq!(h.min(), 1_000_003);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
            c.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), c.percentile(q));
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(500, 10);
        for _ in 0..10 {
            b.record(500);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(0.5), b.percentile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn shared_histogram_is_cloneable_and_shared() {
        let h = SharedHistogram::new();
        let h2 = h.clone();
        h.record(10);
        h2.record(20);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        h.clear();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn report_row_formats_in_ms() {
        let mut h = Histogram::new();
        h.record(1_500);
        h.record(2_500);
        let row = h.report().as_ms_row("S-Query snap");
        assert!(row.contains("S-Query snap"), "{row}");
        assert!(row.contains("n=2"), "{row}");
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = Histogram::new();
        h.record(123);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.mean(), 200.0);
    }

    #[test]
    fn index_value_roundtrip_is_accurate() {
        // `value_of(index_of(v))` must stay inside v's own sub-bucket and
        // within half a sub-bucket width of v (midpoint estimate), i.e.
        // relative error bounded by 1/64 above the linear range.
        let mut probes: Vec<u64> = (0..256).collect();
        for shift in 8..40u32 {
            for offset in [0u64, 1, 13, 31] {
                probes.push((1u64 << shift) + (offset << (shift.saturating_sub(5))));
            }
        }
        for &v in &probes {
            let idx = Histogram::index_of(v);
            let est = Histogram::value_of(idx);
            assert_eq!(
                Histogram::index_of(est),
                idx,
                "estimate must stay in the same sub-bucket: v={v} est={est}"
            );
            if v < SUB_BUCKETS as u64 {
                assert_eq!(est, v, "linear range is exact");
            } else {
                let err = (est as f64 - v as f64).abs() / v as f64;
                assert!(err <= 1.0 / 32.0, "v={v} est={est} err={err}");
            }
        }
    }

    #[test]
    fn quantiles_are_monotonic_in_q() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(x % 1_000_000);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        let values: Vec<u64> = qs.iter().map(|&q| h.percentile(q)).collect();
        for w in values.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be non-decreasing: {values:?}");
        }
        assert_eq!(values[0], h.min());
        assert_eq!(*values.last().unwrap(), h.max());
    }

    #[test]
    fn p95_of_uniform_distribution_is_accurate() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let est = h.percentile(0.95);
        let err = (est as f64 - 9_500.0).abs() / 9_500.0;
        assert!(err < 0.05, "p95 est={est} err={err}");
    }

    #[test]
    fn quantile_of_point_mass_is_the_point() {
        let mut h = Histogram::new();
        h.record_n(777, 1_000);
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            let est = h.percentile(q);
            // 777 sits above the linear range; the midpoint estimate must
            // stay within one sub-bucket (≈3% relative error).
            let err = (est as f64 - 777.0).abs() / 777.0;
            assert!(err <= 1.0 / 32.0, "q={q} est={est}");
        }
    }

    #[test]
    fn skewed_tail_pulls_high_quantiles_only() {
        let mut h = Histogram::new();
        h.record_n(100, 99); // 99% of mass at ~100µs
        h.record(1_000_000); // one 1s outlier
        assert!(h.percentile(0.5) < 150);
        assert!(h.percentile(0.95) < 150);
        assert_eq!(h.percentile(1.0), 1_000_000);
        // The outlier is the 100th of 100 samples: p≥0.995 reaches it.
        assert!(h.percentile(0.999) >= 900_000);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_quantile_panics() {
        Histogram::new().percentile(1.5);
    }

    #[test]
    fn value_of_is_midpoint_not_upper_edge() {
        // 96 sits in bucket 2 (range [64, 128), sub-bucket width 2): the
        // sub-bucket holding 96 is [96, 98) with midpoint 97 — the old
        // upper-edge code returned 97 too, so probe a wider bucket where the
        // difference is visible: 1024 lives in [1024, 1056), midpoint 1040,
        // upper edge 1055.
        let idx = Histogram::index_of(1024);
        assert_eq!(Histogram::value_of(idx), 1024 + 16);
    }
}
