//! Schemas: named, typed field lists.
//!
//! A [`Schema`] describes both struct values (operator state objects) and SQL
//! tables. The storage layer derives a table schema for each operator's state
//! map by prepending the reserved key column (`partitionKey`, the column name
//! the paper's queries join on) and — for snapshot tables — the `ssid` column.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The column name under which a map's key is exposed to SQL.
///
/// Matches the paper's Queries 1–4, which `JOIN ... USING(partitionKey)`.
pub const KEY_COLUMN: &str = "partitionKey";

/// The column name under which a snapshot entry's snapshot id is exposed.
///
/// Matches the paper's Figure 4 query: `WHERE ssid=9 AND key=2`.
pub const SSID_COLUMN: &str = "ssid";

/// Data types for schema fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Microsecond timestamp.
    Timestamp,
    /// List of values.
    List,
    /// Nested struct.
    Struct,
    /// Opaque bytes.
    Bytes,
    /// Unconstrained (used where the value type is data-dependent).
    Any,
}

/// A named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field / column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

/// An ordered list of fields with O(1) name lookup.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// Panics on duplicate field names: a schema with ambiguous columns can
    /// never be queried correctly, so this is a programming error.
    pub fn new<N: Into<String>>(fields: Vec<(N, DataType)>) -> Schema {
        let fields: Vec<Field> = fields
            .into_iter()
            .map(|(name, dtype)| Field {
                name: name.into(),
                dtype,
            })
            .collect();
        Self::from_fields(fields)
    }

    /// Build a schema from prebuilt fields. Panics on duplicate names.
    pub fn from_fields(fields: Vec<Field>) -> Schema {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            let prev = by_name.insert(f.name.clone(), i);
            assert!(prev.is_none(), "duplicate field name: {}", f.name);
        }
        Schema { fields, by_name }
    }

    /// The empty schema.
    pub fn empty() -> Schema {
        Schema {
            fields: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// All fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has zero fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field by position.
    pub fn field_at(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// Whether the schema contains a field of this name.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// A new schema with `extra` fields prepended (used to add the key /
    /// ssid columns in front of state-object fields).
    pub fn prepend(&self, extra: Vec<Field>) -> Schema {
        let mut fields = extra;
        fields.extend(self.fields.iter().cloned());
        Schema::from_fields(fields)
    }

    /// A new schema that concatenates `self` and `other`, skipping fields of
    /// `other` whose names `self` already has (SQL `JOIN ... USING` output).
    pub fn join_using(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in other.fields() {
            if !self.contains(&f.name) {
                fields.push(f.clone());
            }
        }
        Schema::from_fields(fields)
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}
impl Eq for Schema {}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {:?}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

/// Convenience: an `Arc<Schema>` from `(name, type)` pairs.
pub fn schema(fields: Vec<(&str, DataType)>) -> Arc<Schema> {
    Arc::new(Schema::new(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_index() {
        let s = Schema::new(vec![("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert_eq!(s.field_at(1).name, "b");
        assert!(s.contains("a"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![("a", DataType::Int), ("a", DataType::Str)]);
    }

    #[test]
    fn prepend_adds_columns_in_front() {
        let s = Schema::new(vec![("total", DataType::Int)]);
        let with_key = s.prepend(vec![Field {
            name: KEY_COLUMN.into(),
            dtype: DataType::Any,
        }]);
        assert_eq!(with_key.index_of(KEY_COLUMN), Some(0));
        assert_eq!(with_key.index_of("total"), Some(1));
    }

    #[test]
    fn join_using_deduplicates_shared_columns() {
        let a = Schema::new(vec![("partitionKey", DataType::Any), ("x", DataType::Int)]);
        let b = Schema::new(vec![("partitionKey", DataType::Any), ("y", DataType::Int)]);
        let joined = a.join_using(&b);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.index_of("partitionKey"), Some(0));
        assert_eq!(joined.index_of("y"), Some(2));
    }

    #[test]
    fn display_lists_fields() {
        let s = Schema::new(vec![("count", DataType::Int)]);
        assert_eq!(s.to_string(), "(count Int)");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
