//! Shared error type for all S-QUERY crates.
//!
//! A single lightweight error enum keeps cross-crate APIs uniform without
//! pulling in error-handling dependencies. Each variant carries a short
//! human-readable message; the variant itself classifies the failure domain.

use std::fmt;

/// Result alias used across the workspace.
pub type SqResult<T> = Result<T, SqError>;

/// Error raised by any S-QUERY subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// A parsed query could not be planned (unknown table/column, bad types).
    Plan(String),
    /// Query execution failed (type error at runtime, arithmetic, ...).
    Exec(String),
    /// Storage-layer failure (unknown map, partition offline, lock poisoned).
    Storage(String),
    /// A requested entity (snapshot id, key, operator) does not exist.
    NotFound(String),
    /// Binary codec failure (truncated buffer, unknown tag).
    Codec(String),
    /// Invalid configuration (zero partitions, bad parallelism, ...).
    Config(String),
    /// Stream-runtime failure (job panicked, channel closed unexpectedly).
    Runtime(String),
    /// A worker thread died (panicked) and the job needs recovery before it
    /// can make progress again.
    WorkerDied(String),
}

impl SqError {
    /// The failure-domain label used in Display output.
    pub fn kind(&self) -> &'static str {
        match self {
            SqError::Parse(_) => "parse",
            SqError::Plan(_) => "plan",
            SqError::Exec(_) => "exec",
            SqError::Storage(_) => "storage",
            SqError::NotFound(_) => "not-found",
            SqError::Codec(_) => "codec",
            SqError::Config(_) => "config",
            SqError::Runtime(_) => "runtime",
            SqError::WorkerDied(_) => "worker-died",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            SqError::Parse(m)
            | SqError::Plan(m)
            | SqError::Exec(m)
            | SqError::Storage(m)
            | SqError::NotFound(m)
            | SqError::Codec(m)
            | SqError::Config(m)
            | SqError::Runtime(m)
            | SqError::WorkerDied(m) => m,
        }
    }
}

impl fmt::Display for SqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for SqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = SqError::Parse("unexpected token ')'".into());
        assert_eq!(e.to_string(), "parse error: unexpected token ')'");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token ')'");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SqError::NotFound("snapshot 9".into()),
            SqError::NotFound("snapshot 9".into())
        );
        assert_ne!(
            SqError::NotFound("snapshot 9".into()),
            SqError::Storage("snapshot 9".into())
        );
    }

    #[test]
    fn kind_covers_every_variant() {
        let variants = [
            SqError::Parse(String::new()),
            SqError::Plan(String::new()),
            SqError::Exec(String::new()),
            SqError::Storage(String::new()),
            SqError::NotFound(String::new()),
            SqError::Codec(String::new()),
            SqError::Config(String::new()),
            SqError::Runtime(String::new()),
            SqError::WorkerDied(String::new()),
        ];
        let kinds: Vec<_> = variants.iter().map(|v| v.kind()).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "kinds must be distinct");
    }
}
