//! Engine telemetry: a unified metrics registry and structured event log.
//!
//! S-QUERY's thesis is that a stream processor's internal *state* should not
//! be a black box; this module applies the same standard to the engine's own
//! *internals*. Every layer (storage grid, stream workers, checkpoint
//! coordinator, SQL engine) records into one cloneable [`MetricsRegistry`]:
//!
//! * **counters** — monotonically increasing `u64`s (records in/out, state
//!   updates, rows scanned), lock-free atomics;
//! * **gauges** — instantaneous `i64`s (live entries, snapshot bytes),
//!   lock-free atomics;
//! * **histograms** — [`SharedHistogram`]s of microsecond latencies
//!   (live-mirror writes, lock waits, query phases, 2PC phases);
//! * **events** — a bounded [`EventLog`] ring buffer of structured
//!   [`EngineEvent`]s (checkpoint phase transitions, worker lifecycle,
//!   recovery, lock contention, query start/finish) with sequence numbers
//!   and monotonic timestamps.
//!
//! The registry is the backing store for the `sys_*` SQL tables (the paper's
//! §III monitoring use-case applied to the engine itself) and for the
//! Prometheus/JSON exports used by the benchmark harness.

use crate::metrics::{Histogram, SharedHistogram};
use crate::time::Clock;
use crate::trace::SpanCollector;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Default capacity of the event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// A metric's identity: name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name, e.g. `records_in`.
    pub name: String,
    /// Label pairs, e.g. `[("operator", "maxbid")]`, kept sorted.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key, sorting the labels for a canonical identity.
    pub fn new(name: impl Into<String>, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.into(),
            labels,
        }
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Prometheus-style rendering: `name{k="v",...}` (no braces when
    /// label-free).
    pub fn render(&self) -> String {
        let name = sanitize_metric_name(&self.name);
        if self.labels.is_empty() {
            return name;
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label(v)))
            .collect();
        format!("{}{{{}}}", name, labels.join(","))
    }
}

fn sanitize_metric_name(s: &str) -> String {
    // Prometheus metric/label names match [a-zA-Z_:][a-zA-Z0-9_:]*; every
    // other character (dots, dashes, spaces, ...) maps to '_', and a
    // leading digit gets a '_' prefix.
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_label(s: &str) -> String {
    // Prometheus exposition format: label values escape backslash, double
    // quote, and newline.
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A monotonically increasing counter (lock-free).
#[derive(Clone, Default, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (lock-free, signed).
#[derive(Clone, Default, Debug)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add to the gauge (negative deltas decrement).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// What happened, for [`EngineEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Checkpoint round began (phase 1 markers injected).
    CheckpointBegin,
    /// All phase-1 acks received.
    CheckpointPhase1,
    /// Snapshot id committed at the registry (phase 2 done).
    CheckpointCommitted,
    /// Checkpoint round aborted (missing acks).
    CheckpointAborted,
    /// A worker thread started.
    WorkerStarted,
    /// A worker thread exited.
    WorkerStopped,
    /// A job was submitted.
    JobSubmitted,
    /// A job stopped.
    JobStopped,
    /// Rollback recovery restored a committed snapshot.
    Recovery,
    /// A stripe lock was contended beyond the reporting threshold.
    LockContention,
    /// A marker-alignment stall exceeded the reporting threshold.
    AlignmentStall,
    /// A SQL query started executing.
    QueryStarted,
    /// A SQL query finished.
    QueryFinished,
    /// A planned fault fired at an injection point.
    FaultInjected,
    /// A worker thread panicked (the unwind was caught).
    WorkerPanicked,
    /// An aborted checkpoint round is being retried with backoff.
    CheckpointRetried,
    /// The supervisor is restarting the job (crash + rollback recovery).
    SupervisorRestart,
    /// The supervisor exhausted its restart budget and gave up.
    SupervisorGaveUp,
    /// Cold-start recovery rebuilt snapshot state from the WAL.
    WalRecovered,
    /// Recovery discarded a torn (unsealed) WAL tail.
    WalTornTail,
    /// A source emitted a record with `src_ts` below an earlier record's,
    /// so its watermark promise no longer holds; emission is suspended.
    WatermarkRegressed,
}

impl EventKind {
    /// Stable string form (the `kind` column of `sys_events`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::CheckpointBegin => "checkpoint_begin",
            EventKind::CheckpointPhase1 => "checkpoint_phase1",
            EventKind::CheckpointCommitted => "checkpoint_committed",
            EventKind::CheckpointAborted => "checkpoint_aborted",
            EventKind::WorkerStarted => "worker_started",
            EventKind::WorkerStopped => "worker_stopped",
            EventKind::JobSubmitted => "job_submitted",
            EventKind::JobStopped => "job_stopped",
            EventKind::Recovery => "recovery",
            EventKind::LockContention => "lock_contention",
            EventKind::AlignmentStall => "alignment_stall",
            EventKind::QueryStarted => "query_started",
            EventKind::QueryFinished => "query_finished",
            EventKind::FaultInjected => "fault_injected",
            EventKind::WorkerPanicked => "worker_panicked",
            EventKind::CheckpointRetried => "checkpoint_retried",
            EventKind::SupervisorRestart => "supervisor_restart",
            EventKind::SupervisorGaveUp => "supervisor_gave_up",
            EventKind::WalRecovered => "wal_recovered",
            EventKind::WalTornTail => "wal_torn_tail",
            EventKind::WatermarkRegressed => "watermark_regressed",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured engine event.
#[derive(Debug, Clone)]
pub struct EngineEvent {
    /// Monotonic sequence number (gap-free across the whole log's life;
    /// reveals ring-buffer overwrites).
    pub seq: u64,
    /// Monotonic timestamp (µs on the registry's clock).
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// The operator / store / query source involved, when applicable.
    pub operator: Option<String>,
    /// The snapshot id involved, when applicable.
    pub ssid: Option<u64>,
    /// Duration of the phase the event closes, when applicable.
    pub duration_us: Option<u64>,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded ring buffer of [`EngineEvent`]s.
///
/// Recording is O(1); when full, the oldest event is overwritten (sequence
/// numbers keep counting, so consumers can detect the gap).
#[derive(Clone)]
pub struct EventLog {
    ring: Arc<Mutex<VecDeque<EngineEvent>>>,
    capacity: usize,
    seq: Arc<AtomicU64>,
    clock: Clock,
}

impl EventLog {
    /// An event log holding at most `capacity` events.
    pub fn new(capacity: usize, clock: Clock) -> EventLog {
        EventLog {
            ring: Arc::new(Mutex::new(VecDeque::with_capacity(capacity.max(1)))),
            capacity: capacity.max(1),
            seq: Arc::new(AtomicU64::new(0)),
            clock,
        }
    }

    /// Append an event; returns its sequence number.
    pub fn record(
        &self,
        kind: EventKind,
        operator: Option<&str>,
        ssid: Option<u64>,
        duration_us: Option<u64>,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = EngineEvent {
            seq,
            at_us: self.clock.now_micros(),
            kind,
            operator: operator.map(str::to_string),
            ssid,
            duration_us,
            detail: detail.into(),
        };
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::EventRing);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
        seq
    }

    /// The retained events, oldest first (sequence-ordered).
    pub fn snapshot(&self) -> Vec<EngineEvent> {
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::EventRing);
        self.ring.lock().iter().cloned().collect()
    }

    /// Total events ever recorded (≥ retained count).
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

struct RegistryInner {
    counters: RwLock<BTreeMap<MetricKey, Counter>>,
    gauges: RwLock<BTreeMap<MetricKey, Gauge>>,
    histograms: RwLock<BTreeMap<MetricKey, SharedHistogram>>,
    events: EventLog,
    spans: SpanCollector,
    clock: Clock,
}

/// The unified, cloneable telemetry registry.
///
/// Clones share state; handing a clone to every layer is how the engine
/// builds one coherent picture of itself. Metric handles ([`Counter`],
/// [`Gauge`], [`SharedHistogram`]) are cheap to clone and record without
/// touching the registry's maps again, so hot paths pay one atomic (or one
/// short mutex for histograms) per observation.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A registry on a wall clock with the default event capacity.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_clock(Clock::wall())
    }

    /// A registry stamping events with `clock` (manual clocks make event
    /// timestamps deterministic in tests).
    pub fn with_clock(clock: Clock) -> MetricsRegistry {
        MetricsRegistry::with_capacity(DEFAULT_EVENT_CAPACITY, clock)
    }

    /// A registry with an explicit event-ring capacity.
    pub fn with_capacity(event_capacity: usize, clock: Clock) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                events: EventLog::new(event_capacity, clock.clone()),
                spans: SpanCollector::new(clock.clone()),
                clock,
            }),
        }
    }

    /// The span collector (disabled until
    /// [`SpanCollector::set_enabled`](crate::trace::SpanCollector::set_enabled)).
    pub fn spans(&self) -> &SpanCollector {
        &self.inner.spans
    }

    /// The registry's clock.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::Telemetry);
        if let Some(c) = self.inner.counters.read().get(&key) {
            return c.clone();
        }
        self.inner.counters.write().entry(key).or_default().clone()
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::Telemetry);
        if let Some(g) = self.inner.gauges.read().get(&key) {
            return g.clone();
        }
        self.inner.gauges.write().entry(key).or_default().clone()
    }

    /// Get or create the histogram `name{labels}` (values in µs by
    /// convention).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> SharedHistogram {
        let key = MetricKey::new(name, labels);
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::Telemetry);
        if let Some(h) = self.inner.histograms.read().get(&key) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .entry(key)
            .or_default()
            .clone()
    }

    /// Append a structured event; returns its sequence number.
    pub fn event(
        &self,
        kind: EventKind,
        operator: Option<&str>,
        ssid: Option<u64>,
        duration_us: Option<u64>,
        detail: impl Into<String>,
    ) -> u64 {
        self.inner
            .events
            .record(kind, operator, ssid, duration_us, detail)
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.inner.events
    }

    /// The current value of counter `name{labels}` without creating it.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.inner.counters.read().get(&key).map(Counter::get)
    }

    /// The current value of gauge `name{labels}` without creating it.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let key = MetricKey::new(name, labels);
        self.inner.gauges.read().get(&key).map(Gauge::get)
    }

    /// Snapshot of every counter, sorted by key.
    pub fn counters(&self) -> Vec<(MetricKey, u64)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Snapshot of every gauge, sorted by key.
    pub fn gauges(&self) -> Vec<(MetricKey, i64)> {
        self.inner
            .gauges
            .read()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// Snapshot of every histogram, sorted by key.
    pub fn histograms(&self) -> Vec<(MetricKey, Histogram)> {
        self.inner
            .histograms
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// Prometheus text exposition: one `name{labels} value` line per sample.
    ///
    /// Histograms export as summaries: `<name>_count`, `<name>_sum`, and
    /// `quantile`-labelled percentile lines, all in the same line grammar.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.counters() {
            out.push_str(&format!("{} {}\n", key.render(), value));
        }
        for (key, value) in self.gauges() {
            out.push_str(&format!("{} {}\n", key.render(), value));
        }
        for (key, hist) in self.histograms() {
            let base = MetricKey {
                name: format!("{}_count", key.name),
                labels: key.labels.clone(),
            };
            out.push_str(&format!("{} {}\n", base.render(), hist.count()));
            let sum = MetricKey {
                name: format!("{}_sum", key.name),
                labels: key.labels.clone(),
            };
            out.push_str(&format!(
                "{} {}\n",
                sum.render(),
                (hist.mean() * hist.count() as f64).round() as u64
            ));
            for (q, label) in [
                (0.5, "0.5"),
                (0.9, "0.9"),
                (0.95, "0.95"),
                (0.99, "0.99"),
                (0.999, "0.999"),
            ] {
                let mut labels = key.labels.clone();
                labels.push(("quantile".to_string(), label.to_string()));
                labels.sort();
                let qkey = MetricKey {
                    name: key.name.clone(),
                    labels,
                };
                out.push_str(&format!("{} {}\n", qkey.render(), hist.percentile(q)));
            }
        }
        out
    }

    /// JSON dump of all metrics and retained events (hand-rendered; the
    /// build vendors no serialization dependency).
    pub fn render_json(&self) -> String {
        fn jstr(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn jlabels(key: &MetricKey) -> String {
            let pairs: Vec<String> = key
                .labels
                .iter()
                .map(|(k, v)| format!("{}:{}", jstr(k), jstr(v)))
                .collect();
            format!("{{{}}}", pairs.join(","))
        }
        let mut parts: Vec<String> = Vec::new();
        let counters: Vec<String> = self
            .counters()
            .into_iter()
            .map(|(k, v)| {
                format!(
                    "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                    jstr(&k.name),
                    jlabels(&k),
                    v
                )
            })
            .collect();
        parts.push(format!("\"counters\":[{}]", counters.join(",")));
        let gauges: Vec<String> = self
            .gauges()
            .into_iter()
            .map(|(k, v)| {
                format!(
                    "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                    jstr(&k.name),
                    jlabels(&k),
                    v
                )
            })
            .collect();
        parts.push(format!("\"gauges\":[{}]", gauges.join(",")));
        let hists: Vec<String> = self
            .histograms()
            .into_iter()
            .map(|(k, h)| {
                format!(
                    "{{\"name\":{},\"labels\":{},\"count\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p90_us\":{},\"p95_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
                    jstr(&k.name),
                    jlabels(&k),
                    h.count(),
                    h.mean(),
                    h.percentile(0.5),
                    h.percentile(0.9),
                    h.percentile(0.95),
                    h.percentile(0.99),
                    h.percentile(0.999),
                    h.max()
                )
            })
            .collect();
        parts.push(format!("\"histograms\":[{}]", hists.join(",")));
        let events: Vec<String> = self
            .events()
            .snapshot()
            .into_iter()
            .map(|e| {
                format!(
                    "{{\"seq\":{},\"at_us\":{},\"kind\":{},\"operator\":{},\"ssid\":{},\"duration_us\":{},\"detail\":{}}}",
                    e.seq,
                    e.at_us,
                    jstr(e.kind.as_str()),
                    e.operator.as_deref().map(jstr).unwrap_or_else(|| "null".into()),
                    e.ssid.map(|s| s.to_string()).unwrap_or_else(|| "null".into()),
                    e.duration_us
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "null".into()),
                    jstr(&e.detail)
                )
            })
            .collect();
        parts.push(format!("\"events\":[{}]", events.join(",")));
        format!("{{{}}}", parts.join(","))
    }
}

/// Measure the wall-clock duration of `f` in microseconds and record it.
pub fn time_us<T>(hist: &SharedHistogram, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    hist.record(t0.elapsed().as_micros() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_are_shared_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("records_in", &[("operator", "maxbid")]);
        let b = reg.clone().counter("records_in", &[("operator", "maxbid")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = reg.counter("records_in", &[("operator", "average")]);
        assert_eq!(other.get(), 0, "different labels, different counter");
    }

    #[test]
    fn parallel_counter_increments_are_exact() {
        let reg = MetricsRegistry::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                thread::spawn(move || {
                    let c = reg.counter("hits", &[]);
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hits", &[]).get(), 80_000);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("live_entries", &[("table", "op")]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn event_ring_wraps_and_keeps_sequence_order() {
        let log = EventLog::new(4, Clock::manual());
        for i in 0..10u64 {
            log.record(EventKind::WorkerStarted, None, Some(i), None, "");
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 4, "ring keeps only the last 4");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted, order kept");
        assert_eq!(log.total_recorded(), 10);
    }

    #[test]
    fn event_timestamps_follow_the_clock() {
        let clock = Clock::manual();
        let reg = MetricsRegistry::with_clock(clock.clone());
        reg.event(EventKind::QueryStarted, Some("q"), None, None, "");
        clock.advance(500);
        reg.event(EventKind::QueryFinished, Some("q"), None, Some(500), "");
        let events = reg.events().snapshot();
        assert_eq!(events[0].at_us, 0);
        assert_eq!(events[1].at_us, 500);
        assert_eq!(events[1].duration_us, Some(500));
    }

    #[test]
    fn prometheus_lines_parse_as_name_value() {
        let reg = MetricsRegistry::new();
        reg.counter("records_in", &[("operator", "maxbid")]).add(7);
        reg.gauge("live_bytes", &[]).set(1024);
        let h = reg.histogram("query_exec_us", &[("source", "sql")]);
        h.record(100);
        h.record(200);
        let text = reg.render_prometheus();
        assert!(!text.is_empty());
        for line in text.lines() {
            // Grammar: `name[{k="v",...}] value`.
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(value.parse::<f64>().is_ok(), "numeric value: {line}");
            let name = series.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "metric name: {line}"
            );
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'), "{line}");
                }
            }
        }
        assert!(text.contains("records_in{operator=\"maxbid\"} 7"));
        assert!(text.contains("query_exec_us_count{source=\"sql\"} 2"));
    }

    #[test]
    fn prometheus_names_and_labels_are_escaped() {
        let reg = MetricsRegistry::new();
        // Dots/dashes/spaces in metric and label names sanitize to '_'; a
        // leading digit gets a '_' prefix; label values escape backslash,
        // quote, and newline.
        reg.counter("api.request-rate", &[("shard id", "a\"b\\c\nd")])
            .inc();
        reg.gauge("2xx_responses", &[]).set(3);
        let text = reg.render_prometheus();
        assert!(
            text.contains("api_request_rate{shard_id=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
        assert!(text.contains("_2xx_responses 3"), "{text}");
        for line in text.lines() {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                !name.starts_with(|c: char| c.is_ascii_digit()),
                "name must not start with a digit: {line}"
            );
            assert!(!line.contains('\n'), "one sample per line: {line}");
        }
    }

    #[test]
    fn json_dump_has_all_sections() {
        let reg = MetricsRegistry::with_clock(Clock::manual());
        reg.counter("c", &[]).inc();
        reg.gauge("g", &[]).set(-5);
        reg.histogram("h", &[]).record(10);
        reg.event(
            EventKind::Recovery,
            Some("op\"x"),
            Some(3),
            None,
            "line1\nline2",
        );
        let json = reg.render_json();
        for section in [
            "\"counters\":[",
            "\"gauges\":[",
            "\"histograms\":[",
            "\"events\":[",
        ] {
            assert!(json.contains(section), "{json}");
        }
        assert!(json.contains("\\n"), "newline escaped: {json}");
        assert!(json.contains("op\\\"x"), "quote escaped: {json}");
    }

    #[test]
    fn exports_carry_p50_p95_p99_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("query_exec_us", &[]);
        for v in 1..=100u64 {
            h.record(v * 10);
        }
        let prom = reg.render_prometheus();
        for q in ["0.5", "0.9", "0.95", "0.99", "0.999"] {
            assert!(
                prom.contains(&format!("query_exec_us{{quantile=\"{q}\"}}")),
                "missing quantile {q}:\n{prom}"
            );
        }
        let json = reg.render_json();
        for field in ["\"p50_us\":", "\"p90_us\":", "\"p95_us\":", "\"p99_us\":"] {
            assert!(json.contains(field), "missing {field}: {json}");
        }
    }

    #[test]
    fn prometheus_text_format_is_pinned_verbatim() {
        // Scrapers parse this grammar byte-for-byte; a drift in label order,
        // quantile set, or line layout is a breaking change, so the full
        // exposition is pinned. Values 1..=4 sit in the histogram's exact
        // buckets, making every quantile deterministic.
        let reg = MetricsRegistry::new();
        reg.counter("records_in", &[("operator", "maxbid")]).add(7);
        reg.gauge("watermark_us", &[("instance", "0"), ("operator", "maxbid")])
            .set(42);
        let h = reg.histogram("watermark_lag_us", &[("operator", "maxbid")]);
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(
            reg.render_prometheus(),
            "records_in{operator=\"maxbid\"} 7\n\
             watermark_us{instance=\"0\",operator=\"maxbid\"} 42\n\
             watermark_lag_us_count{operator=\"maxbid\"} 4\n\
             watermark_lag_us_sum{operator=\"maxbid\"} 10\n\
             watermark_lag_us{operator=\"maxbid\",quantile=\"0.5\"} 2\n\
             watermark_lag_us{operator=\"maxbid\",quantile=\"0.9\"} 4\n\
             watermark_lag_us{operator=\"maxbid\",quantile=\"0.95\"} 4\n\
             watermark_lag_us{operator=\"maxbid\",quantile=\"0.99\"} 4\n\
             watermark_lag_us{operator=\"maxbid\",quantile=\"0.999\"} 4\n"
        );
    }

    #[test]
    fn registry_exposes_a_shared_span_collector() {
        let reg = MetricsRegistry::with_clock(Clock::manual());
        assert!(!reg.spans().is_enabled(), "disabled by default");
        reg.spans().set_enabled(true);
        drop(reg.clone().spans().start("query"));
        assert_eq!(reg.spans().snapshot().len(), 1, "clones share spans");
    }

    #[test]
    fn time_us_records_into_histogram() {
        let h = SharedHistogram::new();
        let out = time_us(&h, || 42);
        assert_eq!(out, 42);
        assert_eq!(h.snapshot().count(), 1);
    }
}
