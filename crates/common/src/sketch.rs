//! Key-distribution sketches for the state-statistics subsystem.
//!
//! Two small, dependency-free streaming sketches drive the stats catalog
//! (`sys_state_stats` / `sys_hot_keys`):
//!
//! * [`Hll`] — an HLL-style distinct-count estimator over key hashes. With
//!   the default 2^12 registers its standard error is ≈1.6%, comfortably
//!   inside the 5% the tests demand at 100k keys.
//! * [`SpaceSaving`] — the Metwally et al. top-k heavy-hitter summary: at
//!   most `capacity` monitored keys, evicting the minimum counter. Any key
//!   whose true frequency exceeds `total / capacity` is guaranteed to be
//!   monitored, so a 10%-frequency hot key is always found with the
//!   default capacity.
//!
//! Both consume hashes from [`key_hash`], the engine's stable FNV-1a key
//! hash passed through a splitmix64 finalizer — FNV alone is too regular on
//! sequential integer keys for register-indexed sketches.
//!
//! The sketches themselves are plain (non-thread-safe) structs; the stats
//! catalog serializes access behind its `SketchState` lock class.

use crate::partition::hash_key;
use crate::value::Value;

/// Register-count exponent: 2^12 = 4096 registers (≈1.6% standard error).
const HLL_PRECISION: u32 = 12;

/// Default number of monitored heavy-hitter keys.
pub const DEFAULT_TOP_K: usize = 32;

/// A stable, well-mixed 64-bit hash of a key value.
///
/// FNV-1a (shared with the partitioner, stable across runs) followed by the
/// splitmix64 finalizer for avalanche.
pub fn key_hash(key: &Value) -> u64 {
    let mut z = hash_key(key).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An HLL-style distinct-count estimator.
#[derive(Clone)]
pub struct Hll {
    registers: Vec<u8>,
}

impl Default for Hll {
    fn default() -> Self {
        Hll::new()
    }
}

impl Hll {
    /// An empty estimator with 2^12 registers.
    pub fn new() -> Hll {
        Hll {
            registers: vec![0u8; 1 << HLL_PRECISION],
        }
    }

    /// Observe one key.
    pub fn offer(&mut self, key: &Value) {
        self.offer_hash(key_hash(key));
    }

    /// Observe one pre-computed [`key_hash`].
    pub fn offer_hash(&mut self, hash: u64) {
        let index = (hash >> (64 - HLL_PRECISION)) as usize;
        // Rank of the first set bit in the remaining 52 bits, 1-based.
        let remainder = hash << HLL_PRECISION;
        let rank = (remainder.leading_zeros() as u8).min(64 - HLL_PRECISION as u8) + 1;
        if rank > self.registers[index] {
            self.registers[index] = rank;
        }
    }

    /// Estimated number of distinct keys observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        // Bias-correction constant for m ≥ 128.
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / f64::from(1u32 << u32::from(r.min(63)));
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting over empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.registers.fill(0);
    }
}

/// One monitored heavy hitter.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitter {
    /// The monitored key.
    pub key: Value,
    /// Estimated occurrence count (an overestimate by at most `error`).
    pub count: u64,
    /// Maximum overestimation inherited from the evicted counter.
    pub error: u64,
}

/// The SpaceSaving top-k heavy-hitter summary.
#[derive(Clone)]
pub struct SpaceSaving {
    capacity: usize,
    counters: Vec<HeavyHitter>,
    total: u64,
}

impl SpaceSaving {
    /// A summary monitoring at most `capacity` keys (≥ 1).
    pub fn new(capacity: usize) -> SpaceSaving {
        SpaceSaving {
            capacity: capacity.max(1),
            counters: Vec::new(),
            total: 0,
        }
    }

    /// Observe one occurrence of `key`.
    pub fn offer(&mut self, key: &Value) {
        self.total += 1;
        if let Some(c) = self.counters.iter_mut().find(|c| &c.key == key) {
            c.count += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.push(HeavyHitter {
                key: key.clone(),
                count: 1,
                error: 0,
            });
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // both estimate floor and error bound.
        let min = self
            .counters
            .iter_mut()
            .min_by_key(|c| c.count)
            .expect("capacity >= 1");
        min.error = min.count;
        min.count += 1;
        min.key = key.clone();
    }

    /// Total occurrences offered so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The monitored keys, highest estimated count first, at most `n`.
    pub fn top(&self, n: usize) -> Vec<HeavyHitter> {
        let mut out = self.counters.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        out.truncate(n);
        out
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.total = 0;
    }
}

/// Skew coefficient of a partition-size distribution: the coefficient of
/// variation (population standard deviation over mean). 0 means perfectly
/// uniform; a single loaded partition among empty ones scores high.
pub fn skew_coefficient(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hll_within_five_percent_at_100k_keys() {
        let mut hll = Hll::new();
        let n = 100_000i64;
        for i in 0..n {
            hll.offer(&Value::Int(i));
        }
        let est = hll.estimate();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est:.0} off by {:.2}%", err * 100.0);
    }

    #[test]
    fn hll_duplicates_do_not_inflate() {
        let mut hll = Hll::new();
        for _ in 0..10 {
            for i in 0..1000i64 {
                hll.offer(&Value::Int(i));
            }
        }
        let est = hll.estimate();
        assert!(
            (est - 1000.0).abs() / 1000.0 < 0.1,
            "repeated keys stayed ~1000: {est:.0}"
        );
    }

    #[test]
    fn hll_small_range_is_near_exact() {
        let mut hll = Hll::new();
        assert_eq!(hll.estimate(), 0.0);
        for i in 0..10i64 {
            hll.offer(&Value::Int(i));
        }
        let est = hll.estimate();
        assert!((est - 10.0).abs() < 2.0, "linear counting regime: {est}");
        hll.clear();
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn space_saving_finds_planted_hot_key() {
        // 10% of a 50k stream is one hot key; the rest are 45k distinct
        // cold keys — far beyond the sketch capacity.
        let mut ss = SpaceSaving::new(DEFAULT_TOP_K);
        let hot = Value::str("hot");
        let mut cold = 0i64;
        for i in 0..50_000u64 {
            if i % 10 == 0 {
                ss.offer(&hot);
            } else {
                ss.offer(&Value::Int(cold));
                cold += 1;
            }
        }
        assert_eq!(ss.total(), 50_000);
        let top = ss.top(1);
        assert_eq!(top[0].key, hot, "hot key ranked first: {top:?}");
        // The estimate is an overestimate bounded by the recorded error.
        assert!(top[0].count >= 5_000);
        assert!(top[0].count - top[0].error <= 5_000);
    }

    #[test]
    fn space_saving_exact_below_capacity() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..3 {
            ss.offer(&Value::Int(1));
        }
        ss.offer(&Value::Int(2));
        let top = ss.top(10);
        assert_eq!(top.len(), 2);
        assert_eq!(
            top[0],
            HeavyHitter {
                key: Value::Int(1),
                count: 3,
                error: 0
            }
        );
        assert_eq!(
            top[1],
            HeavyHitter {
                key: Value::Int(2),
                count: 1,
                error: 0
            }
        );
        ss.clear();
        assert_eq!(ss.total(), 0);
        assert!(ss.top(1).is_empty());
    }

    #[test]
    fn skew_coefficient_behaviour() {
        assert_eq!(skew_coefficient(&[]), 0.0);
        assert_eq!(skew_coefficient(&[0, 0, 0]), 0.0);
        assert_eq!(skew_coefficient(&[5, 5, 5, 5]), 0.0);
        let uniform = skew_coefficient(&[10, 11, 9, 10]);
        let skewed = skew_coefficient(&[40, 0, 0, 0]);
        assert!(skewed > uniform, "{skewed} > {uniform}");
        assert!(
            (skewed - 3.0f64.sqrt()).abs() < 1e-9,
            "CV of one-hot: {skewed}"
        );
    }
}
