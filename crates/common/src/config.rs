//! Cluster-level configuration shared by storage and streaming.

use crate::error::{SqError, SqResult};
use crate::partition::DEFAULT_PARTITION_COUNT;
use std::time::Duration;

/// Topology and placement of the simulated cluster.
///
/// The paper runs on 7-node AWS clusters (Table III). The reproduction hosts
/// all "nodes" inside one process; a node is a placement domain that owns a
/// contiguous slice of grid partitions and hosts the operator instances whose
/// key ranges map to those partitions (the co-partitioning contract of §V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of simulated nodes.
    pub nodes: u32,
    /// Grid partition count (default 271, like Hazelcast IMDG).
    pub partitions: u32,
    /// Synchronous backup replicas per partition (0 = no replication).
    pub backup_count: u32,
    /// Network model for cross-node traffic.
    pub network: NetworkConfig,
}

impl ClusterConfig {
    /// A single-node cluster with defaults — the standard test setup.
    pub fn single_node() -> ClusterConfig {
        ClusterConfig {
            nodes: 1,
            partitions: DEFAULT_PARTITION_COUNT,
            backup_count: 0,
            network: NetworkConfig::instant(),
        }
    }

    /// An `n`-node cluster with one backup replica and a modelled network,
    /// approximating the paper's AWS setup.
    pub fn simulated(n: u32) -> ClusterConfig {
        ClusterConfig {
            nodes: n,
            partitions: DEFAULT_PARTITION_COUNT,
            backup_count: if n > 1 { 1 } else { 0 },
            network: NetworkConfig::lan(),
        }
    }

    /// Validate invariants; call before building a grid or runtime from it.
    pub fn validate(&self) -> SqResult<()> {
        if self.nodes == 0 {
            return Err(SqError::Config("cluster needs at least one node".into()));
        }
        if self.partitions == 0 {
            return Err(SqError::Config("partition count must be positive".into()));
        }
        if self.partitions < self.nodes {
            return Err(SqError::Config(format!(
                "{} partitions cannot cover {} nodes",
                self.partitions, self.nodes
            )));
        }
        if self.backup_count >= self.nodes && self.backup_count > 0 {
            return Err(SqError::Config(format!(
                "backup_count {} needs more than {} nodes",
                self.backup_count, self.nodes
            )));
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::single_node()
    }
}

/// Default smallest row-chunk a parallel query worker will claim when a
/// table scan has no partition structure to slice on.
pub const DEFAULT_MIN_MORSEL_ROWS: usize = 256;

/// Degree of parallelism for query execution.
///
/// `degree = 1` is today's sequential executor, bit-for-bit. Higher degrees
/// run partition-parallel scans, join builds, and partial aggregation on
/// scoped worker threads; results are merged deterministically so every
/// degree returns row-for-row identical output (see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads per query (1 = sequential execution).
    pub degree: usize,
    /// Smallest row chunk claimed per worker for unsliceable scans.
    pub min_morsel_rows: usize,
}

impl Parallelism {
    /// Sequential execution — the default, preserving existing behavior.
    pub fn sequential() -> Parallelism {
        Parallelism {
            degree: 1,
            min_morsel_rows: DEFAULT_MIN_MORSEL_ROWS,
        }
    }

    /// A fixed degree (clamped to at least 1).
    pub fn of(degree: usize) -> Parallelism {
        Parallelism {
            degree: degree.max(1),
            min_morsel_rows: DEFAULT_MIN_MORSEL_ROWS,
        }
    }

    /// One worker per available core.
    pub fn auto() -> Parallelism {
        Parallelism::of(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Whether this configuration actually spawns workers.
    pub fn is_parallel(&self) -> bool {
        self.degree > 1
    }

    /// Validate invariants.
    pub fn validate(&self) -> SqResult<()> {
        if self.degree == 0 {
            return Err(SqError::Config(
                "parallelism degree must be at least 1".into(),
            ));
        }
        if self.min_morsel_rows == 0 {
            return Err(SqError::Config("min morsel rows must be positive".into()));
        }
        Ok(())
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

/// Cross-node network model.
///
/// The paper's cluster has a 10 Gbit/s network (Table III); remote operations
/// in the reproduction can charge a latency plus a bandwidth-proportional
/// delay so that co-partitioning (local writes) retains its advantage over a
/// naive remote-write design. Tests default to an instant network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// One-way latency charged per remote operation, in microseconds.
    pub latency_us: u64,
    /// Modelled bandwidth in bytes/second (0 = infinite).
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkConfig {
    /// No delays at all (unit tests, determinism).
    pub fn instant() -> NetworkConfig {
        NetworkConfig {
            latency_us: 0,
            bandwidth_bytes_per_sec: 0,
        }
    }

    /// A LAN resembling the paper's testbed: 50µs latency, 10 Gbit/s.
    pub fn lan() -> NetworkConfig {
        NetworkConfig {
            latency_us: 50,
            bandwidth_bytes_per_sec: 10_000_000_000 / 8,
        }
    }

    /// The total modelled delay for transferring `bytes` remotely.
    pub fn transfer_delay(&self, bytes: usize) -> Duration {
        let transfer = (bytes as u64)
            .saturating_mul(1_000_000)
            .checked_div(self.bandwidth_bytes_per_sec)
            .unwrap_or(0);
        Duration::from_micros(self.latency_us + transfer)
    }

    /// Whether this network charges any delay.
    pub fn is_instant(&self) -> bool {
        self.latency_us == 0 && self.bandwidth_bytes_per_sec == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_validates() {
        assert!(ClusterConfig::single_node().validate().is_ok());
    }

    #[test]
    fn simulated_cluster_validates() {
        let c = ClusterConfig::simulated(7);
        assert!(c.validate().is_ok());
        assert_eq!(c.nodes, 7);
        assert_eq!(c.backup_count, 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = ClusterConfig::single_node();
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::single_node();
        c.partitions = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::simulated(3);
        c.partitions = 2;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::simulated(2);
        c.backup_count = 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn parallelism_defaults_sequential_and_validates() {
        let p = Parallelism::default();
        assert_eq!(p.degree, 1);
        assert!(!p.is_parallel());
        p.validate().unwrap();
        assert_eq!(Parallelism::of(0).degree, 1, "clamped");
        assert!(Parallelism::of(4).is_parallel());
        assert!(Parallelism::auto().degree >= 1);
        let bad = Parallelism {
            degree: 0,
            min_morsel_rows: 1,
        };
        assert!(bad.validate().is_err());
        let bad = Parallelism {
            degree: 2,
            min_morsel_rows: 0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn instant_network_has_zero_delay() {
        let n = NetworkConfig::instant();
        assert!(n.is_instant());
        assert_eq!(n.transfer_delay(1_000_000), Duration::ZERO);
    }

    #[test]
    fn lan_delay_scales_with_bytes() {
        let n = NetworkConfig::lan();
        assert!(!n.is_instant());
        let small = n.transfer_delay(100);
        let large = n.transfer_delay(10_000_000);
        assert!(large > small);
        // 10 MB over 10 Gbit/s = 8 ms transfer + 50 µs latency.
        assert_eq!(large, Duration::from_micros(50 + 8_000));
    }
}
