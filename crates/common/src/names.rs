//! Central registry of every telemetry identifier the engine emits.
//!
//! `squery-lint` (check SQ003) rejects any metric, span, or event name used in
//! non-test code that is not listed here, so `sys_metrics` / `sys_spans` /
//! `sys_events` rows and the DESIGN.md documentation cannot silently drift
//! from what the code actually records. Adding a new instrument is a
//! two-line change: register the name below, then use it at the call site.
//!
//! All three tables are kept sorted and duplicate-free (enforced by unit
//! tests) so the lint can binary-search them and diffs stay reviewable.

/// Counter, gauge, and histogram names accepted by
/// `MetricsRegistry::{counter,gauge,histogram}` and their `_value` readers.
pub const METRIC_NAMES: &[&str] = &[
    "checkpoint_phase1_us",
    "checkpoint_retries_total",
    "checkpoint_total_us",
    "e2e_lag_us",
    "map_bytes",
    "map_entries",
    "map_lock_wait_us",
    "map_read_us",
    "map_reads_total",
    "map_removes_total",
    "map_write_us",
    "map_writes_total",
    "operator_align_stall_us",
    "operator_records_in_total",
    "operator_records_out_total",
    "queries_total",
    "query_errors_total",
    "query_exec_us",
    "query_parse_us",
    "query_plan_us",
    "query_rows_returned_total",
    "query_rows_scanned_total",
    "recovery_duration_us",
    "snapshot_read_us",
    "snapshot_reads_total",
    "snapshot_scan_us",
    "snapshot_scans_total",
    "snapshot_staleness_us",
    "snapshot_write_us",
    "snapshot_writes_total",
    "sql_parallel_workers",
    "sql_worker_scan_us",
    "state_live_mirror_us",
    "state_snapshot_us",
    "state_updates_total",
    "stats_distinct_keys",
    "stats_hot_key_count",
    "stats_remove_rate_milli",
    "stats_sample_us",
    "stats_samples_total",
    "stats_skew_milli",
    "stats_write_rate_milli",
    "supervisor_restarts_total",
    "wal_appends_total",
    "wal_bytes_written_total",
    "wal_compactions_total",
    "wal_fsyncs_total",
    "wal_recover_us",
    "wal_seals_total",
    "wal_torn_truncations_total",
    "watermark_lag_us",
    "watermark_us",
    "watermark_violations_total",
    "worker_panics_total",
];

/// Span kinds accepted by `SpanCollector::{start,forced,child}` and the
/// streaming layer's `span_under_round` / SQL executor's `start_node`.
pub const SPAN_KINDS: &[&str] = &[
    "aggregate",
    "batch",
    "checkpoint_abort",
    "checkpoint_phase1",
    "checkpoint_phase2",
    "checkpoint_retry",
    "checkpoint_round",
    "filter",
    "join",
    "join_build",
    "marker_align",
    "mirror_write",
    "query",
    "recovery",
    "scan",
    "slice",
    "snapshot_write",
    "sort",
    "stats_sample",
    "supervisor_restart",
    "wal_compact",
    "wal_recover",
    "wal_seal",
];

/// Event kinds surfaced through `sys_events`; must stay a superset of
/// `EventKind::as_str` (enforced by a unit test).
pub const EVENT_KINDS: &[&str] = &[
    "alignment_stall",
    "checkpoint_aborted",
    "checkpoint_begin",
    "checkpoint_committed",
    "checkpoint_phase1",
    "checkpoint_retried",
    "fault_injected",
    "job_stopped",
    "job_submitted",
    "lock_contention",
    "query_finished",
    "query_started",
    "recovery",
    "supervisor_gave_up",
    "supervisor_restart",
    "wal_recovered",
    "wal_torn_tail",
    "watermark_regressed",
    "worker_panicked",
    "worker_started",
    "worker_stopped",
];

// ---------------------------------------------------------------------------
// Clock-domain registry (squery-lint SQ006)
// ---------------------------------------------------------------------------
//
// The engine stamps time in two incompatible domains (see `time.rs`):
// *Instant-domain* micros are process-relative (`Clock::now_micros`, zero at
// clock creation) and mean nothing to another process; *epoch-domain* micros
// are µs since the unix epoch (`Clock::epoch_micros`) and survive restarts.
// PR 9 shipped Instant-domain seal stamps into the epoch-domain WAL SEAL
// record, so recovered snapshots read ~0 staleness against a restarted
// clock. SQ006 taints values by the producer/field that created them and
// flags cross-domain comparisons, arithmetic, and persistence sinks.

/// Functions returning Instant-domain (process-relative) microseconds.
pub const INSTANT_DOMAIN_PRODUCERS: &[&str] = &["now_micros"];

/// Functions returning epoch-domain (unix-epoch) microseconds.
pub const EPOCH_DOMAIN_PRODUCERS: &[&str] = &["epoch_anchor_micros", "epoch_micros"];

/// The blessed Instant→epoch rebase: the argument must be Instant-domain
/// (rebasing an epoch value again double-counts the anchor) and the result
/// is epoch-domain.
pub const EPOCH_CONVERSION_FNS: &[&str] = &["to_epoch_micros"];

/// Struct fields holding Instant-domain stamps.
pub const INSTANT_DOMAIN_FIELDS: &[&str] = &[
    "at_us",
    "began_at_us",
    "end_us",
    "start_us",
    "started_at_us",
];

/// Struct fields holding epoch-domain stamps.
pub const EPOCH_DOMAIN_FIELDS: &[&str] = &["epoch_anchor_us", "sealed_at_us"];

/// Persistence sinks whose time-valued arguments must be epoch-domain:
/// WAL seal encoding and the registry freshness commit/restore paths. An
/// Instant-domain value reaching one of these is exactly the PR 9 bug.
pub const EPOCH_SINK_FNS: &[&str] = &[
    "commit_with_freshness",
    "restore_committed_with_freshness",
    "wal_seal_with",
];

// ---------------------------------------------------------------------------
// Atomics registry (squery-lint SQ007)
// ---------------------------------------------------------------------------

/// Ordering disciplines a registered atomic may declare:
///
/// * `"counter"` — statistics, quotas, monotone version counters. The value
///   is self-contained (no other memory is published through it), so
///   `Relaxed` is fine.
/// * `"flag"` — publication/poison/stop flags whose observation gates
///   control flow on another thread. Stores must be `Release` (or stronger)
///   and loads `Acquire` (or stronger); SQ007 flags any `Relaxed` access.
/// * `"gate"` — advisory enable bits (telemetry arming, lock-order tracker)
///   where a stale read only delays arming; `Relaxed` is the point (one
///   relaxed load on the hot path when disabled).
/// * `"seqlock"` — version counters paired with data and explicit fences.
///   Reserved: no current member; adding one should come with its own rule.
pub const ATOMIC_DISCIPLINES: &[&str] = &["counter", "flag", "gate", "seqlock"];

/// Every cross-thread atomic in the workspace, by field/binding name, with
/// its intended discipline. Entries are either file-qualified
/// (`"file.rs::name"`) when the same identifier means different things in
/// different files, or bare (`"name"`). Sorted by key and duplicate-free
/// (binary-searched by SQ007; enforced by a unit test). An atomic declared
/// in non-test code but absent here is an SQ007 finding: undeclared
/// cross-thread handoff is how the PR 3 / PR 9 coordinator races shipped.
pub const ATOMIC_REGISTRY: &[(&str, &str)] = &[
    ("ENABLED", "gate"),
    ("allowance", "counter"),
    ("approx_bytes", "counter"),
    ("armed", "gate"),
    ("bytes", "counter"),
    ("coordinator_dead", "flag"),
    ("count", "counter"),
    ("current_round", "gate"),
    ("cursor", "counter"),
    ("dead_workers", "counter"),
    ("dropped", "counter"),
    ("enabled", "gate"),
    ("exhausted_sources", "counter"),
    ("failed", "flag"),
    ("frozen", "flag"),
    ("last_compaction_us", "counter"),
    ("latest_committed", "counter"),
    ("live_instances", "counter"),
    ("monitor_stop", "flag"),
    ("next_id", "counter"),
    ("next_ssid", "counter"),
    ("pending", "counter"),
    ("poison", "flag"),
    ("pruned_below", "counter"),
    ("removes", "counter"),
    ("retained_versions", "gate"),
    ("rows", "counter"),
    ("samples_total", "counter"),
    ("seq", "counter"),
    ("sink_count", "counter"),
    ("source_count", "counter"),
    ("stats_armed", "gate"),
    ("stop", "flag"),
    ("stop_flag", "flag"),
    // The manual Clock's tick counter lives in an unnamed tuple variant;
    // the declaration site the lint sees is the `kind:` struct-literal
    // init in `Clock::manual()`.
    ("time.rs::kind", "counter"),
    ("topk_capacity", "gate"),
    ("torn_truncations", "counter"),
    ("value", "counter"),
    ("writes", "counter"),
];

/// Clock domain of a tracked value (SQ006).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Process-relative micros (`Clock::now_micros`).
    Instant,
    /// Unix-epoch micros (`Clock::epoch_micros` and persisted stamps).
    Epoch,
}

impl ClockDomain {
    pub fn name(self) -> &'static str {
        match self {
            ClockDomain::Instant => "Instant-domain",
            ClockDomain::Epoch => "epoch-domain",
        }
    }
}

/// Domain produced by calling `function`, if registered.
pub fn domain_of_producer(function: &str) -> Option<ClockDomain> {
    if INSTANT_DOMAIN_PRODUCERS.binary_search(&function).is_ok() {
        Some(ClockDomain::Instant)
    } else if EPOCH_DOMAIN_PRODUCERS.binary_search(&function).is_ok() {
        Some(ClockDomain::Epoch)
    } else {
        None
    }
}

/// Domain stored in `field`, if registered.
pub fn domain_of_field(field: &str) -> Option<ClockDomain> {
    if INSTANT_DOMAIN_FIELDS.binary_search(&field).is_ok() {
        Some(ClockDomain::Instant)
    } else if EPOCH_DOMAIN_FIELDS.binary_search(&field).is_ok() {
        Some(ClockDomain::Epoch)
    } else {
        None
    }
}

/// True if `function` is the Instant→epoch conversion.
pub fn is_epoch_conversion(function: &str) -> bool {
    EPOCH_CONVERSION_FNS.binary_search(&function).is_ok()
}

/// True if `function` is an epoch-domain persistence sink.
pub fn is_epoch_sink(function: &str) -> bool {
    EPOCH_SINK_FNS.binary_search(&function).is_ok()
}

/// Declared discipline of the atomic named `name` in `file_basename`:
/// the file-qualified entry wins, then the bare name.
pub fn atomic_discipline(file_basename: &str, name: &str) -> Option<&'static str> {
    let qualified = format!("{file_basename}::{name}");
    ATOMIC_REGISTRY
        .binary_search_by(|(k, _)| (*k).cmp(qualified.as_str()))
        .or_else(|_| ATOMIC_REGISTRY.binary_search_by(|(k, _)| (*k).cmp(name)))
        .ok()
        .map(|i| ATOMIC_REGISTRY[i].1)
}

/// True if `name` is a registered metric name.
pub fn is_metric(name: &str) -> bool {
    METRIC_NAMES.binary_search(&name).is_ok()
}

/// True if `kind` is a registered span kind.
pub fn is_span_kind(kind: &str) -> bool {
    SPAN_KINDS.binary_search(&kind).is_ok()
}

/// True if `kind` is a registered event kind.
pub fn is_event_kind(kind: &str) -> bool {
    EVENT_KINDS.binary_search(&kind).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::EventKind;

    fn assert_sorted_unique(table: &[&str], what: &str) {
        for pair in table.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{what} must be sorted and duplicate-free: {:?} >= {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn tables_are_sorted_and_unique() {
        assert_sorted_unique(METRIC_NAMES, "METRIC_NAMES");
        assert_sorted_unique(SPAN_KINDS, "SPAN_KINDS");
        assert_sorted_unique(EVENT_KINDS, "EVENT_KINDS");
        assert_sorted_unique(INSTANT_DOMAIN_PRODUCERS, "INSTANT_DOMAIN_PRODUCERS");
        assert_sorted_unique(EPOCH_DOMAIN_PRODUCERS, "EPOCH_DOMAIN_PRODUCERS");
        assert_sorted_unique(EPOCH_CONVERSION_FNS, "EPOCH_CONVERSION_FNS");
        assert_sorted_unique(INSTANT_DOMAIN_FIELDS, "INSTANT_DOMAIN_FIELDS");
        assert_sorted_unique(EPOCH_DOMAIN_FIELDS, "EPOCH_DOMAIN_FIELDS");
        assert_sorted_unique(EPOCH_SINK_FNS, "EPOCH_SINK_FNS");
        assert_sorted_unique(ATOMIC_DISCIPLINES, "ATOMIC_DISCIPLINES");
        for pair in ATOMIC_REGISTRY.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "ATOMIC_REGISTRY must be sorted by name and duplicate-free: {:?} >= {:?}",
                pair[0].0,
                pair[1].0
            );
        }
        for (name, discipline) in ATOMIC_REGISTRY {
            assert!(
                ATOMIC_DISCIPLINES.contains(discipline),
                "ATOMIC_REGISTRY entry {name:?} has unknown discipline {discipline:?}"
            );
        }
    }

    #[test]
    fn domain_tables_do_not_overlap() {
        for p in INSTANT_DOMAIN_PRODUCERS {
            assert!(
                !EPOCH_DOMAIN_PRODUCERS.contains(p),
                "{p:?} registered as both instant- and epoch-domain producer"
            );
        }
        for f in INSTANT_DOMAIN_FIELDS {
            assert!(
                !EPOCH_DOMAIN_FIELDS.contains(f),
                "{f:?} registered as both instant- and epoch-domain field"
            );
        }
    }

    #[test]
    fn domain_and_atomic_lookups() {
        assert_eq!(domain_of_producer("now_micros"), Some(ClockDomain::Instant));
        assert_eq!(domain_of_producer("epoch_micros"), Some(ClockDomain::Epoch));
        assert_eq!(domain_of_producer("len"), None);
        assert_eq!(domain_of_field("sealed_at_us"), Some(ClockDomain::Epoch));
        assert_eq!(domain_of_field("began_at_us"), Some(ClockDomain::Instant));
        assert!(is_epoch_conversion("to_epoch_micros"));
        assert!(is_epoch_sink("wal_seal_with"));
        // Qualified `file::name` entries take precedence over bare names.
        assert_eq!(atomic_discipline("time.rs", "kind"), Some("counter"));
        assert_eq!(atomic_discipline("other.rs", "kind"), None);
        assert_eq!(atomic_discipline("worker.rs", "poison"), Some("flag"));
        assert_eq!(atomic_discipline("worker.rs", "unregistered"), None);
    }

    #[test]
    fn every_event_kind_variant_is_registered() {
        let variants = [
            EventKind::CheckpointBegin,
            EventKind::CheckpointPhase1,
            EventKind::CheckpointCommitted,
            EventKind::CheckpointAborted,
            EventKind::WorkerStarted,
            EventKind::WorkerStopped,
            EventKind::JobSubmitted,
            EventKind::JobStopped,
            EventKind::Recovery,
            EventKind::LockContention,
            EventKind::AlignmentStall,
            EventKind::QueryStarted,
            EventKind::QueryFinished,
            EventKind::FaultInjected,
            EventKind::WorkerPanicked,
            EventKind::CheckpointRetried,
            EventKind::SupervisorRestart,
            EventKind::SupervisorGaveUp,
            EventKind::WalRecovered,
            EventKind::WalTornTail,
            EventKind::WatermarkRegressed,
        ];
        for v in variants {
            assert!(
                is_event_kind(v.as_str()),
                "EventKind::{v:?} ({}) missing from EVENT_KINDS",
                v.as_str()
            );
        }
    }

    #[test]
    fn lookups_hit_and_miss() {
        assert!(is_metric("map_reads_total"));
        assert!(!is_metric("bogus_metric"));
        assert!(is_span_kind("checkpoint_round"));
        assert!(!is_span_kind("bogus_span"));
        assert!(is_event_kind("recovery"));
        assert!(!is_event_kind("bogus_event"));
    }
}
