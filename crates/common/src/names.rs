//! Central registry of every telemetry identifier the engine emits.
//!
//! `squery-lint` (check SQ003) rejects any metric, span, or event name used in
//! non-test code that is not listed here, so `sys_metrics` / `sys_spans` /
//! `sys_events` rows and the DESIGN.md documentation cannot silently drift
//! from what the code actually records. Adding a new instrument is a
//! two-line change: register the name below, then use it at the call site.
//!
//! All three tables are kept sorted and duplicate-free (enforced by unit
//! tests) so the lint can binary-search them and diffs stay reviewable.

/// Counter, gauge, and histogram names accepted by
/// `MetricsRegistry::{counter,gauge,histogram}` and their `_value` readers.
pub const METRIC_NAMES: &[&str] = &[
    "checkpoint_phase1_us",
    "checkpoint_retries_total",
    "checkpoint_total_us",
    "e2e_lag_us",
    "map_bytes",
    "map_entries",
    "map_lock_wait_us",
    "map_read_us",
    "map_reads_total",
    "map_removes_total",
    "map_write_us",
    "map_writes_total",
    "operator_align_stall_us",
    "operator_records_in_total",
    "operator_records_out_total",
    "queries_total",
    "query_errors_total",
    "query_exec_us",
    "query_parse_us",
    "query_plan_us",
    "query_rows_returned_total",
    "query_rows_scanned_total",
    "recovery_duration_us",
    "snapshot_read_us",
    "snapshot_reads_total",
    "snapshot_scan_us",
    "snapshot_scans_total",
    "snapshot_staleness_us",
    "snapshot_write_us",
    "snapshot_writes_total",
    "sql_parallel_workers",
    "sql_worker_scan_us",
    "state_live_mirror_us",
    "state_snapshot_us",
    "state_updates_total",
    "stats_distinct_keys",
    "stats_hot_key_count",
    "stats_remove_rate_milli",
    "stats_sample_us",
    "stats_samples_total",
    "stats_skew_milli",
    "stats_write_rate_milli",
    "supervisor_restarts_total",
    "wal_appends_total",
    "wal_bytes_written_total",
    "wal_compactions_total",
    "wal_fsyncs_total",
    "wal_recover_us",
    "wal_seals_total",
    "wal_torn_truncations_total",
    "watermark_lag_us",
    "watermark_us",
    "watermark_violations_total",
    "worker_panics_total",
];

/// Span kinds accepted by `SpanCollector::{start,forced,child}` and the
/// streaming layer's `span_under_round` / SQL executor's `start_node`.
pub const SPAN_KINDS: &[&str] = &[
    "aggregate",
    "batch",
    "checkpoint_abort",
    "checkpoint_phase1",
    "checkpoint_phase2",
    "checkpoint_retry",
    "checkpoint_round",
    "filter",
    "join",
    "join_build",
    "marker_align",
    "mirror_write",
    "query",
    "recovery",
    "scan",
    "slice",
    "snapshot_write",
    "sort",
    "stats_sample",
    "supervisor_restart",
    "wal_compact",
    "wal_recover",
    "wal_seal",
];

/// Event kinds surfaced through `sys_events`; must stay a superset of
/// `EventKind::as_str` (enforced by a unit test).
pub const EVENT_KINDS: &[&str] = &[
    "alignment_stall",
    "checkpoint_aborted",
    "checkpoint_begin",
    "checkpoint_committed",
    "checkpoint_phase1",
    "checkpoint_retried",
    "fault_injected",
    "job_stopped",
    "job_submitted",
    "lock_contention",
    "query_finished",
    "query_started",
    "recovery",
    "supervisor_gave_up",
    "supervisor_restart",
    "wal_recovered",
    "wal_torn_tail",
    "watermark_regressed",
    "worker_panicked",
    "worker_started",
    "worker_stopped",
];

/// True if `name` is a registered metric name.
pub fn is_metric(name: &str) -> bool {
    METRIC_NAMES.binary_search(&name).is_ok()
}

/// True if `kind` is a registered span kind.
pub fn is_span_kind(kind: &str) -> bool {
    SPAN_KINDS.binary_search(&kind).is_ok()
}

/// True if `kind` is a registered event kind.
pub fn is_event_kind(kind: &str) -> bool {
    EVENT_KINDS.binary_search(&kind).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::EventKind;

    fn assert_sorted_unique(table: &[&str], what: &str) {
        for pair in table.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{what} must be sorted and duplicate-free: {:?} >= {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn tables_are_sorted_and_unique() {
        assert_sorted_unique(METRIC_NAMES, "METRIC_NAMES");
        assert_sorted_unique(SPAN_KINDS, "SPAN_KINDS");
        assert_sorted_unique(EVENT_KINDS, "EVENT_KINDS");
    }

    #[test]
    fn every_event_kind_variant_is_registered() {
        let variants = [
            EventKind::CheckpointBegin,
            EventKind::CheckpointPhase1,
            EventKind::CheckpointCommitted,
            EventKind::CheckpointAborted,
            EventKind::WorkerStarted,
            EventKind::WorkerStopped,
            EventKind::JobSubmitted,
            EventKind::JobStopped,
            EventKind::Recovery,
            EventKind::LockContention,
            EventKind::AlignmentStall,
            EventKind::QueryStarted,
            EventKind::QueryFinished,
            EventKind::FaultInjected,
            EventKind::WorkerPanicked,
            EventKind::CheckpointRetried,
            EventKind::SupervisorRestart,
            EventKind::SupervisorGaveUp,
            EventKind::WalRecovered,
            EventKind::WalTornTail,
            EventKind::WatermarkRegressed,
        ];
        for v in variants {
            assert!(
                is_event_kind(v.as_str()),
                "EventKind::{v:?} ({}) missing from EVENT_KINDS",
                v.as_str()
            );
        }
    }

    #[test]
    fn lookups_hit_and_miss() {
        assert!(is_metric("map_reads_total"));
        assert!(!is_metric("bogus_metric"));
        assert!(is_span_kind("checkpoint_round"));
        assert!(!is_span_kind("bogus_span"));
        assert!(is_event_kind("recovery"));
        assert!(!is_event_kind("bogus_event"));
    }
}
