//! The dynamic value model.
//!
//! Everything that flows through the reproduction — stream events, operator
//! state objects, grid entries, SQL rows — is a [`Value`]. The paper stores
//! "any object (e.g., complex objects in Java, Python, etc.)" as the state
//! value (§V-B); [`Value::Struct`] is our equivalent of such an object, and it
//! is what makes state queryable: the SQL layer maps struct fields to columns
//! exactly like Hazelcast IMDG maps object fields.
//!
//! Values are cheap to clone (strings, lists, and structs are `Arc`-backed)
//! because snapshotting clones live state wholesale every checkpoint.

use crate::schema::Schema;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / absent.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (shared).
    Str(Arc<str>),
    /// Microseconds since the UNIX epoch (or since run start for latency
    /// stamps — the interpretation is up to the producer).
    Timestamp(i64),
    /// Ordered list of values (shared).
    List(Arc<Vec<Value>>),
    /// A named-field record; the queryable form of an operator state object.
    Struct(StructValue),
    /// Opaque bytes (used for the baseline engine's blob snapshots).
    Bytes(Arc<[u8]>),
}

/// A record value: a schema plus one value per field.
///
/// Schema and values are each `Arc`-shared so cloning a struct is two
/// refcount bumps regardless of width.
#[derive(Debug, Clone)]
pub struct StructValue {
    schema: Arc<Schema>,
    values: Arc<Vec<Value>>,
}

impl StructValue {
    /// Build a struct; panics if the value count does not match the schema.
    pub fn new(schema: Arc<Schema>, values: Vec<Value>) -> Self {
        assert_eq!(
            schema.len(),
            values.len(),
            "struct value arity must match schema"
        );
        StructValue {
            schema,
            values: Arc::new(values),
        }
    }

    /// The struct's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All field values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Field lookup by name; `None` if the schema has no such field.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.schema.index_of(name).map(|i| &self.values[i])
    }

    /// Field lookup by position.
    pub fn field_at(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the struct has zero fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A copy of this struct with one field replaced.
    pub fn with_field(&self, name: &str, value: Value) -> Option<StructValue> {
        let idx = self.schema.index_of(name)?;
        let mut values = self.values.as_ref().clone();
        values[idx] = value;
        Some(StructValue {
            schema: Arc::clone(&self.schema),
            values: Arc::new(values),
        })
    }
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for lists.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// Build a struct value from a schema and field values.
    pub fn record(schema: &Arc<Schema>, values: Vec<Value>) -> Value {
        Value::Struct(StructValue::new(Arc::clone(schema), values))
    }

    /// A short label for the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Timestamp(_) => "timestamp",
            Value::List(_) => "list",
            Value::Struct(_) => "struct",
            Value::Bytes(_) => "bytes",
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (no coercion).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Boolean view (no coercion).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view (no coercion).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Timestamp view (micros); integers coerce.
    pub fn as_timestamp(&self) -> Option<i64> {
        match self {
            Value::Timestamp(t) => Some(*t),
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Struct view.
    pub fn as_struct(&self) -> Option<&StructValue> {
        match self {
            Value::Struct(s) => Some(s),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// SQL comparison with numeric coercion.
    ///
    /// Returns `None` when either side is NULL or the types are incomparable
    /// (SQL three-valued logic: the comparison is UNKNOWN).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Timestamp(a), Int(b)) | (Int(b), Timestamp(a)) => {
                // Allow literal integers to compare against timestamps: the
                // paper's queries compare timestamp columns with computed
                // bounds.
                Some(a.cmp(b)).map(|o| {
                    if matches!(self, Int(_)) {
                        o.reverse()
                    } else {
                        o
                    }
                })
            }
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering across all values, usable as a BTree/sort key.
    ///
    /// Heterogeneous types order by a fixed type rank; floats use IEEE total
    /// order. Unlike [`Value::sql_cmp`] this never returns "unknown".
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Timestamp(_) => 4,
                Value::Str(_) => 5,
                Value::Bytes(_) => 6,
                Value::List(_) => 7,
                Value::Struct(_) => 8,
            }
        }
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Struct(a), Struct(b)) => {
                for (x, y) in a.values().iter().zip(b.values().iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(3);
                f.to_bits().hash(state);
            }
            Value::Timestamp(t) => {
                state.write_u8(4);
                t.hash(state);
            }
            Value::Str(s) => {
                state.write_u8(5);
                s.hash(state);
            }
            Value::Bytes(b) => {
                state.write_u8(6);
                b.hash(state);
            }
            Value::List(l) => {
                state.write_u8(7);
                for v in l.iter() {
                    v.hash(state);
                }
            }
            Value::Struct(sv) => {
                state.write_u8(8);
                for v in sv.values() {
                    v.hash(state);
                }
            }
        }
    }
}

impl PartialEq for StructValue {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}
impl Eq for StructValue {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "ts:{t}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Struct(sv) => {
                write!(f, "{{")?;
                for (i, field) in sv.schema().fields().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", field.name, sv.field_at(i))?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn person_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            ("name", DataType::Str),
            ("age", DataType::Int),
        ]))
    }

    #[test]
    fn struct_field_access() {
        let s = StructValue::new(person_schema(), vec![Value::str("ada"), Value::Int(36)]);
        assert_eq!(s.field("name"), Some(&Value::str("ada")));
        assert_eq!(s.field("age"), Some(&Value::Int(36)));
        assert_eq!(s.field("missing"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn struct_with_field_replaces_one_value() {
        let s = StructValue::new(person_schema(), vec![Value::str("ada"), Value::Int(36)]);
        let s2 = s.with_field("age", Value::Int(37)).unwrap();
        assert_eq!(s2.field("age"), Some(&Value::Int(37)));
        assert_eq!(s.field("age"), Some(&Value::Int(36)), "original unchanged");
        assert!(s.with_field("nope", Value::Null).is_none());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn struct_arity_mismatch_panics() {
        StructValue::new(person_schema(), vec![Value::str("ada")]);
    }

    #[test]
    fn sql_cmp_coerces_numerics() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn sql_cmp_timestamp_vs_int_is_symmetric() {
        let t = Value::Timestamp(100);
        let i = Value::Int(50);
        assert_eq!(t.sql_cmp(&i), Some(Ordering::Greater));
        assert_eq!(i.sql_cmp(&t), Some(Ordering::Less));
    }

    #[test]
    fn total_order_is_usable_for_sorting() {
        let mut vals = [
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Float(0.5),
            Value::str("a"),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        // ints before floats by rank, strings last
        assert_eq!(vals[1], Value::Int(1));
        assert_eq!(vals[2], Value::Int(3));
        assert_eq!(vals[5], Value::str("b"));
    }

    #[test]
    fn equality_and_hash_agree_for_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Value::str("rider-7"), 1);
        m.insert(Value::Int(7), 2);
        assert_eq!(m.get(&Value::str("rider-7")), Some(&1));
        assert_eq!(m.get(&Value::Int(7)), Some(&2));
        assert_eq!(m.get(&Value::Int(8)), None);
    }

    #[test]
    fn display_renders_struct() {
        let s = Value::record(&person_schema(), vec![Value::str("ada"), Value::Int(36)]);
        assert_eq!(s.to_string(), "{name: ada, age: 36}");
    }

    #[test]
    fn nested_lists_compare_lexicographically() {
        let a = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::list(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::list(vec![Value::Int(1)]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < nan);
    }
}
