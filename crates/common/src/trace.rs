//! Structured span tracing: *where* time goes, not just how much.
//!
//! The telemetry registry's counters and histograms aggregate; they cannot
//! say what a single query, checkpoint round, or recovery spent its time on.
//! This module adds that dimension: a [`Span`] is one timed region of engine
//! work with an optional parent, collected by a lock-sharded
//! [`SpanCollector`] that every layer reaches through its
//! [`MetricsRegistry`](crate::telemetry::MetricsRegistry).
//!
//! Recording is RAII: [`SpanCollector::start`] returns a [`SpanGuard`] that
//! stamps `end_us` and files the span when dropped. When the collector is
//! disabled (the default) `start` is a single relaxed atomic load returning
//! an inert guard — no clock read, no allocation, no lock — so instrumented
//! hot paths cost nothing in production. `EXPLAIN ANALYZE` uses
//! [`SpanCollector::forced`] to profile one query without globally enabling
//! collection.
//!
//! Finished spans are queryable as the `sys_spans` virtual table and
//! exportable as Chrome trace-event JSON ([`render_chrome_trace`]) loadable
//! in `chrome://tracing` or Perfetto.

use crate::time::Clock;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default total span capacity of a collector (split across shards).
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

const SHARDS: usize = 16;

/// One finished timed region of engine work.
#[derive(Debug, Clone)]
pub struct Span {
    /// Unique, nonzero id.
    pub id: u64,
    /// The enclosing span, when part of a tree.
    pub parent: Option<u64>,
    /// What kind of work: `query`, `scan`, `checkpoint_round`, `recovery`, …
    pub kind: &'static str,
    /// Free-form `(key, value)` annotations (`table`, `rows`, `ssid`, …).
    pub labels: Vec<(&'static str, String)>,
    /// Start, µs on the collector's clock.
    pub start_us: u64,
    /// End, µs on the collector's clock (`end_us >= start_us`).
    pub end_us: u64,
}

impl Span {
    /// Duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

struct CollectorInner {
    enabled: AtomicBool,
    next_id: AtomicU64,
    dropped: AtomicU64,
    /// The in-flight checkpoint round's root span (0 = none): lets workers
    /// parent their alignment spans under a round begun on another thread.
    current_round: AtomicU64,
    shard_capacity: usize,
    shards: Vec<Mutex<VecDeque<Span>>>,
    clock: Clock,
}

/// A lock-sharded store of finished [`Span`]s.
///
/// Cloneable; clones share state. Spans land in one of [`SHARDS`] bounded
/// rings keyed by span id, so concurrent workers rarely contend on the same
/// lock. When a ring is full its oldest span is evicted (counted in
/// [`SpanCollector::total_dropped`]).
#[derive(Clone)]
pub struct SpanCollector {
    inner: Arc<CollectorInner>,
}

impl SpanCollector {
    /// A disabled collector with the default capacity.
    pub fn new(clock: Clock) -> SpanCollector {
        SpanCollector::with_capacity(DEFAULT_SPAN_CAPACITY, clock)
    }

    /// A disabled collector retaining at most ~`capacity` spans.
    pub fn with_capacity(capacity: usize, clock: Clock) -> SpanCollector {
        let shard_capacity = (capacity / SHARDS).max(1);
        SpanCollector {
            inner: Arc::new(CollectorInner {
                enabled: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                current_round: AtomicU64::new(0),
                shard_capacity,
                shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
                clock,
            }),
        }
    }

    /// Turn collection on or off. Guards already started keep their mode.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether [`SpanCollector::start`] currently records.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Start a root span (no parent). Inert when disabled.
    pub fn start(&self, kind: &'static str) -> SpanGuard {
        self.begin(kind, None, false)
    }

    /// Start a span under `parent`. Inert when disabled.
    pub fn child(&self, kind: &'static str, parent: u64) -> SpanGuard {
        self.begin(kind, Some(parent), false)
    }

    /// Start a span that records even while the collector is disabled
    /// (`EXPLAIN ANALYZE` profiles one query this way).
    pub fn forced(&self, kind: &'static str, parent: Option<u64>) -> SpanGuard {
        self.begin(kind, parent, true)
    }

    fn begin(&self, kind: &'static str, parent: Option<u64>, force: bool) -> SpanGuard {
        if !force && !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            inner: Some(GuardInner {
                collector: self.clone(),
                id,
                parent,
                kind,
                labels: Vec::new(),
                start_us: self.inner.clock.now_micros(),
            }),
        }
    }

    /// Publish (or clear, with `None`) the in-flight checkpoint round's root
    /// span id so other threads can parent under it.
    pub fn set_current_round(&self, id: Option<u64>) {
        self.inner
            .current_round
            .store(id.unwrap_or(0), Ordering::Release);
    }

    /// The in-flight checkpoint round's root span, if one is published.
    pub fn current_round(&self) -> Option<u64> {
        match self.inner.current_round.load(Ordering::Acquire) {
            0 => None,
            id => Some(id),
        }
    }

    /// The collector's clock.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Spans evicted because a shard ring was full.
    pub fn total_dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// All retained spans, sorted by `(start_us, id)`.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::SpanShard);
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|s| (s.start_us, s.id));
        all
    }

    /// Drop every retained span (the eviction counter is kept).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::SpanShard);
            shard.lock().clear();
        }
    }

    fn push(&self, span: Span) {
        let shard = &self.inner.shards[(span.id as usize) % SHARDS];
        let _lo = crate::lockorder::acquired(crate::lockorder::LockClass::SpanShard);
        let mut ring = shard.lock();
        if ring.len() >= self.inner.shard_capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }
}

struct GuardInner {
    collector: SpanCollector,
    id: u64,
    parent: Option<u64>,
    kind: &'static str,
    labels: Vec<(&'static str, String)>,
    start_us: u64,
}

/// RAII handle for an open span; files the span when dropped or
/// [`finish`](SpanGuard::finish)ed. Inert (all methods no-ops) when the
/// collector was disabled at start time.
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl SpanGuard {
    /// An inert guard (for call sites that conditionally trace).
    pub fn inert() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// The span's id, or `None` when inert.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|g| g.id)
    }

    /// Whether this guard will record a span.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a `(key, value)` label.
    pub fn label(&mut self, key: &'static str, value: impl ToString) {
        if let Some(g) = self.inner.as_mut() {
            g.labels.push((key, value.to_string()));
        }
    }

    /// Close the span now and return it (also what `Drop` does, minus the
    /// return value).
    pub fn finish(mut self) -> Option<Span> {
        self.close()
    }

    fn close(&mut self) -> Option<Span> {
        let g = self.inner.take()?;
        let end_us = g.collector.inner.clock.now_micros();
        let span = Span {
            id: g.id,
            parent: g.parent,
            kind: g.kind,
            labels: g.labels,
            start_us: g.start_us,
            end_us: end_us.max(g.start_us),
        };
        g.collector.push(span.clone());
        Some(span)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render spans as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto format): one `ph:"X"` complete event per span.
///
/// Each span tree gets its own `tid` (the root ancestor's id), so the viewer
/// stacks children under their root on one track; `args` carries the span
/// and parent ids plus all labels. `ph:"M"` metadata events name the process
/// (`process_name`) and each track (`thread_name`, from the root span's
/// kind) so the viewer shows e.g. "checkpoint_round #5" instead of a bare
/// tid. Hand-rendered — the workspace vendors no serialization crate.
pub fn render_chrome_trace(spans: &[Span]) -> String {
    // Resolve each span's root ancestor for track assignment.
    let parent_of: HashMap<u64, Option<u64>> = spans.iter().map(|s| (s.id, s.parent)).collect();
    let root_of = |mut id: u64| -> u64 {
        let mut hops = 0;
        while let Some(Some(p)) = parent_of.get(&id) {
            id = *p;
            hops += 1;
            if hops > 64 {
                break; // cycle guard; malformed parents stay on their own track
            }
        }
        id
    };
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + 1);
    // Metadata events carry the same ts/dur/pid/tid fields as the span
    // events so strict per-event validators accept them.
    events.push(
        "{\"name\":\"process_name\",\"cat\":\"squery\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"ts\":0,\"dur\":0,\"args\":{\"name\":\"squery\"}}"
            .to_string(),
    );
    let kind_of: HashMap<u64, &str> = spans.iter().map(|s| (s.id, s.kind)).collect();
    let mut named_tracks: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for s in spans {
        let root = root_of(s.id);
        if named_tracks.insert(root) {
            // The root span's kind names the track; the id disambiguates
            // repeated roots of the same kind (rounds, queries, ...).
            let kind = kind_of.get(&root).copied().unwrap_or(s.kind);
            events.push(format!(
                "{{\"name\":\"thread_name\",\"cat\":\"squery\",\"ph\":\"M\",\"pid\":1,\
                 \"tid\":{},\"ts\":0,\"dur\":0,\"args\":{{\"name\":{}}}}}",
                root,
                jstr(&format!("{kind} #{root}"))
            ));
        }
    }
    for s in spans {
        let mut args = vec![
            format!("\"id\":{}", s.id),
            format!(
                "\"parent\":{}",
                s.parent.map(|p| p.to_string()).unwrap_or("null".into())
            ),
        ];
        for (k, v) in &s.labels {
            args.push(format!("{}:{}", jstr(k), jstr(v)));
        }
        events.push(format!(
            "{{\"name\":{},\"cat\":\"squery\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
            jstr(s.kind),
            root_of(s.id),
            s.start_us,
            s.duration_us(),
            args.join(",")
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = SpanCollector::new(Clock::manual());
        assert!(!c.is_enabled());
        let mut g = c.start("query");
        assert!(!g.is_active());
        assert_eq!(g.id(), None);
        g.label("rows", 5); // must be a no-op, not a panic
        drop(g);
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn enabled_collector_files_spans_with_parents_and_labels() {
        let clock = Clock::manual();
        let c = SpanCollector::new(clock.clone());
        c.set_enabled(true);
        let mut root = c.start("query");
        root.label("sql", "SELECT 1");
        let root_id = root.id().unwrap();
        clock.advance(10);
        let child = c.child("scan", root_id);
        clock.advance(5);
        drop(child);
        clock.advance(5);
        drop(root);
        let spans = c.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, "query");
        assert_eq!(spans[0].label("sql"), Some("SELECT 1"));
        assert_eq!(spans[0].start_us, 0);
        assert_eq!(spans[0].end_us, 20);
        assert_eq!(spans[1].kind, "scan");
        assert_eq!(spans[1].parent, Some(root_id));
        assert_eq!(spans[1].duration_us(), 5);
    }

    #[test]
    fn forced_spans_record_while_disabled() {
        let c = SpanCollector::new(Clock::manual());
        let g = c.forced("query", None);
        assert!(g.is_active());
        let child = c.forced("scan", g.id());
        drop(child);
        drop(g);
        assert_eq!(c.snapshot().len(), 2);
        assert!(c.start("noise").finish().is_none(), "start stays inert");
    }

    #[test]
    fn finish_returns_the_span() {
        let clock = Clock::manual();
        let c = SpanCollector::new(clock.clone());
        c.set_enabled(true);
        let g = c.start("phase");
        clock.advance(7);
        let span = g.finish().unwrap();
        assert_eq!(span.duration_us(), 7);
        assert_eq!(c.snapshot().len(), 1);
    }

    #[test]
    fn rings_evict_oldest_and_count_drops() {
        let c = SpanCollector::with_capacity(SHARDS, Clock::manual()); // 1 per shard
        c.set_enabled(true);
        for _ in 0..SHARDS * 3 {
            drop(c.start("s"));
        }
        assert_eq!(c.snapshot().len(), SHARDS);
        assert_eq!(c.total_dropped(), (SHARDS * 2) as u64);
        c.clear();
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn current_round_publishes_and_clears() {
        let c = SpanCollector::new(Clock::manual());
        assert_eq!(c.current_round(), None);
        c.set_current_round(Some(42));
        assert_eq!(c.current_round(), Some(42));
        c.set_current_round(None);
        assert_eq!(c.current_round(), None);
    }

    #[test]
    fn chrome_trace_nests_children_on_the_root_track() {
        let clock = Clock::manual();
        let c = SpanCollector::new(clock.clone());
        c.set_enabled(true);
        let root = c.start("checkpoint_round");
        let root_id = root.id().unwrap();
        clock.advance(2);
        let p1 = c.child("checkpoint_phase1", root_id);
        let p1_id = p1.id().unwrap();
        clock.advance(3);
        let deep = c.child("align", p1_id);
        clock.advance(1);
        drop(deep);
        drop(p1);
        clock.advance(4);
        drop(root);
        let json = render_chrome_trace(&c.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        // All three span events share the root's track id, plus one
        // thread_name metadata event naming that track.
        assert_eq!(json.matches(&format!("\"tid\":{root_id}")).count(), 4);
        assert!(json.contains(&format!("\"parent\":{root_id}")));
        assert!(json.contains("\"name\":\"checkpoint_phase1\""));
    }

    #[test]
    fn chrome_trace_names_process_and_tracks() {
        let c = SpanCollector::new(Clock::manual());
        c.set_enabled(true);
        let root = c.start("checkpoint_round");
        let root_id = root.id().unwrap();
        drop(c.child("checkpoint_phase1", root_id));
        drop(root);
        drop(c.start("query"));
        let json = render_chrome_trace(&c.snapshot());
        assert!(
            json.contains("\"name\":\"process_name\",\"cat\":\"squery\",\"ph\":\"M\""),
            "{json}"
        );
        assert!(
            json.contains(&format!("\"name\":\"checkpoint_round #{root_id}\"")),
            "{json}"
        );
        // One thread_name per track (two roots), not per span.
        assert_eq!(
            json.matches("\"name\":\"thread_name\"").count(),
            2,
            "{json}"
        );
        // Metadata events carry the full field set strict validators expect.
        assert!(json.contains("\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":0"));
    }

    #[test]
    fn chrome_trace_escapes_label_strings() {
        let c = SpanCollector::new(Clock::manual());
        c.set_enabled(true);
        let mut g = c.start("query");
        g.label("sql", "SELECT \"x\"\nFROM t");
        drop(g);
        let json = render_chrome_trace(&c.snapshot());
        assert!(json.contains("\\\"x\\\""), "{json}");
        assert!(json.contains("\\n"), "{json}");
    }

    #[test]
    fn concurrent_recording_keeps_every_span() {
        let c = SpanCollector::new(Clock::wall());
        c.set_enabled(true);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        drop(c.start("work"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.snapshot().len(), 800);
        // Ids are unique.
        let mut ids: Vec<u64> = c.snapshot().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }
}
