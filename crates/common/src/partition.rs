//! The shared partitioning function.
//!
//! The paper's key optimization (§II "Colocating State & Compute", §V-A) is
//! that *"the state store and the stream processor share the same partitioning
//! function"*, so every live-state update stays node-local. This module is
//! that single shared function: the stream engine's keyed exchanges and the
//! storage grid's partition table both route through [`Partitioner`].
//!
//! Keys hash with FNV-1a (stable across runs, so tests can assert placement),
//! modulo the partition count — 271 by default, Hazelcast IMDG's default.

use crate::ids::PartitionId;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Hazelcast IMDG's default partition count, which we adopt.
pub const DEFAULT_PARTITION_COUNT: u32 = 271;

/// Deterministic key-to-partition mapping shared by compute and storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    partition_count: u32,
}

impl Partitioner {
    /// A partitioner over `partition_count` partitions.
    ///
    /// Panics if `partition_count` is zero.
    pub fn new(partition_count: u32) -> Partitioner {
        assert!(partition_count > 0, "partition count must be positive");
        Partitioner { partition_count }
    }

    /// The number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partition_count
    }

    /// The partition that owns `key`.
    pub fn partition_of(&self, key: &Value) -> PartitionId {
        PartitionId((hash_key(key) % u64::from(self.partition_count)) as u32)
    }

    /// Route a key to one of `n` downstream operator instances.
    ///
    /// Instances own contiguous partition ranges, so a key's instance and the
    /// node holding its grid partition coincide when the grid uses the same
    /// range split (see `squery-storage`'s partition table).
    pub fn instance_of(&self, key: &Value, n: u32) -> u32 {
        self.instance_of_partition(self.partition_of(key), n)
    }

    /// The instance (out of `n`) that owns a given partition.
    pub fn instance_of_partition(&self, partition: PartitionId, n: u32) -> u32 {
        assert!(n > 0, "instance count must be positive");
        // Contiguous ranges: partitions [i*c/n, (i+1)*c/n) go to instance i.
        let c = u64::from(self.partition_count);
        let p = u64::from(partition.0);
        ((p * u64::from(n)) / c) as u32
    }

    /// All partitions owned by instance `i` out of `n`.
    pub fn partitions_of_instance(&self, i: u32, n: u32) -> Vec<PartitionId> {
        (0..self.partition_count)
            .map(PartitionId)
            .filter(|p| self.instance_of_partition(*p, n) == i)
            .collect()
    }
}

impl Default for Partitioner {
    fn default() -> Self {
        Partitioner::new(DEFAULT_PARTITION_COUNT)
    }
}

/// Stable 64-bit hash of a key value (FNV-1a through the `Hash` impl).
pub fn hash_key(key: &Value) -> u64 {
    let mut hasher = FnvHasher::default();
    key.hash(&mut hasher);
    hasher.finish()
}

/// FNV-1a, a small deterministic hasher (std's `DefaultHasher` is not
/// guaranteed stable across releases, and placement must be reproducible).
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_in_range_and_deterministic() {
        let p = Partitioner::default();
        for i in 0..1000i64 {
            let key = Value::Int(i);
            let part = p.partition_of(&key);
            assert!(part.0 < DEFAULT_PARTITION_COUNT);
            assert_eq!(part, p.partition_of(&key), "must be deterministic");
        }
    }

    #[test]
    fn str_and_int_keys_hash_differently() {
        // The Value hash includes a type tag, so `7` and `"7"` are distinct keys.
        assert_ne!(hash_key(&Value::Int(7)), hash_key(&Value::str("7")));
    }

    #[test]
    fn instances_partition_the_partition_space() {
        let p = Partitioner::new(271);
        for n in [1u32, 2, 3, 5, 7, 12] {
            let mut total = 0;
            for i in 0..n {
                let parts = p.partitions_of_instance(i, n);
                assert!(!parts.is_empty(), "instance {i}/{n} owns no partitions");
                total += parts.len();
                for part in parts {
                    assert_eq!(p.instance_of_partition(part, n), i);
                }
            }
            assert_eq!(total, 271, "partitions must be fully covered for n={n}");
        }
    }

    #[test]
    fn instance_ranges_are_contiguous() {
        let p = Partitioner::new(16);
        let assignment: Vec<u32> = (0..16)
            .map(|i| p.instance_of_partition(PartitionId(i), 4))
            .collect();
        assert_eq!(
            assignment,
            vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]
        );
    }

    #[test]
    fn instance_of_matches_partition_route() {
        let p = Partitioner::default();
        for i in 0..500i64 {
            let key = Value::Int(i);
            let inst = p.instance_of(&key, 7);
            let part = p.partition_of(&key);
            assert_eq!(inst, p.instance_of_partition(part, 7));
        }
    }

    #[test]
    fn keys_spread_reasonably() {
        let p = Partitioner::new(8);
        let mut counts = [0usize; 8];
        for i in 0..8000i64 {
            counts[p.partition_of(&Value::Int(i)).0 as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(c),
                "partition {i} badly skewed: {c}/8000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_partitions_rejected() {
        Partitioner::new(0);
    }
}
