//! Runtime lock-order validation.
//!
//! `squery-lint`'s SQ001 check proves the *static* lock-acquisition graph is
//! acyclic; this module validates the same canonical order against *real*
//! executions. Every named lock in the engine is wrapped in a
//! [`LockClass`] with a fixed rank, and instrumented acquisition sites call
//! [`acquired`] just before taking the lock. When tracking is enabled, a
//! thread-local stack of currently-held classes is maintained and any
//! acquisition whose rank is lower than a rank already held — i.e. an
//! acquisition that contradicts the canonical order documented in
//! DESIGN.md §9 — records a [`Violation`] into a global list and panics.
//!
//! Tracking is off by default and costs a single relaxed atomic load per
//! acquisition. It is switched on by the `SQUERY_LOCK_ORDER` environment
//! variable (`1`/`true`) — the chaos soak in CI runs with it set — or
//! programmatically via [`set_enabled`] from tests. Because worker threads
//! run under `catch_unwind`, a violation panic alone could be swallowed by
//! the recovery path; the global [`violations`] list exists so harnesses can
//! assert the soak stayed clean even when every panic was recovered.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Every named lock family in the engine, ranked in canonical
/// acquisition order (outermost first). Acquiring a class while holding a
/// class with a *higher* rank is an order violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockClass {
    /// `Supervisor.status` — restart bookkeeping, taken by the monitor loop
    /// and health probes.
    SupervisorStatus,
    /// `Supervisor.job` — the supervised job handle; held across recovery.
    SupervisorJob,
    /// `squery-core` job table (`jobs` mutex in the engine front-end).
    CoreJobs,
    /// `SnapshotRegistry.in_progress` — the 2PC phase-1 reservation slot.
    RegistryInProgress,
    /// `SnapshotRegistry.committed` — the committed-snapshot deque; taken
    /// inside `in_progress` during phase-2 commit.
    RegistryCommitted,
    /// `Grid.maps` / `Grid.snapshots` / `Grid.faults` — catalog of named
    /// maps and snapshot stores.
    GridCatalog,
    /// Partition placement table.
    PartitionTable,
    /// Replicator backup store and fault hook.
    Replication,
    /// A per-partition WAL segment file (appends, seals, truncation, and
    /// compaction all serialize on it). Acquired *before* the partition's
    /// in-memory snapshot data so the durable record always lands ahead of
    /// the version map it describes.
    WalSegment,
    /// Per-partition snapshot store data.
    SnapshotPartition,
    /// `SnapshotStore.exec_cache` — memoized executor structures (decoded
    /// column batches, frozen join tables) over committed snapshots; taken
    /// after the partition data locks are released, never inside them.
    ExecCache,
    /// `LockStripes` — the key-level stripe a live read/write holds for
    /// read-committed isolation.
    KeyStripe,
    /// `IMap` partition data map; taken inside the key stripe.
    PartitionMap,
    /// `IMap` metadata (value schema, write listener, telemetry hook).
    MapMeta,
    /// `IMap` recent-key ring feeding the heavy-hitter sketch; pushed to
    /// from the write path while the key stripe is still held.
    StatsRing,
    /// Per-table sketch state (`StateStats.tables`) — HLL, SpaceSaving,
    /// and rate baselines, taken by the sampler and catalog readers.
    SketchState,
    /// Checkpoint coordinator statistics.
    CheckpointStats,
    /// Metrics registry instrument maps (counters/gauges/histograms).
    Telemetry,
    /// Event-log ring buffer.
    EventRing,
    /// One of the span collector's sharded rings.
    SpanShard,
    /// A single histogram's bucket state.
    Histogram,
    /// Fault-injector plan/armed state.
    FaultState,
}

impl LockClass {
    /// Canonical rank, outermost (acquired first) = lowest.
    pub fn rank(self) -> u8 {
        match self {
            LockClass::SupervisorStatus => 0,
            LockClass::SupervisorJob => 1,
            LockClass::CoreJobs => 2,
            LockClass::RegistryInProgress => 3,
            LockClass::RegistryCommitted => 4,
            LockClass::GridCatalog => 5,
            LockClass::PartitionTable => 6,
            LockClass::Replication => 7,
            LockClass::WalSegment => 8,
            LockClass::SnapshotPartition => 9,
            LockClass::ExecCache => 10,
            LockClass::KeyStripe => 11,
            LockClass::PartitionMap => 12,
            LockClass::MapMeta => 13,
            LockClass::StatsRing => 14,
            LockClass::SketchState => 15,
            LockClass::CheckpointStats => 16,
            LockClass::Telemetry => 17,
            LockClass::EventRing => 18,
            LockClass::SpanShard => 19,
            LockClass::Histogram => 20,
            LockClass::FaultState => 21,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            LockClass::SupervisorStatus => "SupervisorStatus",
            LockClass::SupervisorJob => "SupervisorJob",
            LockClass::CoreJobs => "CoreJobs",
            LockClass::RegistryInProgress => "RegistryInProgress",
            LockClass::RegistryCommitted => "RegistryCommitted",
            LockClass::GridCatalog => "GridCatalog",
            LockClass::PartitionTable => "PartitionTable",
            LockClass::Replication => "Replication",
            LockClass::WalSegment => "WalSegment",
            LockClass::SnapshotPartition => "SnapshotPartition",
            LockClass::ExecCache => "ExecCache",
            LockClass::KeyStripe => "KeyStripe",
            LockClass::PartitionMap => "PartitionMap",
            LockClass::MapMeta => "MapMeta",
            LockClass::StatsRing => "StatsRing",
            LockClass::SketchState => "SketchState",
            LockClass::CheckpointStats => "CheckpointStats",
            LockClass::Telemetry => "Telemetry",
            LockClass::EventRing => "EventRing",
            LockClass::SpanShard => "SpanShard",
            LockClass::Histogram => "Histogram",
            LockClass::FaultState => "FaultState",
        }
    }
}

/// One recorded ordering violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Class being acquired when the violation was detected.
    pub acquiring: LockClass,
    /// Highest-ranked class already held by the thread.
    pub held: LockClass,
    /// Name of the offending thread, if it has one.
    pub thread: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lock-order violation: acquiring {} (rank {}) while holding {} (rank {}) on thread '{}'",
            self.acquiring.name(),
            self.acquiring.rank(),
            self.held.name(),
            self.held.rank(),
            self.thread
        )
    }
}

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static VIOLATIONS: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

thread_local! {
    static HELD: RefCell<Vec<(u64, LockClass)>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
}

fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var("SQUERY_LOCK_ORDER")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatically switch tracking on or off, overriding the environment.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Whether tracking is currently active.
pub fn is_enabled() -> bool {
    enabled()
}

/// Snapshot of all violations recorded so far (process-wide).
pub fn violations() -> Vec<Violation> {
    VIOLATIONS.lock().clone()
}

/// Drain and return all recorded violations.
pub fn take_violations() -> Vec<Violation> {
    std::mem::take(&mut *VIOLATIONS.lock())
}

/// RAII handle marking `class` as held by the current thread until drop.
///
/// Guards may be dropped in any order (not necessarily LIFO); each guard
/// removes exactly its own entry from the thread's held set.
#[must_use = "the lock is only considered held while the guard is alive"]
pub struct LockOrderGuard {
    token: u64,
    active: bool,
}

impl Drop for LockOrderGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|(t, _)| *t == self.token) {
                held.remove(pos);
            }
        });
    }
}

/// Record that the current thread is about to acquire a lock of `class`.
///
/// Call immediately *before* the actual lock call and keep the returned
/// guard alive for as long as the lock guard lives. When tracking is
/// disabled this is a single relaxed atomic load.
///
/// # Panics
///
/// Panics (after recording a [`Violation`]) if the thread already holds a
/// class with a higher canonical rank, since that acquisition order could
/// deadlock against a thread acquiring in the canonical order.
pub fn acquired(class: LockClass) -> LockOrderGuard {
    if !enabled() {
        return LockOrderGuard {
            token: 0,
            active: false,
        };
    }
    let rank = class.rank();
    let worst = HELD.with(|held| {
        held.borrow()
            .iter()
            .map(|&(_, c)| c)
            .max_by_key(|c| c.rank())
    });
    if let Some(held_class) = worst {
        if held_class.rank() > rank {
            let v = Violation {
                acquiring: class,
                held: held_class,
                thread: std::thread::current()
                    .name()
                    .unwrap_or("<unnamed>")
                    .to_string(),
            };
            VIOLATIONS.lock().push(v.clone());
            panic!("{v}");
        }
    }
    let token = NEXT_TOKEN.with(|t| {
        let mut t = t.borrow_mut();
        *t += 1;
        *t
    });
    HELD.with(|held| held.borrow_mut().push((token, class)));
    LockOrderGuard {
        token,
        active: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests mutate the process-wide enable flag and violation list, so they
    // serialize on this mutex.
    static TEST_SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_tracker_is_inert() {
        let _serial = TEST_SERIAL.lock();
        set_enabled(false);
        let _a = acquired(LockClass::PartitionMap);
        let _b = acquired(LockClass::KeyStripe); // would violate if enabled
        assert!(violations().is_empty());
    }

    #[test]
    fn canonical_order_is_silent() {
        let _serial = TEST_SERIAL.lock();
        set_enabled(true);
        take_violations();
        {
            let _a = acquired(LockClass::RegistryInProgress);
            let _b = acquired(LockClass::RegistryCommitted);
            let _c = acquired(LockClass::SpanShard);
        }
        // Non-LIFO drop order must also unwind cleanly.
        {
            let a = acquired(LockClass::KeyStripe);
            let b = acquired(LockClass::PartitionMap);
            drop(a);
            let _c = acquired(LockClass::MapMeta);
            drop(b);
        }
        set_enabled(false);
        assert!(take_violations().is_empty());
    }

    #[test]
    fn ab_ba_interleaving_fires() {
        let _serial = TEST_SERIAL.lock();
        set_enabled(true);
        take_violations();
        // Thread 1: A (KeyStripe) then B (PartitionMap) — canonical.
        // Thread 2: B then A — must panic and record a violation.
        let t1 = std::thread::Builder::new()
            .name("ab".into())
            .spawn(|| {
                let _a = acquired(LockClass::KeyStripe);
                let _b = acquired(LockClass::PartitionMap);
            })
            .unwrap();
        t1.join().unwrap();
        let t2 = std::thread::Builder::new()
            .name("ba".into())
            .spawn(|| {
                let _b = acquired(LockClass::PartitionMap);
                let _a = acquired(LockClass::KeyStripe);
            })
            .unwrap();
        let joined = t2.join();
        set_enabled(false);
        assert!(joined.is_err(), "B->A acquisition must panic");
        let vs = take_violations();
        assert_eq!(vs.len(), 1, "exactly one violation recorded: {vs:?}");
        assert_eq!(vs[0].acquiring, LockClass::KeyStripe);
        assert_eq!(vs[0].held, LockClass::PartitionMap);
        assert_eq!(vs[0].thread, "ba");
        assert!(vs[0].to_string().contains("lock-order violation"));
    }

    #[test]
    fn same_class_reentry_is_allowed() {
        let _serial = TEST_SERIAL.lock();
        set_enabled(true);
        take_violations();
        {
            // Two span shards (read paths iterate all shards in order).
            let _a = acquired(LockClass::SpanShard);
            let _b = acquired(LockClass::SpanShard);
        }
        set_enabled(false);
        assert!(take_violations().is_empty());
    }
}
