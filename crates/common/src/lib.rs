//! # squery-common
//!
//! Shared primitives for the S-QUERY reproduction (ICDE 2022,
//! "S-QUERY: Opening the Black Box of Internal Stream Processor State").
//!
//! This crate holds everything the substrates agree on:
//!
//! * [`value::Value`] — the dynamic value model used for stream events, operator
//!   state objects, and SQL rows. State objects stored in the grid are usually
//!   [`value::Value::Struct`] values, which is what lets the SQL layer see
//!   their fields as columns (mirroring how Hazelcast IMDG exposes object
//!   fields to its SQL engine).
//! * [`schema::Schema`] — named, typed field lists for struct values and tables.
//! * [`codec`] — a compact self-describing binary encoding for values, used to
//!   size snapshots, ship replication traffic, and hash keys deterministically.
//! * [`partition::Partitioner`] — the single hash-partitioning function shared
//!   by the stream engine's keyed exchanges and the storage grid's partition
//!   table. Sharing it is what makes the paper's *co-location of state and
//!   compute* (§II, §V-A) possible: the operator instance that owns a key and
//!   the grid partition that stores the key's live state land on the same node.
//! * [`metrics`] — log-linear histograms with the high-percentile reporting
//!   the paper's evaluation uses (0th–99.99th on an inverted log scale).
//! * [`telemetry`] — the engine-wide [`telemetry::MetricsRegistry`] of
//!   counters/gauges/histograms plus the bounded [`telemetry::EventLog`] of
//!   structured engine events; the backing store for the `sys_*` SQL tables
//!   and the Prometheus/JSON exports.
//! * [`trace`] — structured span tracing: the lock-sharded
//!   [`trace::SpanCollector`] of `Span { id, parent, kind, labels, start_us,
//!   end_us }` trees behind `sys_spans`, `EXPLAIN ANALYZE`, and the Chrome
//!   trace-event export.
//! * [`time::Clock`] — wall or manually-driven clocks so integration tests can
//!   be deterministic.
//! * [`fault`] — deterministic, seeded fault injection: the [`fault::FaultPlan`]
//!   / [`fault::FaultInjector`] the engine's injection points consult, plus the
//!   hand-rolled [`fault::SplitMix64`] PRNG and jittered-backoff helper.
//! * [`lockorder`] — the runtime lock-order validator: a thread-local stack of
//!   held [`lockorder::LockClass`]es that panics (and records a violation) on
//!   any acquisition contradicting the canonical order `squery-lint` proves
//!   statically. Off by default; `SQUERY_LOCK_ORDER=1` arms it.
//! * [`names`] — the registry of every metric, span, and event name the
//!   engine may emit; `squery-lint` SQ003 keeps call sites honest against it.
//! * [`error`] — the shared error type.

pub mod codec;
pub mod config;
pub mod error;
pub mod fault;
pub mod ids;
pub mod lockorder;
pub mod metrics;
pub mod names;
pub mod partition;
pub mod schema;
pub mod sketch;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod value;

pub use error::{SqError, SqResult};
pub use ids::{NodeId, OperatorId, PartitionId, SnapshotId};
pub use partition::Partitioner;
pub use schema::{DataType, Field, Schema};
pub use value::Value;
