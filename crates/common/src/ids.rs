//! Strongly-typed identifiers shared across the workspace.
//!
//! Newtypes rather than bare integers: mixing up a node id and a partition id
//! is exactly the kind of bug a partitioned system breeds.

use std::fmt;

/// Identifier of a simulated cluster node.
///
/// The reproduction runs the whole "cluster" inside one process; a node is a
/// placement domain: a set of worker threads plus the slice of grid partitions
/// whose primary replica it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a grid partition (0..partition_count).
///
/// Matches Hazelcast's notion of a partition; the default partition count is
/// 271, like IMDG's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

/// Identifier of a checkpoint / state snapshot.
///
/// Snapshot ids are assigned by the checkpoint coordinator in strictly
/// increasing order. The snapshot registry publishes the latest *committed*
/// id atomically; queries default to it (paper §II: "By default, the latest
/// snapshot id is implied").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotId(pub u64);

/// Identifier of a logical stateful operator (a DAG vertex), not one of its
/// parallel instances.
///
/// The operator's *name* (not this id) names its live-state map and its
/// `snapshot_<name>` map, per the paper's §V-B convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub u32);

/// Identifier of a single parallel instance of a vertex: `(vertex, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId {
    /// The vertex this instance belongs to.
    pub vertex: OperatorId,
    /// Index within the vertex's parallelism (0..parallelism).
    pub index: u32,
}

impl SnapshotId {
    /// The sentinel "no snapshot committed yet" id.
    pub const NONE: SnapshotId = SnapshotId(0);

    /// The next snapshot id in sequence.
    pub fn next(self) -> SnapshotId {
        SnapshotId(self.0 + 1)
    }

    /// Whether this id denotes a real snapshot (ids start at 1).
    pub fn is_some(self) -> bool {
        self.0 > 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ss{}", self.0)
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.vertex, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_id_sequencing() {
        assert!(!SnapshotId::NONE.is_some());
        let s1 = SnapshotId::NONE.next();
        assert_eq!(s1, SnapshotId(1));
        assert!(s1.is_some());
        assert!(s1.next() > s1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(2).to_string(), "node-2");
        assert_eq!(PartitionId(17).to_string(), "p17");
        assert_eq!(SnapshotId(9).to_string(), "ss9");
        let inst = InstanceId {
            vertex: OperatorId(3),
            index: 1,
        };
        assert_eq!(inst.to_string(), "op3#1");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(SnapshotId(8) < SnapshotId(9));
        assert!(PartitionId(0) < PartitionId(270));
    }
}
