//! Self-describing binary encoding for [`Value`]s.
//!
//! Used for: sizing snapshots (the paper reports snapshot state sizes, e.g.
//! "the query on 100K keys works on a dataset of size 22.4MB"), shipping
//! replication traffic through the simulated network model, and the baseline
//! engine's *blob* snapshots ("Formerly, snapshot state in the KV store was a
//! mere blob structure", §VI-A) — the Jet-baseline writes `encode(state)` as
//! one opaque byte blob, whereas S-QUERY writes queryable per-key entries.
//!
//! Format: one tag byte per value, LEB128 varints for integers and lengths,
//! IEEE-754 bits for floats, UTF-8 for strings. Structs are self-describing
//! (field names travel with the value).

use crate::error::{SqError, SqResult};
use crate::schema::{DataType, Schema};
use crate::value::{StructValue, Value};
use bytes::{Buf, BufMut, BytesMut};
use std::sync::Arc;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_STRUCT: u8 = 8;
const TAG_BYTES: u8 = 9;

/// Encode a value, appending to `buf`.
pub fn encode_into(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            put_varint(buf, zigzag(*i));
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_u64(f.to_bits());
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Timestamp(t) => {
            buf.put_u8(TAG_TIMESTAMP);
            put_varint(buf, zigzag(*t));
        }
        Value::List(items) => {
            buf.put_u8(TAG_LIST);
            put_varint(buf, items.len() as u64);
            for v in items.iter() {
                encode_into(v, buf);
            }
        }
        Value::Struct(sv) => {
            buf.put_u8(TAG_STRUCT);
            put_varint(buf, sv.len() as u64);
            for (field, v) in sv.schema().fields().iter().zip(sv.values()) {
                put_varint(buf, field.name.len() as u64);
                buf.put_slice(field.name.as_bytes());
                encode_into(v, buf);
            }
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
    }
}

/// Encode a value into a fresh buffer.
pub fn encode(value: &Value) -> BytesMut {
    let mut buf = BytesMut::with_capacity(32);
    encode_into(value, &mut buf);
    buf
}

/// The encoded size of a value, in bytes, without materializing the encoding.
pub fn encoded_len(value: &Value) -> usize {
    match value {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(i) => 1 + varint_len(zigzag(*i)),
        Value::Float(_) => 9,
        Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
        Value::Timestamp(t) => 1 + varint_len(zigzag(*t)),
        Value::List(items) => {
            1 + varint_len(items.len() as u64) + items.iter().map(encoded_len).sum::<usize>()
        }
        Value::Struct(sv) => {
            let mut n = 1 + varint_len(sv.len() as u64);
            for (field, v) in sv.schema().fields().iter().zip(sv.values()) {
                n += varint_len(field.name.len() as u64) + field.name.len();
                n += encoded_len(v);
            }
            n
        }
        Value::Bytes(b) => 1 + varint_len(b.len() as u64) + b.len(),
    }
}

/// Decode one value from the front of `buf`, advancing it.
pub fn decode_from(buf: &mut &[u8]) -> SqResult<Value> {
    let tag = take_u8(buf)?;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(unzigzag(take_varint(buf)?))),
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(truncated());
            }
            Ok(Value::Float(f64::from_bits(buf.get_u64())))
        }
        TAG_STR => {
            let len = take_varint(buf)? as usize;
            let bytes = take_slice(buf, len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| SqError::Codec("invalid utf-8 in string".into()))?;
            Ok(Value::str(s))
        }
        TAG_TIMESTAMP => Ok(Value::Timestamp(unzigzag(take_varint(buf)?))),
        TAG_LIST => {
            let len = take_varint(buf)? as usize;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(decode_from(buf)?);
            }
            Ok(Value::list(items))
        }
        TAG_STRUCT => {
            let len = take_varint(buf)? as usize;
            let mut names = Vec::with_capacity(len.min(1024));
            let mut values = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                let name_len = take_varint(buf)? as usize;
                let name_bytes = take_slice(buf, name_len)?;
                let name = std::str::from_utf8(name_bytes)
                    .map_err(|_| SqError::Codec("invalid utf-8 in field name".into()))?
                    .to_string();
                let value = decode_from(buf)?;
                names.push(name);
                values.push(value);
            }
            let fields = names
                .into_iter()
                .zip(values.iter())
                .map(|(name, v)| (name, infer_dtype(v)))
                .collect::<Vec<_>>();
            let schema = Arc::new(Schema::new(fields));
            Ok(Value::Struct(StructValue::new(schema, values)))
        }
        TAG_BYTES => {
            let len = take_varint(buf)? as usize;
            let bytes = take_slice(buf, len)?;
            Ok(Value::Bytes(Arc::from(bytes)))
        }
        other => Err(SqError::Codec(format!("unknown value tag {other}"))),
    }
}

/// Decode a value that must consume the whole buffer.
pub fn decode(mut buf: &[u8]) -> SqResult<Value> {
    let v = decode_from(&mut buf)?;
    if !buf.is_empty() {
        return Err(SqError::Codec(format!(
            "{} trailing bytes after value",
            buf.len()
        )));
    }
    Ok(v)
}

/// The declared type that best describes a runtime value.
pub fn infer_dtype(v: &Value) -> DataType {
    match v {
        Value::Null => DataType::Any,
        Value::Bool(_) => DataType::Bool,
        Value::Int(_) => DataType::Int,
        Value::Float(_) => DataType::Float,
        Value::Str(_) => DataType::Str,
        Value::Timestamp(_) => DataType::Timestamp,
        Value::List(_) => DataType::List,
        Value::Struct(_) => DataType::Struct,
        Value::Bytes(_) => DataType::Bytes,
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn take_u8(buf: &mut &[u8]) -> SqResult<u8> {
    if buf.is_empty() {
        return Err(truncated());
    }
    let b = buf[0];
    *buf = &buf[1..];
    Ok(b)
}

fn take_varint(buf: &mut &[u8]) -> SqResult<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = take_u8(buf)?;
        if shift >= 64 {
            return Err(SqError::Codec("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn take_slice<'a>(buf: &mut &'a [u8], len: usize) -> SqResult<&'a [u8]> {
    if buf.len() < len {
        return Err(truncated());
    }
    let (head, tail) = buf.split_at(len);
    *buf = tail;
    Ok(head)
}

fn truncated() -> SqError {
    SqError::Codec("truncated buffer".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;

    fn roundtrip(v: &Value) -> Value {
        let bytes = encode(v);
        assert_eq!(bytes.len(), encoded_len(v), "encoded_len must match");
        decode(&bytes).unwrap()
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::str(""),
            Value::str("hello world"),
            Value::Timestamp(1_650_000_000_000_000),
            Value::Bytes(std::sync::Arc::from(&b"\x00\x01\xff"[..])),
        ] {
            assert_eq!(roundtrip(&v), v, "roundtrip failed for {v:?}");
        }
    }

    #[test]
    fn list_and_struct_roundtrip() {
        let s = schema(vec![
            ("lat", DataType::Float),
            ("lon", DataType::Float),
            ("updated", DataType::Timestamp),
        ]);
        let rider = Value::record(
            &s,
            vec![
                Value::Float(52.01),
                Value::Float(4.36),
                Value::Timestamp(1_000),
            ],
        );
        let v = Value::list(vec![rider.clone(), Value::Null, Value::Int(9)]);
        let back = roundtrip(&v);
        assert_eq!(back, v);
        // Struct decoding is self-describing: field names survive.
        let items = back.as_list().unwrap();
        let s2 = items[0].as_struct().unwrap();
        assert_eq!(s2.field("lat"), Some(&Value::Float(52.01)));
    }

    #[test]
    fn nan_roundtrips_via_bits() {
        let v = Value::Float(f64::NAN);
        let back = roundtrip(&v);
        match back {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = encode(&Value::str("abcdef"));
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&Value::Int(5));
        bytes.put_u8(0);
        assert!(matches!(decode(&bytes), Err(SqError::Codec(_))));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(decode(&[0x7f]), Err(SqError::Codec(_))));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_encoding_is_minimal() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }
}
