//! The checkpoint coordinator: marker injection and 2PC snapshot commit.
//!
//! One coordinator thread per job. Each round (periodic, or manually
//! triggered for deterministic tests):
//!
//! 1. **begin** — allocate the next snapshot id at the registry (probe t₀,
//!    the paper's "before phase 1 begins");
//! 2. **phase 1** — inject `Marker(ssid)` into every source instance and wait
//!    for one ack per live instance: every ack means that instance has
//!    snapshotted its state (probe t₁, "after phase 1 completes");
//! 3. **phase 2** — atomically commit the id at the registry and prune every
//!    snapshot store to the retention horizon (probe t₂, "after phase 2
//!    completes").
//!
//! The recorded `(t₁−t₀, t₂−t₀)` pairs are exactly the snapshot-2PC latency
//! distribution of the paper's Figures 10–12. If acks do not arrive in time
//! (a crashed worker), the checkpoint aborts: phase-1 writes are discarded
//! and the registry releases the id — queries keep reading the previous
//! committed snapshot throughout, as in Figure 1.

use crate::worker::{Ack, Shared, SourceCommand};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use squery_common::fault::{backoff_with_jitter, FaultAction};
use squery_common::lockorder::{self, LockClass};
use squery_common::telemetry::EventKind;
use squery_common::trace::{SpanCollector, SpanGuard};
use squery_common::{SnapshotId, SqError, SqResult};
use squery_storage::{Grid, SnapshotFreshness, SnapshotStore};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Timing record of one committed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// The committed snapshot id.
    pub ssid: SnapshotId,
    /// t₀ on the engine clock: when the round began (marker injection), in µs.
    pub began_at_us: u64,
    /// t₁−t₀: marker injection until the last phase-1 ack, in µs.
    pub phase1_us: u64,
    /// t₂−t₀: full 2PC duration including commit + pruning, in µs.
    pub total_us: u64,
    /// The round's global low watermark — the minimum event-time frontier
    /// over all phase-1 acks — rebased into µs since the unix epoch so it
    /// stays meaningful after recovery (0 = no instance reported one).
    pub watermark_us: u64,
    /// Seal stamp in µs since the unix epoch, taken immediately before the
    /// durable seal. Epoch-domain so a restarted process can still bound
    /// the snapshot's age.
    pub sealed_at_us: u64,
}

/// Shared, append-only log of committed checkpoints.
#[derive(Clone, Default)]
pub struct CheckpointStats {
    records: Arc<Mutex<Vec<CheckpointRecord>>>,
    aborted: Arc<Mutex<u64>>,
}

impl CheckpointStats {
    /// A new empty log.
    pub fn new() -> CheckpointStats {
        CheckpointStats::default()
    }

    fn push(&self, record: CheckpointRecord) {
        let _lo = lockorder::acquired(LockClass::CheckpointStats);
        self.records.lock().push(record);
    }

    fn count_abort(&self) {
        let _lo = lockorder::acquired(LockClass::CheckpointStats);
        let _lo = lockorder::acquired(LockClass::CheckpointStats);
        *self.aborted.lock() += 1;
    }

    /// All committed checkpoint timings so far.
    pub fn records(&self) -> Vec<CheckpointRecord> {
        let _lo = lockorder::acquired(LockClass::CheckpointStats);
        self.records.lock().clone()
    }

    /// Number of aborted checkpoint attempts.
    pub fn aborted(&self) -> u64 {
        let _lo = lockorder::acquired(LockClass::CheckpointStats);
        *self.aborted.lock()
    }
}

/// Everything one checkpoint round needs.
pub struct CoordinatorContext {
    /// The grid (registry + pruning targets).
    pub grid: Arc<Grid>,
    /// Control channels into every source instance.
    pub source_controls: Vec<Sender<SourceCommand>>,
    /// Phase-1 ack stream from all instances.
    pub ack_rx: Receiver<Ack>,
    /// Shared worker state (live-instance count, clock, poison).
    pub shared: Arc<Shared>,
    /// Snapshot stores this job writes (for pruning and abort-discard),
    /// including the `__offsets` store.
    pub stores: Vec<Arc<SnapshotStore>>,
    /// Timing log.
    pub stats: CheckpointStats,
    /// How long to wait for phase-1 acks before aborting.
    pub ack_timeout: Duration,
    /// How many times an aborted round is retried with backoff before the
    /// error surfaces (0 = the pre-supervision behaviour).
    pub retries: u32,
    /// Base backoff between retries (exponential, jittered).
    pub retry_backoff: Duration,
}

/// RAII wrapper around a round's `checkpoint_round` root span. Publishes
/// the root id as the collector's *current round* so worker threads can
/// parent their marker-alignment spans under it, and clears the publication
/// on every exit path (the root span itself files when the inner guard
/// drops, after the clear). Inert when tracing is disabled.
struct RoundSpan {
    collector: SpanCollector,
    guard: SpanGuard,
}

impl RoundSpan {
    fn begin(collector: &SpanCollector, ssid: SnapshotId) -> RoundSpan {
        let mut guard = collector.start("checkpoint_round");
        guard.label("ssid", ssid.0);
        collector.set_current_round(guard.id());
        RoundSpan {
            collector: collector.clone(),
            guard,
        }
    }

    /// A phase span nested under the round root (inert when the root is).
    fn child(&self, kind: &'static str) -> SpanGuard {
        match self.guard.id() {
            Some(id) => self.collector.child(kind, id),
            None => SpanGuard::inert(),
        }
    }
}

impl Drop for RoundSpan {
    fn drop(&mut self) {
        self.collector.set_current_round(None);
    }
}

/// Funnel for *every* early exit of [`run_checkpoint`]: discard phase-1
/// writes from all stores, release the registry id, count and log the
/// abort. The registry abort is tolerant — a concurrent `crash()` may have
/// already released the id — so an aborted round can never wedge the next
/// `begin()`.
fn abort_round(ctx: &CoordinatorContext, ssid: SnapshotId, reason: &str) -> SqError {
    let spans = ctx.grid.telemetry().spans();
    let mut abort_span = match spans.current_round() {
        Some(root) => spans.child("checkpoint_abort", root),
        None => spans.start("checkpoint_abort"),
    };
    abort_span.label("ssid", ssid.0);
    abort_span.label("reason", reason);
    for store in &ctx.stores {
        store.discard(ssid);
    }
    if let Err(e) = ctx.grid.registry().abort(ssid) {
        // Already released by a racing crash/abort — log, don't fail: the
        // invariant we need (nothing left in-progress under this id) holds.
        ctx.grid.telemetry().event(
            EventKind::CheckpointAborted,
            None,
            Some(ssid.0),
            None,
            format!("registry already released: {e}"),
        );
    }
    ctx.stats.count_abort();
    ctx.grid.telemetry().event(
        EventKind::CheckpointAborted,
        None,
        Some(ssid.0),
        None,
        reason.to_string(),
    );
    SqError::Runtime(format!("checkpoint {ssid} aborted: {reason}"))
}

/// Run one complete checkpoint round; returns the committed id.
pub fn run_checkpoint(ctx: &CoordinatorContext) -> SqResult<SnapshotId> {
    // Drain stale acks from a previously aborted round.
    while ctx.ack_rx.try_recv().is_ok() {}

    let registry = ctx.grid.registry();
    let telemetry = ctx.grid.telemetry();
    let injector = ctx.grid.fault_injector();
    let t0 = ctx.shared.clock.now_micros();
    let ssid = registry.begin()?;
    let round = RoundSpan::begin(telemetry.spans(), ssid);
    let mut phase1_span = round.child("checkpoint_phase1");
    telemetry.event(EventKind::CheckpointBegin, None, Some(ssid.0), None, "");
    // Read the ack quota *before* injecting markers: a worker that acks and
    // then dies in reaction to the marker must not deflate `expected` first,
    // or the wait loop and the dead-worker abort guard (both conditioned on
    // `acked < expected`) are skipped and the torn round commits. Graceful
    // exits in the window are still handled by the in-loop `acked >= live`
    // re-check.
    let expected = ctx.shared.live_instances.load(Ordering::Acquire) as usize;
    for ctl in &ctx.source_controls {
        // A dropped source control means the job is shutting down.
        if ctl.send(SourceCommand::Marker(ssid)).is_err() {
            return Err(abort_round(ctx, ssid, "job is shutting down"));
        }
    }
    let mut acked = 0usize;
    let mut ack_ordinal = 0u32;
    // Global low watermark of the consistent cut: min over the frontiers
    // the acks carry. Zero frontiers (instance saw no event time yet) are
    // excluded so one cold instance doesn't erase the known bound.
    let mut low_wm = u64::MAX;
    let deadline = std::time::Instant::now() + ctx.ack_timeout;
    while acked < expected {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            break;
        }
        match ctx
            .ack_rx
            .recv_timeout(remaining.min(Duration::from_millis(20)))
        {
            Ok(ack) if ack.ssid == ssid => {
                let action = injector
                    .as_ref()
                    .and_then(|i| i.on_phase1_ack(ssid.0, ack_ordinal));
                ack_ordinal += 1;
                match action {
                    // Lost on the wire: the instance snapshotted, but the
                    // coordinator never learns — the round times out.
                    Some(FaultAction::DropAck) => continue,
                    Some(FaultAction::DelayAck { micros }) => {
                        std::thread::sleep(Duration::from_micros(micros));
                        acked += 1;
                    }
                    _ => acked += 1,
                }
                if ack.watermark_us > 0 {
                    low_wm = low_wm.min(ack.watermark_us);
                }
            }
            Ok(_) => {} // stale ack from an aborted round
            Err(_) => {
                // A panicked worker can never ack: stop waiting right away.
                if ctx.shared.dead_workers.load(Ordering::Acquire) > 0 {
                    break;
                }
                // Re-check: instances may have exited (lowering `expected`).
                let live = ctx.shared.live_instances.load(Ordering::Acquire) as usize;
                if acked >= live {
                    break;
                }
                if ctx.shared.poison.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
    // A worker *death* (as opposed to a graceful exit during shutdown)
    // makes the round unsalvageable: instances downstream of the dead one
    // tear down without snapshotting, so committing whatever acks arrived
    // would publish a torn snapshot — exactly the state recovery would
    // then restore. Abort and leave the last committed snapshot in place.
    let dead = ctx.shared.dead_workers.load(Ordering::Acquire);
    if acked < expected && dead > 0 {
        return Err(abort_round(
            ctx,
            ssid,
            &format!("{acked}/{expected} acks, {dead} dead worker(s)"),
        ));
    }
    let live_now = ctx.shared.live_instances.load(Ordering::Acquire) as usize;
    if acked < expected.min(live_now.max(acked)) && acked < expected {
        // Not everyone acked: abort, discard phase-1 writes.
        return Err(abort_round(ctx, ssid, &format!("{acked}/{expected} acks")));
    }
    let t1 = ctx.shared.clock.now_micros();
    phase1_span.label("acks", acked);
    drop(phase1_span);
    let mut phase2_span = round.child("checkpoint_phase2");
    telemetry.event(
        EventKind::CheckpointPhase1,
        None,
        Some(ssid.0),
        Some(t1 - t0),
        format!("{acked} acks"),
    );
    // The window between phases: phase-1 writes are durable but the id is
    // not yet published. Faults here are the interesting 2PC crash points.
    if let Some(injector) = &injector {
        match injector.on_phase2(ssid.0) {
            Some(FaultAction::FailCommit) => {
                return Err(abort_round(ctx, ssid, "injected commit failure"));
            }
            Some(FaultAction::KillCoordinator) => {
                ctx.shared.coordinator_dead.store(true, Ordering::SeqCst);
                return Err(abort_round(
                    ctx,
                    ssid,
                    "injected coordinator kill between phases",
                ));
            }
            _ => {}
        }
    }
    // Freshness stamps are persisted (WAL seal) to outlive this process, so
    // they are rebased from the engine clock into the unix-epoch domain
    // here, at the durability boundary. A recovered process's own epoch
    // "now" is then directly comparable: staleness of an old snapshot reads
    // as its true age, not ~0 against a freshly-zeroed clock.
    let watermark_us = if low_wm == u64::MAX {
        0
    } else {
        ctx.shared.clock.to_epoch_micros(low_wm)
    };
    let sealed_at_us = ctx.shared.clock.epoch_micros();
    // Durable seal first: the WAL's commit record lands *before* the
    // in-memory publication. A kill between the two leaves a sealed round
    // the in-memory side was about to publish anyway — recovery restores
    // it, and snapshot monotonicity holds. The reverse order would publish
    // a round a crash could then lose. A seal failure aborts like any
    // other phase-2 failure (phase-1 WAL deltas become an unsealed tail).
    // The seal record carries the round's freshness so it survives a cold
    // start alongside the state it bounds.
    if ctx.grid.wal().is_some() {
        let mut seal_span = round.child("wal_seal");
        seal_span.label("ssid", ssid.0);
        if let Err(e) = ctx.grid.wal_seal_with(ssid, watermark_us, sealed_at_us) {
            drop(seal_span);
            return Err(abort_round(ctx, ssid, &format!("WAL seal failed: {e}")));
        }
    }
    // Phase 2: atomic publication + retention pruning.
    let horizon = match registry.commit_with_freshness(
        ssid,
        SnapshotFreshness {
            watermark_us,
            sealed_at_us,
        },
    ) {
        Ok(h) => h,
        Err(e) => return Err(abort_round(ctx, ssid, &format!("commit failed: {e}"))),
    };
    for store in &ctx.stores {
        store.prune_below(horizon);
    }
    phase2_span.label("horizon", horizon.0);
    drop(phase2_span);
    let t2 = ctx.shared.clock.now_micros();
    telemetry.event(
        EventKind::CheckpointCommitted,
        None,
        Some(ssid.0),
        Some(t2 - t0),
        "",
    );
    telemetry
        .histogram("checkpoint_phase1_us", &[])
        .record(t1 - t0);
    telemetry
        .histogram("checkpoint_total_us", &[])
        .record(t2 - t0);
    if watermark_us > 0 {
        // How stale this snapshot already was at its own seal instant.
        telemetry
            .histogram("snapshot_staleness_us", &[])
            .record(sealed_at_us.saturating_sub(watermark_us));
    }
    ctx.stats.push(CheckpointRecord {
        ssid,
        began_at_us: t0,
        phase1_us: t1 - t0,
        total_us: t2 - t0,
        watermark_us,
        sealed_at_us,
    });
    Ok(ssid)
}

/// Run a checkpoint round, retrying aborted rounds with exponential
/// backoff + jitter up to `ctx.retries` extra attempts.
///
/// Retrying is pointless once a worker has died, the coordinator has been
/// killed, or the job is poisoned — those need the supervisor's full
/// rollback recovery, not another marker round — so such errors surface
/// immediately.
pub fn run_checkpoint_with_retry(ctx: &CoordinatorContext) -> SqResult<SnapshotId> {
    let telemetry = ctx.grid.telemetry();
    let mut attempt = 0u32;
    loop {
        match run_checkpoint(ctx) {
            Ok(ssid) => {
                if attempt > 0 {
                    if let Some(injector) = ctx.grid.fault_injector() {
                        injector.resolve_pending("recovered_by_retry");
                    }
                }
                return Ok(ssid);
            }
            Err(e) => {
                let unrecoverable = ctx.shared.poison.load(Ordering::Acquire)
                    || ctx.shared.coordinator_dead.load(Ordering::SeqCst)
                    || ctx.shared.dead_workers.load(Ordering::Acquire) > 0;
                if unrecoverable || attempt >= ctx.retries {
                    return Err(e);
                }
                telemetry.counter("checkpoint_retries_total", &[]).inc();
                telemetry.event(
                    EventKind::CheckpointRetried,
                    None,
                    None,
                    None,
                    format!("attempt {} failed: {e}", attempt + 1),
                );
                // The retry span covers the backoff wait before the next
                // attempt (the attempt itself records its own round span).
                let mut retry_span = telemetry.spans().start("checkpoint_retry");
                retry_span.label("attempt", attempt + 1);
                retry_span.label("error", &e);
                let seed = ctx
                    .grid
                    .fault_injector()
                    .map(|i| i.seed())
                    .unwrap_or_default();
                std::thread::sleep(backoff_with_jitter(
                    ctx.retry_backoff,
                    attempt,
                    ctx.retry_backoff * 20,
                    seed ^ u64::from(attempt),
                ));
                drop(retry_span);
                attempt += 1;
            }
        }
    }
}

/// Control messages into the coordinator thread.
enum CoordMsg {
    /// Run a checkpoint now; reply with the result.
    Trigger(Sender<SqResult<SnapshotId>>),
    /// Shut the coordinator down.
    Stop,
}

/// Handle to the coordinator thread.
pub struct Coordinator {
    control_tx: Sender<CoordMsg>,
    thread: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Start the coordinator; `interval = None` means manual triggering only.
    pub fn start(ctx: CoordinatorContext, interval: Option<Duration>) -> Coordinator {
        let (control_tx, control_rx) = unbounded::<CoordMsg>();
        let thread = std::thread::Builder::new()
            .name("squery-checkpoint-coordinator".into())
            .spawn(move || {
                let tick = interval.unwrap_or(Duration::from_secs(3600));
                loop {
                    match control_rx.recv_timeout(tick) {
                        Ok(CoordMsg::Stop) => break,
                        Ok(CoordMsg::Trigger(reply)) => {
                            let result = run_checkpoint_with_retry(&ctx);
                            let _ = reply.send(result);
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            if interval.is_some()
                                && !ctx.shared.poison.load(Ordering::Acquire)
                                && !ctx.shared.coordinator_dead.load(Ordering::SeqCst)
                                && ctx.shared.live_instances.load(Ordering::Acquire) > 0
                            {
                                let _ = run_checkpoint_with_retry(&ctx);
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn coordinator");
        Coordinator {
            control_tx,
            thread: Some(thread),
        }
    }

    /// Run a checkpoint now and wait for it to commit (or fail).
    pub fn trigger(&self) -> SqResult<SnapshotId> {
        let (reply_tx, reply_rx) = bounded(1);
        self.control_tx
            .send(CoordMsg::Trigger(reply_tx))
            .map_err(|_| SqError::Runtime("coordinator stopped".into()))?;
        reply_rx
            .recv_timeout(Duration::from_secs(60))
            .map_err(|_| SqError::Runtime("checkpoint trigger timed out".into()))?
    }

    /// Stop the coordinator thread (no further checkpoints).
    pub fn stop(mut self) {
        let _ = self.control_tx.send(CoordMsg::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        let _ = self.control_tx.send(CoordMsg::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::metrics::SharedHistogram;
    use squery_common::time::Clock;
    use squery_common::Partitioner;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64};

    fn context(
        n_sources: usize,
        live: u32,
    ) -> (
        CoordinatorContext,
        Vec<Receiver<SourceCommand>>,
        Sender<Ack>,
    ) {
        let grid = Grid::single_node();
        let (ack_tx, ack_rx) = unbounded();
        let mut controls = Vec::new();
        let mut control_rxs = Vec::new();
        for _ in 0..n_sources {
            let (tx, rx) = unbounded();
            controls.push(tx);
            control_rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            clock: Clock::wall(),
            poison: AtomicBool::new(false),
            ack_tx: ack_tx.clone(),
            latency: SharedHistogram::new(),
            sink_count: AtomicU64::new(0),
            source_count: AtomicU64::new(0),
            live_instances: AtomicU32::new(live),
            exhausted_sources: AtomicU32::new(0),
            partitioner: Partitioner::new(16),
            telemetry: grid.telemetry().clone(),
            faults: grid.fault_injector(),
            dead_workers: AtomicU32::new(0),
            coordinator_dead: AtomicBool::new(false),
            failure: Mutex::new(None),
        });
        let stores = vec![grid.snapshot_store("op")];
        (
            CoordinatorContext {
                grid,
                source_controls: controls,
                ack_rx,
                shared,
                stores,
                stats: CheckpointStats::new(),
                ack_timeout: Duration::from_millis(300),
                retries: 0,
                retry_backoff: Duration::from_millis(5),
            },
            control_rxs,
            ack_tx,
        )
    }

    #[test]
    fn checkpoint_commits_after_all_acks() {
        let (ctx, control_rxs, ack_tx) = context(1, 2);
        // Simulate the two instances: respond to the marker with acks.
        let responder = std::thread::spawn(move || {
            let cmd = control_rxs[0].recv().unwrap();
            let SourceCommand::Marker(ssid) = cmd else {
                panic!("expected marker")
            };
            ack_tx
                .send(Ack {
                    ssid,
                    watermark_us: 0,
                })
                .unwrap();
            ack_tx
                .send(Ack {
                    ssid,
                    watermark_us: 0,
                })
                .unwrap();
        });
        let ssid = run_checkpoint(&ctx).unwrap();
        responder.join().unwrap();
        assert_eq!(ssid, SnapshotId(1));
        assert_eq!(ctx.grid.registry().latest_committed(), ssid);
        let records = ctx.stats.records();
        assert_eq!(records.len(), 1);
        assert!(records[0].total_us >= records[0].phase1_us);
        assert!(
            records[0].began_at_us > 0,
            "wall-clock begin stamp recorded"
        );
        // The round leaves a begin → phase1 → committed event trail.
        let kinds: Vec<&'static str> = ctx
            .grid
            .telemetry()
            .events()
            .snapshot()
            .iter()
            .map(|e| e.kind.as_str())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "checkpoint_begin",
                "checkpoint_phase1",
                "checkpoint_committed"
            ]
        );
    }

    #[test]
    fn traced_round_nests_phases_under_the_round_root() {
        let (ctx, control_rxs, ack_tx) = context(1, 1);
        ctx.grid.telemetry().spans().set_enabled(true);
        let responder = std::thread::spawn(move || {
            let SourceCommand::Marker(ssid) = control_rxs[0].recv().unwrap() else {
                panic!("expected marker")
            };
            ack_tx
                .send(Ack {
                    ssid,
                    watermark_us: 0,
                })
                .unwrap();
        });
        run_checkpoint(&ctx).unwrap();
        responder.join().unwrap();
        let spans = ctx.grid.telemetry().spans().snapshot();
        let root = spans
            .iter()
            .find(|s| s.kind == "checkpoint_round")
            .expect("round root span");
        assert_eq!(root.label("ssid"), Some("1"));
        assert_eq!(root.parent, None);
        let p1 = spans
            .iter()
            .find(|s| s.kind == "checkpoint_phase1")
            .expect("phase1 span");
        assert_eq!(p1.parent, Some(root.id));
        assert_eq!(p1.label("acks"), Some("1"));
        let p2 = spans
            .iter()
            .find(|s| s.kind == "checkpoint_phase2")
            .expect("phase2 span");
        assert_eq!(p2.parent, Some(root.id));
        assert!(p2.start_us >= p1.end_us, "phases do not overlap");
        // The round publication is cleared once the round is over.
        assert_eq!(ctx.grid.telemetry().spans().current_round(), None);
    }

    #[test]
    fn traced_abort_span_parents_under_the_failed_round() {
        let (ctx, _control_rxs, ack_tx) = context(1, 1);
        ctx.grid.telemetry().spans().set_enabled(true);
        drop(ack_tx); // nobody will ack: the round times out and aborts
        run_checkpoint(&ctx).unwrap_err();
        let spans = ctx.grid.telemetry().spans().snapshot();
        let root = spans
            .iter()
            .find(|s| s.kind == "checkpoint_round")
            .expect("round root span");
        let abort = spans
            .iter()
            .find(|s| s.kind == "checkpoint_abort")
            .expect("abort span");
        assert_eq!(abort.parent, Some(root.id));
        assert_eq!(abort.label("reason"), Some("0/1 acks"));
        assert_eq!(ctx.grid.telemetry().spans().current_round(), None);
    }

    #[test]
    fn retried_round_records_a_retry_span() {
        use squery_common::fault::{
            FaultInjector, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint,
        };
        let (mut ctx, control_rxs, ack_tx) = context(1, 1);
        ctx.retries = 2;
        ctx.grid.telemetry().spans().set_enabled(true);
        let plan = FaultPlan::new(7).with(FaultSpec {
            point: InjectionPoint::Phase1Ack,
            action: FaultAction::DropAck,
            trigger: FaultTrigger::default(),
            once: true,
        });
        ctx.grid
            .attach_fault_injector(Arc::new(FaultInjector::new(plan)));
        let responder = std::thread::spawn(move || {
            while let Ok(cmd) = control_rxs[0].recv() {
                if let SourceCommand::Marker(ssid) = cmd {
                    let _ = ack_tx.send(Ack {
                        ssid,
                        watermark_us: 0,
                    });
                }
            }
        });
        run_checkpoint_with_retry(&ctx).unwrap();
        let spans = ctx.grid.telemetry().spans().snapshot();
        let retry = spans
            .iter()
            .find(|s| s.kind == "checkpoint_retry")
            .expect("retry span");
        assert_eq!(retry.label("attempt"), Some("1"));
        assert_eq!(
            spans
                .iter()
                .filter(|s| s.kind == "checkpoint_round")
                .count(),
            2,
            "one aborted round, one committed round"
        );
        drop(ctx);
        responder.join().unwrap();
    }

    #[test]
    fn missing_acks_abort_and_discard() {
        let (ctx, _control_rxs, ack_tx) = context(1, 2);
        // Phase-1 write that must be discarded on abort.
        ctx.stores[0].write_partition(
            SnapshotId(1),
            squery_common::PartitionId(0),
            vec![(
                squery_common::Value::Int(1),
                Some(squery_common::Value::Int(1)),
            )],
            true,
        );
        drop(ack_tx); // nobody will ack
        let err = run_checkpoint(&ctx).unwrap_err();
        assert!(matches!(err, SqError::Runtime(_)), "{err}");
        assert_eq!(ctx.grid.registry().latest_committed(), SnapshotId::NONE);
        assert_eq!(ctx.grid.registry().in_progress(), None, "id released");
        assert!(ctx.stores[0].stored_ssids().is_empty(), "write discarded");
        assert_eq!(ctx.stats.aborted(), 1);
    }

    /// A worker death mid-round must abort even though the dying cascade
    /// also drops `live_instances` below the ack count — committing the
    /// partial phase-1 writes would publish a torn snapshot that recovery
    /// then restores (losing every record since the previous checkpoint).
    #[test]
    fn worker_death_mid_round_aborts_instead_of_committing_torn_snapshot() {
        let (ctx, control_rxs, ack_tx) = context(1, 4);
        let shared = Arc::clone(&ctx.shared);
        let responder = std::thread::spawn(move || {
            let SourceCommand::Marker(ssid) = control_rxs[0].recv().unwrap() else {
                panic!("expected marker")
            };
            // The source acks (and saves a partial phase-1 write), then
            // panics; everything downstream tears down without acking.
            ack_tx
                .send(Ack {
                    ssid,
                    watermark_us: 0,
                })
                .unwrap();
            shared.dead_workers.fetch_add(1, Ordering::AcqRel);
            shared.live_instances.store(0, Ordering::Release);
        });
        let err = run_checkpoint(&ctx).unwrap_err();
        responder.join().unwrap();
        assert!(err.to_string().contains("dead worker"), "{err}");
        assert_eq!(
            ctx.grid.registry().latest_committed(),
            SnapshotId::NONE,
            "torn round must not publish"
        );
        assert_eq!(ctx.grid.registry().in_progress(), None, "id released");
        assert_eq!(ctx.stats.aborted(), 1);
    }

    /// The committed round's freshness is the min over the acks' nonzero
    /// frontiers, recorded both in the registry and the checkpoint log.
    #[test]
    fn commit_records_min_watermark_over_acks() {
        let (ctx, control_rxs, ack_tx) = context(1, 3);
        let responder = std::thread::spawn(move || {
            let SourceCommand::Marker(ssid) = control_rxs[0].recv().unwrap() else {
                panic!("expected marker")
            };
            ack_tx
                .send(Ack {
                    ssid,
                    watermark_us: 500,
                })
                .unwrap();
            ack_tx
                .send(Ack {
                    ssid,
                    watermark_us: 300,
                })
                .unwrap();
            // A zero frontier is "unknown", not "behind": excluded from min.
            ack_tx
                .send(Ack {
                    ssid,
                    watermark_us: 0,
                })
                .unwrap();
        });
        let ssid = run_checkpoint(&ctx).unwrap();
        responder.join().unwrap();
        let fresh = ctx.grid.registry().freshness(ssid).expect("recorded");
        // Stamps are rebased into the unix-epoch domain at the seal.
        let expected_wm = ctx.shared.clock.to_epoch_micros(300);
        assert_eq!(fresh.watermark_us, expected_wm);
        assert!(
            fresh.sealed_at_us >= ctx.shared.clock.epoch_anchor_micros(),
            "seal stamp is epoch-domain"
        );
        let rec = ctx.stats.records()[0];
        assert_eq!(rec.watermark_us, expected_wm);
        assert_eq!(rec.sealed_at_us, fresh.sealed_at_us);
        let staleness = ctx
            .grid
            .telemetry()
            .histograms()
            .into_iter()
            .find(|(k, _)| k.name == "snapshot_staleness_us")
            .expect("staleness histogram fed at commit")
            .1;
        assert_eq!(staleness.count(), 1);
    }

    #[test]
    fn commit_prunes_to_retention_horizon() {
        let (ctx, control_rxs, ack_tx) = context(1, 1);
        let responder = std::thread::spawn(move || {
            for _ in 0..3 {
                if let Ok(SourceCommand::Marker(ssid)) = control_rxs[0].recv() {
                    ack_tx
                        .send(Ack {
                            ssid,
                            watermark_us: 0,
                        })
                        .unwrap();
                }
            }
        });
        for _ in 0..3 {
            run_checkpoint(&ctx).unwrap();
        }
        responder.join().unwrap();
        // Default retention is 2: after committing 1,2,3 only 2,3 remain
        // queryable.
        assert_eq!(
            ctx.grid.registry().committed_ssids(),
            vec![SnapshotId(2), SnapshotId(3)]
        );
    }

    #[test]
    fn coordinator_thread_manual_trigger() {
        let (ctx, control_rxs, ack_tx) = context(1, 1);
        let stats = ctx.stats.clone();
        let responder = std::thread::spawn(move || {
            while let Ok(cmd) = control_rxs[0].recv() {
                if let SourceCommand::Marker(ssid) = cmd {
                    let _ = ack_tx.send(Ack {
                        ssid,
                        watermark_us: 0,
                    });
                }
            }
        });
        let coordinator = Coordinator::start(ctx, None);
        let s1 = coordinator.trigger().unwrap();
        let s2 = coordinator.trigger().unwrap();
        assert_eq!(s1, SnapshotId(1));
        assert_eq!(s2, SnapshotId(2));
        assert_eq!(stats.records().len(), 2);
        coordinator.stop();
        responder.join().unwrap();
    }

    #[test]
    fn marker_send_failure_discards_and_releases_registry() {
        let (ctx, control_rxs, _ack_tx) = context(1, 1);
        // Phase-1 write that must not survive the abort.
        ctx.stores[0].write_partition(
            SnapshotId(1),
            squery_common::PartitionId(0),
            vec![(
                squery_common::Value::Int(1),
                Some(squery_common::Value::Int(1)),
            )],
            true,
        );
        drop(control_rxs); // marker send now fails: "job is shutting down"
        let err = run_checkpoint(&ctx).unwrap_err();
        assert!(err.to_string().contains("shutting down"), "{err}");
        assert_eq!(ctx.grid.registry().in_progress(), None, "id released");
        assert!(ctx.stores[0].stored_ssids().is_empty(), "write discarded");
        assert_eq!(ctx.stats.aborted(), 1, "abort counted on this path too");
    }

    #[test]
    fn injected_ack_drop_aborts_then_retry_commits() {
        use squery_common::fault::{
            FaultInjector, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint,
        };
        let (mut ctx, control_rxs, ack_tx) = context(1, 1);
        ctx.retries = 2;
        let plan = FaultPlan::new(7).with(FaultSpec {
            point: InjectionPoint::Phase1Ack,
            action: FaultAction::DropAck,
            trigger: FaultTrigger::default(),
            once: true,
        });
        ctx.grid
            .attach_fault_injector(Arc::new(FaultInjector::new(plan)));
        let responder = std::thread::spawn(move || {
            while let Ok(cmd) = control_rxs[0].recv() {
                if let SourceCommand::Marker(ssid) = cmd {
                    let _ = ack_tx.send(Ack {
                        ssid,
                        watermark_us: 0,
                    });
                }
            }
        });
        // Round 1 loses its only ack and times out; the retry commits.
        let ssid = run_checkpoint_with_retry(&ctx).unwrap();
        assert_eq!(ssid, SnapshotId(2), "first id burned by the abort");
        assert_eq!(ctx.stats.aborted(), 1);
        assert_eq!(
            ctx.grid
                .telemetry()
                .counter_value("checkpoint_retries_total", &[]),
            Some(1)
        );
        let records = ctx.grid.fault_injector().unwrap().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].outcome, "recovered_by_retry");
        drop(ctx);
        responder.join().unwrap();
    }

    #[test]
    fn injected_coordinator_kill_aborts_without_retry() {
        use squery_common::fault::{
            FaultInjector, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint,
        };
        let (mut ctx, control_rxs, ack_tx) = context(1, 1);
        ctx.retries = 3;
        let plan = FaultPlan::new(9).with(FaultSpec {
            point: InjectionPoint::Phase2Commit,
            action: FaultAction::KillCoordinator,
            trigger: FaultTrigger::default(),
            once: true,
        });
        ctx.grid
            .attach_fault_injector(Arc::new(FaultInjector::new(plan)));
        let responder = std::thread::spawn(move || {
            while let Ok(cmd) = control_rxs[0].recv() {
                if let SourceCommand::Marker(ssid) = cmd {
                    let _ = ack_tx.send(Ack {
                        ssid,
                        watermark_us: 0,
                    });
                }
            }
        });
        let err = run_checkpoint_with_retry(&ctx).unwrap_err();
        assert!(err.to_string().contains("coordinator kill"), "{err}");
        assert!(ctx.shared.coordinator_dead.load(Ordering::SeqCst));
        // A dead coordinator must not be retried in-place — that's the
        // supervisor's job.
        assert_eq!(
            ctx.grid
                .telemetry()
                .counter_value("checkpoint_retries_total", &[]),
            None
        );
        assert_eq!(ctx.grid.registry().latest_committed(), SnapshotId::NONE);
        assert_eq!(ctx.grid.registry().in_progress(), None);
        drop(ctx);
        responder.join().unwrap();
    }

    #[test]
    fn periodic_coordinator_checkpoints_on_its_own() {
        let (ctx, control_rxs, ack_tx) = context(1, 1);
        let grid = Arc::clone(&ctx.grid);
        let responder = std::thread::spawn(move || {
            while let Ok(cmd) = control_rxs[0].recv() {
                if let SourceCommand::Marker(ssid) = cmd {
                    let _ = ack_tx.send(Ack {
                        ssid,
                        watermark_us: 0,
                    });
                }
            }
        });
        let coordinator = Coordinator::start(ctx, Some(Duration::from_millis(20)));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while grid.registry().latest_committed().0 < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "no periodic checkpoints happened"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        coordinator.stop();
        responder.join().unwrap();
    }
}
