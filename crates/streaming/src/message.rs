//! Items flowing along dataflow edges.

use squery_common::{SnapshotId, Value};

/// A data record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Partitioning key (drives keyed routing and keyed state).
    pub key: Value,
    /// Payload.
    pub value: Value,
    /// Microsecond stamp assigned at the source — the *scheduled* emission
    /// time under offered load, so sink-side latency includes queueing delay
    /// (no coordinated omission).
    pub src_ts: u64,
    /// Which logical input the record arrived on (index of the incoming edge
    /// at the receiving vertex); lets one operator consume several streams,
    /// like NEXMark query 6's bid + auction inputs.
    pub port: u8,
}

impl Record {
    /// A record with timestamp and port zero (tests, simple pipelines).
    pub fn new(key: impl Into<Value>, value: impl Into<Value>) -> Record {
        Record {
            key: key.into(),
            value: value.into(),
            src_ts: 0,
            port: 0,
        }
    }

    /// This record re-stamped with a source timestamp.
    pub fn at(mut self, src_ts: u64) -> Record {
        self.src_ts = src_ts;
        self
    }
}

/// What travels on an edge.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A data record.
    Record(Record),
    /// A checkpoint marker (the red squares of the paper's Figure 3).
    Marker(SnapshotId),
    /// A low-watermark advance: every record the sender will ever emit on
    /// this edge carries `src_ts` at or above this microsecond stamp.
    /// Piggybacked in-band so downstream frontiers need no side channel.
    Watermark(u64),
    /// End of stream: the upstream instance will send nothing further.
    Eos,
}

/// An item tagged with the receiving instance's input-channel index, so the
/// alignment logic knows which upstream channel it came from.
#[derive(Debug, Clone)]
pub struct Tagged {
    /// Input-channel index at the receiver.
    pub from: u32,
    /// The item.
    pub item: Item,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builders() {
        let r = Record::new(1i64, "payload").at(42);
        assert_eq!(r.key, Value::Int(1));
        assert_eq!(r.value, Value::str("payload"));
        assert_eq!(r.src_ts, 42);
        assert_eq!(r.port, 0);
    }

    #[test]
    fn items_compare() {
        assert_eq!(Item::Marker(SnapshotId(9)), Item::Marker(SnapshotId(9)));
        assert_ne!(Item::Eos, Item::Marker(SnapshotId(1)));
    }
}
