//! Job runtime: wiring, lifecycle, failure injection, recovery.
//!
//! [`StreamEnv::submit`] turns a [`JobSpec`] into running threads: one per
//! vertex instance, channels along the edges, a checkpoint coordinator, and
//! the state plumbing configured by [`StateConfig`] — the four configurations
//! of the paper's Figure 8 are four values of this struct.
//!
//! [`JobHandle::crash`] poisons every worker (simulating a process failure
//! with loss of all operator state); [`JobHandle::recover`] rebuilds the job
//! from the latest committed snapshot: operator state restored from the
//! snapshot stores, sources rewound to their snapshotted offsets — the
//! rollback recovery of §IV that underpins both exactly-once processing and
//! the isolation-level semantics of §VII.

use crate::checkpoint::{CheckpointRecord, CheckpointStats, Coordinator, CoordinatorContext};
use crate::dag::{JobSpec, VertexKind};
use crate::message::Tagged;
use crate::state::{SnapshotSink, StateBackend};
use crate::worker::{
    run_operator, run_source, OffsetSaver, OperatorKind, OutputPort, Shared, SourceCommand,
    WorkerTelemetry,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use squery_common::metrics::{Histogram, SharedHistogram};
use squery_common::telemetry::EventKind;
use squery_common::time::Clock;
use squery_common::{SnapshotId, SqError, SqResult, Value};
use squery_storage::{Grid, SnapshotMode, SnapshotStore};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The snapshot-store name holding source offsets (not a user table).
pub const OFFSETS_STORE: &str = "__offsets";

/// Which S-QUERY state mechanisms are active — the four curves of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateConfig {
    /// Mirror every state update into the operator's live `IMap` (Table I).
    pub live_state: bool,
    /// Write checkpoints as queryable per-key entries (Table II) instead of
    /// the baseline's opaque blobs.
    pub queryable_snapshots: bool,
    /// Full or incremental checkpoints (only meaningful when queryable).
    pub snapshot_mode: SnapshotMode,
}

impl StateConfig {
    /// "S-Query live+snap": both mechanisms on.
    pub fn live_and_snapshot() -> StateConfig {
        StateConfig {
            live_state: true,
            queryable_snapshots: true,
            snapshot_mode: SnapshotMode::Full,
        }
    }

    /// "S-Query live": live mirroring only; snapshots stay blobs.
    pub fn live_only() -> StateConfig {
        StateConfig {
            live_state: true,
            queryable_snapshots: false,
            snapshot_mode: SnapshotMode::Full,
        }
    }

    /// "S-Query snap": queryable snapshots only (the configuration the paper
    /// focuses its evaluation on).
    pub fn snapshot_only() -> StateConfig {
        StateConfig {
            live_state: false,
            queryable_snapshots: true,
            snapshot_mode: SnapshotMode::Full,
        }
    }

    /// "S-Query snap" with incremental snapshots (§VI-A optimization).
    pub fn snapshot_incremental() -> StateConfig {
        StateConfig {
            live_state: false,
            queryable_snapshots: true,
            snapshot_mode: SnapshotMode::Incremental,
        }
    }

    /// Plain Jet: no live mirror, blob snapshots.
    pub fn jet_baseline() -> StateConfig {
        StateConfig {
            live_state: false,
            queryable_snapshots: false,
            snapshot_mode: SnapshotMode::Full,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// State mechanism configuration.
    pub state: StateConfig,
    /// Periodic checkpoint interval (`None` = manual triggering only).
    pub checkpoint_interval: Option<Duration>,
    /// Bounded channel capacity between instances (backpressure depth).
    pub channel_capacity: usize,
    /// Maximum records a source produces per scheduling quantum.
    pub source_batch: usize,
    /// Phase-1 ack timeout before a checkpoint aborts.
    pub ack_timeout: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            state: StateConfig::snapshot_only(),
            checkpoint_interval: Some(Duration::from_secs(1)),
            channel_capacity: 1024,
            source_batch: 256,
            ack_timeout: Duration::from_secs(10),
        }
    }
}

/// The execution environment: a grid plus engine configuration.
pub struct StreamEnv {
    grid: Arc<Grid>,
    config: EngineConfig,
    clock: Clock,
}

impl StreamEnv {
    /// An environment over `grid`.
    pub fn new(grid: Arc<Grid>, config: EngineConfig) -> StreamEnv {
        StreamEnv {
            grid,
            config,
            clock: Clock::wall(),
        }
    }

    /// The environment's grid.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Submit a job; threads start immediately.
    pub fn submit(&self, spec: JobSpec) -> SqResult<JobHandle> {
        spec.validate()?;
        self.grid.telemetry().event(
            EventKind::JobSubmitted,
            Some(&spec.name),
            None,
            None,
            format!("{} vertices", spec.vertices.len()),
        );
        let stats = CheckpointStats::new();
        let (running, shared) = build_runtime(
            &spec,
            &self.grid,
            &self.config,
            &self.clock,
            None,
            stats.clone(),
        )?;
        Ok(JobHandle {
            spec,
            grid: Arc::clone(&self.grid),
            config: self.config,
            clock: self.clock.clone(),
            started: Instant::now(),
            stats,
            running: Some(running),
            shared: Some(shared),
            base_latency: Histogram::new(),
            base_sink: 0,
            base_source: 0,
        })
    }
}

struct Running {
    threads: Vec<JoinHandle<()>>,
    source_controls: Vec<Sender<SourceCommand>>,
    coordinator: Coordinator,
}

/// Final report of a stopped job.
#[derive(Clone)]
pub struct JobReport {
    /// Source-to-sink latency distribution (µs).
    pub latency: Histogram,
    /// Records consumed by sinks.
    pub sink_records: u64,
    /// Records produced by sources.
    pub source_records: u64,
    /// Wall-clock duration from submit to stop.
    pub duration: Duration,
    /// Committed checkpoint timings.
    pub checkpoints: Vec<CheckpointRecord>,
    /// Aborted checkpoint attempts.
    pub aborted_checkpoints: u64,
}

impl JobReport {
    /// Mean sink throughput in records/second over the job's lifetime.
    pub fn throughput(&self) -> f64 {
        if self.duration.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.sink_records as f64 / self.duration.as_secs_f64()
    }
}

/// Handle to a submitted job.
pub struct JobHandle {
    spec: JobSpec,
    grid: Arc<Grid>,
    config: EngineConfig,
    clock: Clock,
    started: Instant,
    stats: CheckpointStats,
    running: Option<Running>,
    shared: Option<Arc<Shared>>,
    base_latency: Histogram,
    base_sink: u64,
    base_source: u64,
}

impl JobHandle {
    /// Whether worker threads are currently running.
    pub fn is_running(&self) -> bool {
        self.running.is_some()
    }

    /// The grid this job runs on.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Trigger a checkpoint now and wait for commit.
    pub fn checkpoint_now(&self) -> SqResult<SnapshotId> {
        match &self.running {
            Some(r) => r.coordinator.trigger(),
            None => Err(SqError::Runtime("job is not running".into())),
        }
    }

    /// Checkpoint timing log.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.stats.clone()
    }

    /// Current merged latency histogram.
    pub fn latency(&self) -> Histogram {
        let mut h = self.base_latency.clone();
        if let Some(s) = &self.shared {
            h.merge(&s.latency.snapshot());
        }
        h
    }

    /// Records consumed by sinks so far.
    pub fn sink_count(&self) -> u64 {
        self.base_sink
            + self
                .shared
                .as_ref()
                .map(|s| s.sink_count.load(Ordering::Relaxed))
                .unwrap_or(0)
    }

    /// Records produced by sources so far.
    pub fn source_count(&self) -> u64 {
        self.base_source
            + self
                .shared
                .as_ref()
                .map(|s| s.source_count.load(Ordering::Relaxed))
                .unwrap_or(0)
    }

    /// Discard latency samples collected so far (typically at the end of a
    /// warmup period, mirroring the paper's 20 s warmup before measuring).
    pub fn reset_latency(&mut self) {
        self.base_latency = Histogram::new();
        if let Some(s) = &self.shared {
            s.latency.clear();
        }
    }

    /// Block until sinks have consumed at least `n` records (test helper).
    pub fn wait_for_sink_count(&self, n: u64, timeout: Duration) -> SqResult<()> {
        let deadline = Instant::now() + timeout;
        while self.sink_count() < n {
            if Instant::now() > deadline {
                return Err(SqError::Runtime(format!(
                    "timed out waiting for {n} sink records (got {})",
                    self.sink_count()
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Block until every source instance has exhausted its (finite) input.
    ///
    /// Exhausted sources stay alive to serve checkpoints, so a subsequent
    /// [`JobHandle::checkpoint_now`] acts as a barrier behind every produced
    /// record: when it commits, every operator has processed everything.
    pub fn wait_sources_exhausted(&self, timeout: Duration) -> SqResult<()> {
        let sources: u32 = self
            .spec
            .source_indexes()
            .iter()
            .map(|&i| self.spec.vertices[i].parallelism)
            .sum();
        let deadline = Instant::now() + timeout;
        loop {
            let exhausted = self
                .shared
                .as_ref()
                .map(|s| s.exhausted_sources.load(Ordering::Acquire))
                .unwrap_or(0);
            if exhausted >= sources {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(SqError::Runtime(format!(
                    "timed out: {exhausted}/{sources} sources exhausted"
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// [`JobHandle::wait_sources_exhausted`] followed by a checkpoint
    /// barrier: on return, every record has been fully processed by every
    /// operator and captured in the committed snapshot.
    pub fn drain_and_checkpoint(&mut self, timeout: Duration) -> SqResult<SnapshotId> {
        self.wait_sources_exhausted(timeout)?;
        self.checkpoint_now()
    }

    /// Simulate a process failure: every worker dies, in-memory operator
    /// state and in-flight records are lost. The grid (snapshot stores, live
    /// maps) survives — it is the durable substrate recovery reads.
    pub fn crash(&mut self) {
        let Some(running) = self.running.take() else {
            return;
        };
        if let Some(shared) = &self.shared {
            shared.poison.store(true, Ordering::SeqCst);
        }
        running.coordinator.stop();
        for t in running.threads {
            let _ = t.join();
        }
        drop(running.source_controls);
        self.fold_metrics();
        // A checkpoint caught mid-flight by the crash stays in progress at
        // the registry; release it so recovery can checkpoint again.
        if let Some(ssid) = self.grid.registry().in_progress() {
            for name in self.spec.stateful_names() {
                self.grid.snapshot_store(&name).discard(ssid);
            }
            self.grid.snapshot_store(OFFSETS_STORE).discard(ssid);
            let _ = self.grid.registry().abort(ssid);
        }
    }

    /// Rebuild the job from the latest committed snapshot (rollback
    /// recovery): operator state restored, sources rewound, live maps rebuilt
    /// to the snapshot's contents.
    pub fn recover(&mut self) -> SqResult<()> {
        if self.running.is_some() {
            return Err(SqError::Runtime("job is still running".into()));
        }
        let latest = self.grid.registry().latest_committed();
        if !latest.is_some() {
            return Err(SqError::NotFound(
                "no committed snapshot to recover from".into(),
            ));
        }
        self.grid.telemetry().event(
            EventKind::Recovery,
            Some(&self.spec.name),
            Some(latest.0),
            None,
            "rollback to latest committed snapshot",
        );
        let (running, shared) = build_runtime(
            &self.spec,
            &self.grid,
            &self.config,
            &self.clock,
            Some(latest),
            self.stats.clone(),
        )?;
        self.running = Some(running);
        self.shared = Some(shared);
        Ok(())
    }

    /// Graceful shutdown: stop checkpoints, drain sources, join workers,
    /// return the final report.
    pub fn stop(mut self) -> JobReport {
        if let Some(running) = self.running.take() {
            running.coordinator.stop();
            for ctl in &running.source_controls {
                let _ = ctl.send(SourceCommand::Stop);
            }
            for t in running.threads {
                let _ = t.join();
            }
        }
        self.fold_metrics();
        self.grid.telemetry().event(
            EventKind::JobStopped,
            Some(&self.spec.name),
            None,
            Some(self.started.elapsed().as_micros() as u64),
            "",
        );
        JobReport {
            latency: self.base_latency.clone(),
            sink_records: self.base_sink,
            source_records: self.base_source,
            duration: self.started.elapsed(),
            checkpoints: self.stats.records(),
            aborted_checkpoints: self.stats.aborted(),
        }
    }

    fn fold_metrics(&mut self) {
        if let Some(shared) = self.shared.take() {
            self.base_latency.merge(&shared.latency.snapshot());
            self.base_sink += shared.sink_count.load(Ordering::Relaxed);
            self.base_source += shared.source_count.load(Ordering::Relaxed);
        }
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        if self.running.is_some() {
            self.crash();
        }
    }
}

/// Build channels, state backends, and threads for one job incarnation.
fn build_runtime(
    spec: &JobSpec,
    grid: &Arc<Grid>,
    config: &EngineConfig,
    clock: &Clock,
    restore: Option<SnapshotId>,
    stats: CheckpointStats,
) -> SqResult<(Running, Arc<Shared>)> {
    let (ack_tx, ack_rx) = unbounded();
    let shared = Arc::new(Shared {
        clock: clock.clone(),
        poison: AtomicBool::new(false),
        ack_tx,
        latency: SharedHistogram::new(),
        sink_count: AtomicU64::new(0),
        source_count: AtomicU64::new(0),
        live_instances: AtomicU32::new(spec.total_instances()),
        exhausted_sources: AtomicU32::new(0),
        partitioner: grid.partitioner(),
        telemetry: grid.telemetry().clone(),
    });

    // Input channels for every non-source instance.
    let mut input_tx: Vec<Vec<Option<Sender<Tagged>>>> = Vec::new();
    let mut input_rx: Vec<Vec<Option<Receiver<Tagged>>>> = Vec::new();
    for v in &spec.vertices {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..v.parallelism {
            if matches!(v.kind, VertexKind::Source(_)) {
                txs.push(None);
                rxs.push(None);
            } else {
                let (tx, rx) = bounded(config.channel_capacity);
                txs.push(Some(tx));
                rxs.push(Some(rx));
            }
        }
        input_tx.push(txs);
        input_rx.push(rxs);
    }

    // Channel-tag layout at each vertex: incoming edges in declaration order,
    // each contributing one channel per upstream instance.
    let tag_base = |vertex: usize, edge_index: usize| -> u32 {
        let mut base = 0u32;
        for (ei, e) in spec.incoming(vertex) {
            if ei == edge_index {
                return base;
            }
            base += spec.vertices[e.from].parallelism;
        }
        unreachable!("edge {edge_index} not incoming at vertex {vertex}")
    };
    let n_channels = |vertex: usize| -> u32 {
        spec.incoming(vertex)
            .iter()
            .map(|(_, e)| spec.vertices[e.from].parallelism)
            .sum()
    };
    let outputs = |vertex: usize, instance: u32| -> Vec<OutputPort> {
        spec.outgoing(vertex)
            .into_iter()
            .map(|(edge_index, e)| {
                let port = spec
                    .incoming(e.to)
                    .iter()
                    .position(|(ei, _)| *ei == edge_index)
                    .expect("edge is incoming at its target") as u8;
                OutputPort {
                    kind: e.kind,
                    senders: input_tx[e.to]
                        .iter()
                        .map(|t| t.clone().expect("non-source target has inputs"))
                        .collect(),
                    tag: tag_base(e.to, edge_index) + instance,
                    port,
                }
            })
            .collect()
    };

    let offsets_store = grid.snapshot_store(OFFSETS_STORE);
    let mut stores: Vec<Arc<SnapshotStore>> = vec![Arc::clone(&offsets_store)];
    let mut threads = Vec::new();
    let mut source_controls = Vec::new();

    for (vi, v) in spec.vertices.iter().enumerate() {
        match &v.kind {
            VertexKind::Source(factory) => {
                for i in 0..v.parallelism {
                    let (ctl_tx, ctl_rx) = unbounded();
                    source_controls.push(ctl_tx);
                    let mut source = factory.create(i, v.parallelism);
                    let saver = OffsetSaver {
                        store: Arc::clone(&offsets_store),
                        key: Value::str(format!("{}#{i}", v.name)),
                    };
                    if let Some(ssid) = restore {
                        if let Some(offset) = saver.load(ssid) {
                            source.rewind(&offset);
                        }
                    }
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let batch = config.source_batch;
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_source(source, ctl_rx, outs, i, batch, shared, saver, tel)
                    }));
                }
            }
            VertexKind::Stateless(factory) => {
                for i in 0..v.parallelism {
                    let rx = input_rx[vi][i as usize].take().expect("input channel");
                    let op = factory.create(i, v.parallelism);
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let channels = n_channels(vi);
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_operator(
                            rx,
                            channels,
                            OperatorKind::Stateless(op),
                            outs,
                            i,
                            shared,
                            tel,
                        )
                    }));
                }
            }
            VertexKind::Stateful(factory) => {
                let store = grid.snapshot_store(&v.name);
                if !stores.iter().any(|s| Arc::ptr_eq(s, &store)) {
                    stores.push(Arc::clone(&store));
                }
                let live = config.state.live_state.then(|| grid.map(&v.name));
                if let Some(schema) = &v.state_schema {
                    store.set_value_schema(Arc::clone(schema));
                    if let Some(l) = &live {
                        l.set_value_schema(Arc::clone(schema));
                    }
                }
                for i in 0..v.parallelism {
                    let rx = input_rx[vi][i as usize].take().expect("input channel");
                    let sink = if config.state.queryable_snapshots {
                        SnapshotSink::Queryable {
                            store: Arc::clone(&store),
                            mode: config.state.snapshot_mode,
                        }
                    } else {
                        SnapshotSink::Blob {
                            store: Arc::clone(&store),
                        }
                    };
                    let mut backend = StateBackend::new(
                        v.name.clone(),
                        i,
                        v.parallelism,
                        grid.partitioner(),
                        live.clone(),
                        sink,
                    )
                    .with_telemetry(grid.telemetry());
                    if let Some(ssid) = restore {
                        backend.restore(ssid)?;
                    }
                    let op = factory.create(i, v.parallelism);
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let channels = n_channels(vi);
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_operator(
                            rx,
                            channels,
                            OperatorKind::Stateful { op, state: backend },
                            outs,
                            i,
                            shared,
                            tel,
                        )
                    }));
                }
            }
            VertexKind::Sink(factory) => {
                for i in 0..v.parallelism {
                    let rx = input_rx[vi][i as usize].take().expect("input channel");
                    let sink = factory.create(i, v.parallelism);
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let channels = n_channels(vi);
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_operator(rx, channels, OperatorKind::Sink(sink), outs, i, shared, tel)
                    }));
                }
            }
        }
    }

    let coordinator = Coordinator::start(
        CoordinatorContext {
            grid: Arc::clone(grid),
            source_controls: source_controls.clone(),
            ack_rx,
            shared: Arc::clone(&shared),
            stores,
            stats,
            ack_timeout: config.ack_timeout,
        },
        config.checkpoint_interval,
    );

    Ok((
        Running {
            threads,
            source_controls,
            coordinator,
        },
        shared,
    ))
}

fn spawn_named(name: String, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::adapters::{FnSink, FnStateful, FnStatefulOp, NullSinkFactory};
    use crate::dag::{EdgeKind, Sink, SourceFactory, Stateful};
    use crate::message::Record;
    use crate::source::{GeneratorSource, Source};
    use crate::state::KeyedState;

    /// Source producing ints 0..limit keyed by `i % keys`.
    struct IntSourceFactory {
        limit: u64,
        keys: i64,
    }

    impl SourceFactory for IntSourceFactory {
        fn create(&self, instance: u32, total: u32) -> Box<dyn Source> {
            // Split the range across instances by residue.
            let keys = self.keys;
            let limit = self.limit;
            let (instance, total) = (instance as u64, total as u64);
            let count = limit / total + u64::from(instance < limit % total);
            Box::new(GeneratorSource::new(count, move |i| {
                let n = (i * total + instance) as i64;
                Some(Record::new(n % keys, n))
            }))
        }
    }

    /// Stateful op: per-key running sum, emits the new sum.
    fn summing_factory() -> Arc<FnStateful<impl Fn(u32, u32) -> Box<dyn Stateful> + Send + Sync>> {
        Arc::new(FnStateful(|_, _| {
            Box::new(FnStatefulOp(
                |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                    let prev = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0);
                    let next = prev + r.value.as_int().unwrap_or(0);
                    state.put(r.key.clone(), Value::Int(next));
                    out.push(Record {
                        key: r.key,
                        value: Value::Int(next),
                        src_ts: r.src_ts,
                        port: 0,
                    });
                },
            )) as Box<dyn Stateful>
        }))
    }

    fn sum_job(limit: u64, keys: i64, par: u32) -> JobSpec {
        let mut b = JobSpec::builder("sum");
        let src = b.source("src", 1, Arc::new(IntSourceFactory { limit, keys }));
        let op = b.stateful("sums", par, summing_factory());
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(src, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        b.build().unwrap()
    }

    fn env(state: StateConfig) -> StreamEnv {
        let config = EngineConfig {
            state,
            checkpoint_interval: None,
            ..EngineConfig::default()
        };
        StreamEnv::new(Grid::single_node(), config)
    }

    /// Expected per-key sums for ints 0..limit keyed by i % keys.
    fn expected_sums(limit: i64, keys: i64) -> Vec<(Value, Value)> {
        let mut sums = vec![0i64; keys as usize];
        for n in 0..limit {
            sums[(n % keys) as usize] += n;
        }
        sums.into_iter()
            .enumerate()
            .map(|(k, s)| (Value::Int(k as i64), Value::Int(s)))
            .collect()
    }

    #[test]
    fn pipeline_processes_everything() {
        let env = env(StateConfig::live_and_snapshot());
        let mut job = env.submit(sum_job(1000, 10, 4)).unwrap();
        job.wait_for_sink_count(1000, Duration::from_secs(20))
            .unwrap();
        job.drain_and_checkpoint(Duration::from_secs(20)).unwrap();
        // Live state holds the exact final sums.
        let live = env.grid().get_map("sums").unwrap();
        let mut entries = live.entries();
        entries.sort();
        assert_eq!(entries, expected_sums(1000, 10));
        let report = job.stop();
        assert_eq!(report.sink_records, 1000);
        assert_eq!(report.source_records, 1000);
        assert_eq!(report.latency.count(), 1000);
    }

    #[test]
    fn checkpoint_now_produces_queryable_snapshot() {
        let env = env(StateConfig::snapshot_only());
        let mut job = env.submit(sum_job(500, 5, 2)).unwrap();
        job.wait_for_sink_count(500, Duration::from_secs(20))
            .unwrap();
        let ssid = job.drain_and_checkpoint(Duration::from_secs(20)).unwrap();
        assert_eq!(env.grid().registry().latest_committed(), ssid);
        let store = env.grid().get_snapshot_store("sums").unwrap();
        let (mut entries, _) = store.scan_at(ssid).unwrap();
        entries.sort();
        assert_eq!(entries, expected_sums(500, 5));
        let stats = job.checkpoint_stats();
        assert_eq!(stats.records().len(), 1);
        job.stop();
    }

    #[test]
    fn crash_and_recover_is_exactly_once() {
        let env = env(StateConfig::live_and_snapshot());
        let mut job = env.submit(sum_job(20_000, 10, 2)).unwrap();
        // Let some records through, checkpoint, let more through, crash.
        job.wait_for_sink_count(2_000, Duration::from_secs(20))
            .unwrap();
        job.checkpoint_now().unwrap();
        job.wait_for_sink_count(5_000, Duration::from_secs(20))
            .unwrap();
        job.crash();
        assert!(!job.is_running());
        // Recover and drain to completion (checkpoint barrier guarantees the
        // operators applied every replayed record before we inspect state).
        job.recover().unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        // Exactly-once: every input contributed to the sums exactly once,
        // even though records between the checkpoint and the crash were
        // processed twice from the sink's point of view.
        let live = env.grid().get_map("sums").unwrap();
        let mut entries = live.entries();
        entries.sort();
        assert_eq!(entries, expected_sums(20_000, 10));
        job.stop();
    }

    #[test]
    fn recover_without_snapshot_fails() {
        let env = env(StateConfig::snapshot_only());
        let mut job = env.submit(sum_job(100, 5, 1)).unwrap();
        job.crash();
        assert!(matches!(job.recover(), Err(SqError::NotFound(_))));
    }

    #[test]
    fn periodic_checkpoints_run() {
        let config = EngineConfig {
            state: StateConfig::snapshot_only(),
            checkpoint_interval: Some(Duration::from_millis(25)),
            ..EngineConfig::default()
        };
        let env = StreamEnv::new(Grid::single_node(), config);
        // Unbounded source paced at 50k/s.
        struct Paced;
        impl SourceFactory for Paced {
            fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
                Box::new(
                    GeneratorSource::new(0, |i| Some(Record::new((i % 100) as i64, i as i64)))
                        .with_rate(50_000.0),
                )
            }
        }
        let mut b = JobSpec::builder("periodic");
        let src = b.source("src", 1, Arc::new(Paced));
        let op = b.stateful("state", 2, summing_factory());
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(src, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        let job = env.submit(b.build().unwrap()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while env.grid().registry().latest_committed().0 < 3 {
            assert!(Instant::now() < deadline, "periodic checkpoints stalled");
            std::thread::sleep(Duration::from_millis(10));
        }
        let report = job.stop();
        assert!(report.checkpoints.len() >= 3);
        assert!(report.throughput() > 0.0);
        for c in &report.checkpoints {
            assert!(c.total_us >= c.phase1_us);
        }
    }

    #[test]
    fn two_input_operator_aligns_and_joins_streams() {
        // Port 0 adds, port 1 subtracts; both keyed to the same state.
        let env = env(StateConfig::snapshot_only());
        struct Ints {
            limit: u64,
        }
        impl SourceFactory for Ints {
            fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
                let limit = self.limit;
                Box::new(GeneratorSource::new(limit, |i| {
                    Some(Record::new((i % 7) as i64, 1i64))
                }))
            }
        }
        let op_factory = Arc::new(FnStateful(|_, _| {
            Box::new(FnStatefulOp(
                |r: Record, state: &mut dyn KeyedState, _out: &mut Vec<Record>| {
                    let prev = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0);
                    let delta = if r.port == 0 { 1 } else { -1 };
                    state.put(r.key.clone(), Value::Int(prev + delta));
                },
            )) as Box<dyn Stateful>
        }));
        let mut b = JobSpec::builder("two-input");
        let plus = b.source("plus", 1, Arc::new(Ints { limit: 700 }));
        let minus = b.source("minus", 1, Arc::new(Ints { limit: 350 }));
        let op = b.stateful("balance", 2, op_factory);
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(plus, op, EdgeKind::Keyed);
        b.edge(minus, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        let mut job = env.submit(b.build().unwrap()).unwrap();
        let ssid = job.drain_and_checkpoint(Duration::from_secs(20)).unwrap();
        let store = env.grid().get_snapshot_store("balance").unwrap();
        let (entries, _) = store.scan_at(ssid).unwrap();
        assert_eq!(entries.len(), 7);
        for (_k, v) in entries {
            assert_eq!(v, Value::Int(100 - 50), "700/7 pluses minus 350/7 minuses");
        }
        job.stop();
    }

    #[test]
    fn sink_latency_is_recorded() {
        use parking_lot::Mutex;
        let env = env(StateConfig::jet_baseline());
        let got: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        struct Collect(Arc<Mutex<Vec<i64>>>);
        impl Sink for Collect {
            fn consume(&mut self, r: Record) {
                self.0.lock().push(r.value.as_int().unwrap());
            }
        }
        let mut b = JobSpec::builder("latency");
        let src = b.source(
            "src",
            1,
            Arc::new(IntSourceFactory {
                limit: 100,
                keys: 100,
            }),
        );
        let sink = b.sink(
            "sink",
            1,
            Arc::new(FnSink(move |_, _| {
                Box::new(Collect(Arc::clone(&got2))) as Box<dyn Sink>
            })),
        );
        b.edge(src, sink, EdgeKind::Forward);
        let job = env.submit(b.build().unwrap()).unwrap();
        job.wait_for_sink_count(100, Duration::from_secs(10))
            .unwrap();
        let report = job.stop();
        assert_eq!(report.latency.count(), 100);
        assert_eq!(got.lock().len(), 100);
    }

    #[test]
    fn jet_baseline_writes_blobs_not_queryable_entries() {
        let env = env(StateConfig::jet_baseline());
        let mut job = env.submit(sum_job(100, 10, 2)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(10)).unwrap();
        let store = env.grid().get_snapshot_store("sums").unwrap();
        // 2 instances → 2 blob entries, not 10 queryable key entries.
        assert_eq!(store.stats().stored_entries, 2);
        // And no live map was created.
        assert!(env.grid().get_map("sums").is_none());
        job.stop();
    }
}
