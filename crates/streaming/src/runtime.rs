//! Job runtime: wiring, lifecycle, failure injection, recovery.
//!
//! [`StreamEnv::submit`] turns a [`JobSpec`] into running threads: one per
//! vertex instance, channels along the edges, a checkpoint coordinator, and
//! the state plumbing configured by [`StateConfig`] — the four configurations
//! of the paper's Figure 8 are four values of this struct.
//!
//! [`JobHandle::crash`] poisons every worker (simulating a process failure
//! with loss of all operator state); [`JobHandle::recover`] rebuilds the job
//! from the latest committed snapshot: operator state restored from the
//! snapshot stores, sources rewound to their snapshotted offsets — the
//! rollback recovery of §IV that underpins both exactly-once processing and
//! the isolation-level semantics of §VII.

use crate::checkpoint::{CheckpointRecord, CheckpointStats, Coordinator, CoordinatorContext};
use crate::dag::{JobSpec, VertexKind};
use crate::message::Tagged;
use crate::state::{SnapshotSink, StateBackend};
use crate::worker::{
    run_operator, run_source, OffsetSaver, OperatorKind, OutputPort, Shared, SourceCommand,
    WorkerTelemetry,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use squery_common::fault::backoff_with_jitter;
use squery_common::lockorder::{self, LockClass};
use squery_common::metrics::{Histogram, SharedHistogram};
use squery_common::telemetry::EventKind;
use squery_common::time::Clock;
use squery_common::{SnapshotId, SqError, SqResult, Value};
use squery_storage::{Grid, SnapshotMode, SnapshotStore};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The snapshot-store name holding source offsets (not a user table).
pub const OFFSETS_STORE: &str = "__offsets";

/// Which S-QUERY state mechanisms are active — the four curves of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateConfig {
    /// Mirror every state update into the operator's live `IMap` (Table I).
    pub live_state: bool,
    /// Write checkpoints as queryable per-key entries (Table II) instead of
    /// the baseline's opaque blobs.
    pub queryable_snapshots: bool,
    /// Full or incremental checkpoints (only meaningful when queryable).
    pub snapshot_mode: SnapshotMode,
}

impl StateConfig {
    /// "S-Query live+snap": both mechanisms on.
    pub fn live_and_snapshot() -> StateConfig {
        StateConfig {
            live_state: true,
            queryable_snapshots: true,
            snapshot_mode: SnapshotMode::Full,
        }
    }

    /// "S-Query live": live mirroring only; snapshots stay blobs.
    pub fn live_only() -> StateConfig {
        StateConfig {
            live_state: true,
            queryable_snapshots: false,
            snapshot_mode: SnapshotMode::Full,
        }
    }

    /// "S-Query snap": queryable snapshots only (the configuration the paper
    /// focuses its evaluation on).
    pub fn snapshot_only() -> StateConfig {
        StateConfig {
            live_state: false,
            queryable_snapshots: true,
            snapshot_mode: SnapshotMode::Full,
        }
    }

    /// "S-Query snap" with incremental snapshots (§VI-A optimization).
    pub fn snapshot_incremental() -> StateConfig {
        StateConfig {
            live_state: false,
            queryable_snapshots: true,
            snapshot_mode: SnapshotMode::Incremental,
        }
    }

    /// Plain Jet: no live mirror, blob snapshots.
    pub fn jet_baseline() -> StateConfig {
        StateConfig {
            live_state: false,
            queryable_snapshots: false,
            snapshot_mode: SnapshotMode::Full,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// State mechanism configuration.
    pub state: StateConfig,
    /// Periodic checkpoint interval (`None` = manual triggering only).
    pub checkpoint_interval: Option<Duration>,
    /// Bounded channel capacity between instances (backpressure depth).
    pub channel_capacity: usize,
    /// Maximum records a source produces per scheduling quantum.
    pub source_batch: usize,
    /// Phase-1 ack timeout before a checkpoint aborts.
    pub ack_timeout: Duration,
    /// How many times the coordinator retries an aborted checkpoint round
    /// in place (with exponential backoff) before the error surfaces.
    pub checkpoint_retries: u32,
    /// Base backoff between checkpoint retries.
    pub retry_backoff: Duration,
    /// State-statistics sampler interval (`None` = sampler off; live maps
    /// then pay only one relaxed atomic load per write).
    pub stats_interval: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            state: StateConfig::snapshot_only(),
            checkpoint_interval: Some(Duration::from_secs(1)),
            channel_capacity: 1024,
            source_batch: 256,
            ack_timeout: Duration::from_secs(10),
            checkpoint_retries: 0,
            retry_backoff: Duration::from_millis(50),
            stats_interval: None,
        }
    }
}

/// The execution environment: a grid plus engine configuration.
///
/// When `config.stats_interval` is set, the environment owns the
/// state-statistics sampler: a named background thread that arms the grid's
/// recent-key collection and runs [`squery_storage::StateStats::sample`]
/// every interval. The thread is stopped and joined when the environment
/// drops.
pub struct StreamEnv {
    grid: Arc<Grid>,
    config: EngineConfig,
    clock: Clock,
    sampler: Option<StatsSampler>,
}

struct StatsSampler {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatsSampler {
    fn start(grid: Arc<Grid>, interval: Duration) -> StatsSampler {
        grid.arm_stats(true);
        let stop = Arc::new(AtomicBool::new(false));
        let thread = spawn_named("stats-sampler".to_string(), {
            let stop = Arc::clone(&stop);
            move || {
                let tick = Duration::from_millis(10).min(interval);
                let mut last = Instant::now();
                while !stop.load(Ordering::Acquire) {
                    // Sleep in short slices so a dropping StreamEnv never
                    // waits a whole interval for the join.
                    std::thread::sleep(tick);
                    if last.elapsed() >= interval {
                        grid.stats().sample(&grid);
                        last = Instant::now();
                    }
                }
            }
        });
        StatsSampler {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for StatsSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl StreamEnv {
    /// An environment over `grid`.
    pub fn new(grid: Arc<Grid>, config: EngineConfig) -> StreamEnv {
        let sampler = config
            .stats_interval
            .map(|interval| StatsSampler::start(Arc::clone(&grid), interval));
        StreamEnv {
            grid,
            config,
            clock: Clock::wall(),
            sampler,
        }
    }

    /// The environment's grid.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Whether the background stats sampler is running.
    pub fn stats_sampler_running(&self) -> bool {
        self.sampler.is_some()
    }

    /// Submit a job; threads start immediately.
    pub fn submit(&self, spec: JobSpec) -> SqResult<JobHandle> {
        spec.validate()?;
        self.grid.telemetry().event(
            EventKind::JobSubmitted,
            Some(&spec.name),
            None,
            None,
            format!("{} vertices", spec.vertices.len()),
        );
        let stats = CheckpointStats::new();
        let (running, shared) = build_runtime(
            &spec,
            &self.grid,
            &self.config,
            &self.clock,
            None,
            stats.clone(),
        )?;
        Ok(JobHandle {
            spec,
            grid: Arc::clone(&self.grid),
            config: self.config,
            clock: self.clock.clone(),
            started: Instant::now(),
            stats,
            running: Some(running),
            shared: Some(shared),
            base_latency: Histogram::new(),
            base_sink: 0,
            base_source: 0,
        })
    }

    /// Submit a job resuming from the latest committed snapshot — the
    /// cold-start counterpart of [`JobHandle::recover`], for a fresh process
    /// whose grid was just rebuilt (e.g. from the write-ahead log): operator
    /// state is restored from the snapshot stores and sources rewind to
    /// their snapshotted offsets, so exactly-once holds across the restart.
    ///
    /// Falls back to a plain [`StreamEnv::submit`] when no committed
    /// snapshot exists (nothing was ever durable, so there is nothing to
    /// resume from).
    pub fn submit_restored(&self, spec: JobSpec) -> SqResult<JobHandle> {
        spec.validate()?;
        let latest = self.grid.registry().latest_committed();
        if !latest.is_some() {
            return self.submit(spec);
        }
        self.grid.telemetry().event(
            EventKind::Recovery,
            Some(&spec.name),
            Some(latest.0),
            None,
            "cold start from latest committed snapshot",
        );
        let mut span = self.grid.telemetry().spans().start("recovery");
        span.label("job", &spec.name);
        span.label("mode", "cold_start");
        span.label("ssid", latest.0);
        let stats = CheckpointStats::new();
        let (running, shared) = build_runtime(
            &spec,
            &self.grid,
            &self.config,
            &self.clock,
            Some(latest),
            stats.clone(),
        )?;
        Ok(JobHandle {
            spec,
            grid: Arc::clone(&self.grid),
            config: self.config,
            clock: self.clock.clone(),
            started: Instant::now(),
            stats,
            running: Some(running),
            shared: Some(shared),
            base_latency: Histogram::new(),
            base_sink: 0,
            base_source: 0,
        })
    }

    /// Submit a job and put it under a supervisor: worker deaths and
    /// coordinator kills are detected and recovered automatically under
    /// `policy`.
    pub fn submit_supervised(
        &self,
        spec: JobSpec,
        policy: RestartPolicy,
    ) -> SqResult<SupervisedJob> {
        Ok(SupervisedJob::supervise(self.submit(spec)?, policy))
    }
}

struct Running {
    threads: Vec<JoinHandle<()>>,
    source_controls: Vec<Sender<SourceCommand>>,
    coordinator: Coordinator,
}

/// Final report of a stopped job.
#[derive(Clone)]
pub struct JobReport {
    /// Source-to-sink latency distribution (µs).
    pub latency: Histogram,
    /// Records consumed by sinks.
    pub sink_records: u64,
    /// Records produced by sources.
    pub source_records: u64,
    /// Wall-clock duration from submit to stop.
    pub duration: Duration,
    /// Committed checkpoint timings.
    pub checkpoints: Vec<CheckpointRecord>,
    /// Aborted checkpoint attempts.
    pub aborted_checkpoints: u64,
}

impl JobReport {
    /// Mean sink throughput in records/second over the job's lifetime.
    pub fn throughput(&self) -> f64 {
        if self.duration.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.sink_records as f64 / self.duration.as_secs_f64()
    }
}

/// Handle to a submitted job.
pub struct JobHandle {
    spec: JobSpec,
    grid: Arc<Grid>,
    config: EngineConfig,
    clock: Clock,
    started: Instant,
    stats: CheckpointStats,
    running: Option<Running>,
    shared: Option<Arc<Shared>>,
    base_latency: Histogram,
    base_sink: u64,
    base_source: u64,
}

impl JobHandle {
    /// Whether worker threads are currently running.
    pub fn is_running(&self) -> bool {
        self.running.is_some()
    }

    /// The grid this job runs on.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Trigger a checkpoint now and wait for commit.
    pub fn checkpoint_now(&self) -> SqResult<SnapshotId> {
        match &self.running {
            Some(r) => r.coordinator.trigger(),
            None => Err(SqError::Runtime("job is not running".into())),
        }
    }

    /// Checkpoint timing log.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.stats.clone()
    }

    /// Current merged latency histogram.
    pub fn latency(&self) -> Histogram {
        let mut h = self.base_latency.clone();
        if let Some(s) = &self.shared {
            h.merge(&s.latency.snapshot());
        }
        h
    }

    /// Records consumed by sinks so far.
    pub fn sink_count(&self) -> u64 {
        self.base_sink
            + self
                .shared
                .as_ref()
                .map(|s| s.sink_count.load(Ordering::Relaxed))
                .unwrap_or(0)
    }

    /// Records produced by sources so far.
    pub fn source_count(&self) -> u64 {
        self.base_source
            + self
                .shared
                .as_ref()
                .map(|s| s.source_count.load(Ordering::Relaxed))
                .unwrap_or(0)
    }

    /// Discard latency samples collected so far (typically at the end of a
    /// warmup period, mirroring the paper's 20 s warmup before measuring).
    pub fn reset_latency(&mut self) {
        self.base_latency = Histogram::new();
        if let Some(s) = &self.shared {
            s.latency.clear();
        }
    }

    /// Block until sinks have consumed at least `n` records (test helper).
    pub fn wait_for_sink_count(&self, n: u64, timeout: Duration) -> SqResult<()> {
        let deadline = Instant::now() + timeout;
        while self.sink_count() < n {
            // A dead worker means the count may never arrive — fail fast
            // instead of spinning until the timeout.
            if let Some(msg) = self.worker_failure() {
                return Err(SqError::WorkerDied(msg));
            }
            if Instant::now() > deadline {
                return Err(SqError::Runtime(format!(
                    "timed out waiting for {n} sink records (got {})",
                    self.sink_count()
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Whether this incarnation needs supervisor attention: a worker thread
    /// has panicked, the coordinator was killed, or the job is not running
    /// at all.
    pub fn needs_recovery(&self) -> bool {
        let Some(shared) = &self.shared else {
            return true;
        };
        self.running.is_none()
            || shared.dead_workers.load(Ordering::Acquire) > 0
            || shared.coordinator_dead.load(Ordering::SeqCst)
    }

    /// First worker-panic message of this incarnation, if any.
    pub fn worker_failure(&self) -> Option<String> {
        self.shared.as_ref().and_then(|s| s.worker_failure())
    }

    /// Block until every source instance has exhausted its (finite) input.
    ///
    /// Exhausted sources stay alive to serve checkpoints, so a subsequent
    /// [`JobHandle::checkpoint_now`] acts as a barrier behind every produced
    /// record: when it commits, every operator has processed everything.
    pub fn wait_sources_exhausted(&self, timeout: Duration) -> SqResult<()> {
        let sources: u32 = self
            .spec
            .source_indexes()
            .iter()
            .map(|&i| self.spec.vertices[i].parallelism)
            .sum();
        let deadline = Instant::now() + timeout;
        loop {
            let exhausted = self
                .shared
                .as_ref()
                .map(|s| s.exhausted_sources.load(Ordering::Acquire))
                .unwrap_or(0);
            if exhausted >= sources {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(SqError::Runtime(format!(
                    "timed out: {exhausted}/{sources} sources exhausted"
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// [`JobHandle::wait_sources_exhausted`] followed by a checkpoint
    /// barrier: on return, every record has been fully processed by every
    /// operator and captured in the committed snapshot.
    pub fn drain_and_checkpoint(&mut self, timeout: Duration) -> SqResult<SnapshotId> {
        self.wait_sources_exhausted(timeout)?;
        self.checkpoint_now()
    }

    /// Simulate a process failure: every worker dies, in-memory operator
    /// state and in-flight records are lost. The grid (snapshot stores, live
    /// maps) survives — it is the durable substrate recovery reads.
    pub fn crash(&mut self) {
        let Some(running) = self.running.take() else {
            return;
        };
        if let Some(shared) = &self.shared {
            shared.poison.store(true, Ordering::SeqCst);
        }
        running.coordinator.stop();
        for t in running.threads {
            let _ = t.join();
        }
        drop(running.source_controls);
        self.fold_metrics();
        // A checkpoint caught mid-flight by the crash stays in progress at
        // the registry; release it so recovery can checkpoint again.
        if let Some(ssid) = self.grid.registry().in_progress() {
            for name in self.spec.stateful_names() {
                self.grid.snapshot_store(&name).discard(ssid);
            }
            self.grid.snapshot_store(OFFSETS_STORE).discard(ssid);
            let _ = self.grid.registry().abort(ssid);
        }
    }

    /// Rebuild the job from the latest committed snapshot (rollback
    /// recovery): operator state restored, sources rewound, live maps rebuilt
    /// to the snapshot's contents.
    pub fn recover(&mut self) -> SqResult<()> {
        if self.running.is_some() {
            return Err(SqError::Runtime("job is still running".into()));
        }
        let latest = self.grid.registry().latest_committed();
        if !latest.is_some() {
            return Err(SqError::NotFound(
                "no committed snapshot to recover from".into(),
            ));
        }
        self.grid.telemetry().event(
            EventKind::Recovery,
            Some(&self.spec.name),
            Some(latest.0),
            None,
            "rollback to latest committed snapshot",
        );
        let mut span = self.grid.telemetry().spans().start("recovery");
        span.label("job", &self.spec.name);
        span.label("mode", "rollback");
        span.label("ssid", latest.0);
        let (running, shared) = build_runtime(
            &self.spec,
            &self.grid,
            &self.config,
            &self.clock,
            Some(latest),
            self.stats.clone(),
        )?;
        self.running = Some(running);
        self.shared = Some(shared);
        Ok(())
    }

    /// [`JobHandle::recover`] when a committed snapshot exists; otherwise
    /// roll back to the *initial* state: clear any read-uncommitted live-map
    /// writes the dead incarnation left behind and rebuild from scratch.
    ///
    /// This is what a supervisor needs when a fault strikes before the first
    /// checkpoint ever commits — plain `recover()` would return `NotFound`.
    pub fn recover_or_restart(&mut self) -> SqResult<()> {
        if self.running.is_some() {
            return Err(SqError::Runtime("job is still running".into()));
        }
        if self.grid.registry().latest_committed().is_some() {
            return self.recover();
        }
        if self.config.state.live_state {
            for name in self.spec.stateful_names() {
                if let Some(map) = self.grid.get_map(&name) {
                    map.clear();
                }
            }
        }
        self.grid.telemetry().event(
            EventKind::Recovery,
            Some(&self.spec.name),
            None,
            None,
            "no committed snapshot; restart from initial state",
        );
        let mut span = self.grid.telemetry().spans().start("recovery");
        span.label("job", &self.spec.name);
        span.label("mode", "restart");
        let (running, shared) = build_runtime(
            &self.spec,
            &self.grid,
            &self.config,
            &self.clock,
            None,
            self.stats.clone(),
        )?;
        self.running = Some(running);
        self.shared = Some(shared);
        Ok(())
    }

    /// Graceful shutdown: stop checkpoints, drain sources, join workers,
    /// return the final report.
    pub fn stop(mut self) -> JobReport {
        self.stop_in_place()
    }

    fn stop_in_place(&mut self) -> JobReport {
        if let Some(running) = self.running.take() {
            running.coordinator.stop();
            for ctl in &running.source_controls {
                let _ = ctl.send(SourceCommand::Stop);
            }
            for t in running.threads {
                let _ = t.join();
            }
        }
        self.fold_metrics();
        self.grid.telemetry().event(
            EventKind::JobStopped,
            Some(&self.spec.name),
            None,
            Some(self.started.elapsed().as_micros() as u64),
            "",
        );
        JobReport {
            latency: self.base_latency.clone(),
            sink_records: self.base_sink,
            source_records: self.base_source,
            duration: self.started.elapsed(),
            checkpoints: self.stats.records(),
            aborted_checkpoints: self.stats.aborted(),
        }
    }

    fn fold_metrics(&mut self) {
        if let Some(shared) = self.shared.take() {
            self.base_latency.merge(&shared.latency.snapshot());
            self.base_sink += shared.sink_count.load(Ordering::Relaxed);
            self.base_source += shared.source_count.load(Ordering::Relaxed);
        }
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        if self.running.is_some() {
            self.crash();
        }
    }
}

/// Bounded-restart policy for a [`SupervisedJob`].
#[derive(Debug, Clone, Copy)]
pub struct RestartPolicy {
    /// Total restart budget over the supervised job's lifetime (it does not
    /// reset after a successful recovery — a crash-looping job gives up).
    pub max_restarts: u32,
    /// Base delay before the first restart; doubles per restart.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// How often the monitor thread checks job health.
    pub poll_interval: Duration,
    /// Seed for backoff jitter (deterministic for a fixed seed).
    pub jitter_seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            poll_interval: Duration::from_millis(5),
            jitter_seed: 0,
        }
    }
}

/// What the supervisor has done so far.
#[derive(Debug, Clone, Default)]
pub struct SupervisorStatus {
    /// Restarts performed (successful or not).
    pub restarts: u32,
    /// The restart budget is exhausted; the job stays down.
    pub gave_up: bool,
    /// Most recent failure message (worker panic or recovery error).
    pub last_error: Option<String>,
}

/// A [`JobHandle`] watched by a monitor thread that detects dead workers and
/// killed coordinators, then crashes and recovers the job under a bounded
/// exponential-backoff [`RestartPolicy`] — no manual
/// [`JobHandle::recover`] call needed.
///
/// Queries are isolated from all of this: SQL and direct reads go through
/// the grid (registry + stores), never through the job lock, so throughout
/// detection, backoff, and recovery they keep serving the last *committed*
/// snapshot.
pub struct SupervisedJob {
    job: Arc<Mutex<JobHandle>>,
    stats: CheckpointStats,
    stop_flag: Arc<AtomicBool>,
    status: Arc<Mutex<SupervisorStatus>>,
    monitor: Option<JoinHandle<()>>,
}

impl SupervisedJob {
    /// Put `job` under supervision.
    pub fn supervise(job: JobHandle, policy: RestartPolicy) -> SupervisedJob {
        let grid = Arc::clone(job.grid());
        let stats = job.checkpoint_stats();
        let job = Arc::new(Mutex::new(job));
        let stop_flag = Arc::new(AtomicBool::new(false));
        let status = Arc::new(Mutex::new(SupervisorStatus::default()));
        let monitor_job = Arc::clone(&job);
        let monitor_stop = Arc::clone(&stop_flag);
        let monitor_status = Arc::clone(&status);
        let monitor = std::thread::Builder::new()
            .name("squery-supervisor".into())
            .spawn(move || {
                while !monitor_stop.load(Ordering::Acquire) {
                    std::thread::sleep(policy.poll_interval);
                    let (needs, failure) = {
                        let _lo = lockorder::acquired(LockClass::SupervisorJob);
                        let j = monitor_job.lock();
                        (j.needs_recovery(), j.worker_failure())
                    };
                    if !needs {
                        continue;
                    }
                    let attempt = {
                        let _lo = lockorder::acquired(LockClass::SupervisorStatus);
                        monitor_status.lock().restarts
                    };
                    if attempt >= policy.max_restarts {
                        grid.telemetry().event(
                            EventKind::SupervisorGaveUp,
                            None,
                            None,
                            None,
                            format!("restart budget of {} exhausted", policy.max_restarts),
                        );
                        // Take the job fully down (joins every remaining
                        // worker) and stamp its fault records BEFORE
                        // publishing the terminal status: an observer that
                        // sees `gave_up` must also see the resolved
                        // outcome, never a `pending` record.
                        {
                            let _lo = lockorder::acquired(LockClass::SupervisorJob);
                            monitor_job.lock().crash();
                        }
                        if let Some(injector) = grid.fault_injector() {
                            injector.resolve_pending("gave_up");
                        }
                        {
                            let _lo = lockorder::acquired(LockClass::SupervisorStatus);
                            let mut st = monitor_status.lock();
                            st.gave_up = true;
                            if st.last_error.is_none() {
                                st.last_error = failure;
                            }
                        }
                        break;
                    }
                    grid.telemetry()
                        .counter("supervisor_restarts_total", &[])
                        .inc();
                    grid.telemetry().event(
                        EventKind::SupervisorRestart,
                        None,
                        None,
                        None,
                        failure.clone().unwrap_or_else(|| "job not running".into()),
                    );
                    let mut restart_span = grid.telemetry().spans().start("supervisor_restart");
                    restart_span.label("attempt", attempt + 1);
                    if let Some(f) = &failure {
                        restart_span.label("failure", f);
                    }
                    std::thread::sleep(backoff_with_jitter(
                        policy.base_backoff,
                        attempt,
                        policy.max_backoff,
                        policy.jitter_seed ^ u64::from(attempt),
                    ));
                    if monitor_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let began = Instant::now();
                    let result = {
                        let _lo = lockorder::acquired(LockClass::SupervisorJob);
                        let mut j = monitor_job.lock();
                        j.crash();
                        // Between crash() (old workers joined) and the
                        // rebuild (new workers not yet spawned), exactly the
                        // dead incarnation's faults are pending — resolve
                        // them here so a fresh fault in the next incarnation
                        // can't be mislabeled.
                        if let Some(injector) = grid.fault_injector() {
                            injector.resolve_pending("recovered");
                        }
                        j.recover_or_restart()
                    };
                    {
                        let _lo = lockorder::acquired(LockClass::SupervisorStatus);
                        let mut st = monitor_status.lock();
                        st.restarts += 1;
                        match &result {
                            Ok(()) => st.last_error = failure,
                            Err(e) => st.last_error = Some(e.to_string()),
                        }
                    }
                    if result.is_ok() {
                        grid.telemetry()
                            .histogram("recovery_duration_us", &[])
                            .record(began.elapsed().as_micros() as u64);
                        // Live maps were cleared and reloaded: re-anchor the
                        // stats rate baselines so the next sampler pass does
                        // not report the restore as churn.
                        grid.stats().note_recovery(&grid);
                    }
                }
            })
            .expect("spawn supervisor");
        SupervisedJob {
            job,
            stats,
            stop_flag,
            status,
            monitor: Some(monitor),
        }
    }

    /// Run `f` against the underlying job handle.
    ///
    /// Held only briefly by the monitor except while a recovery is actually
    /// in flight — queries don't come through here.
    pub fn with_job<R>(&self, f: impl FnOnce(&mut JobHandle) -> R) -> R {
        let _lo = lockorder::acquired(LockClass::SupervisorJob);
        f(&mut self.job.lock())
    }

    /// Supervisor bookkeeping so far.
    pub fn status(&self) -> SupervisorStatus {
        let _lo = lockorder::acquired(LockClass::SupervisorStatus);
        self.status.lock().clone()
    }

    /// Checkpoint timing log (survives restarts).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.stats.clone()
    }

    /// Whether the job is currently running and needs no attention.
    pub fn is_healthy(&self) -> bool {
        // Canonical order: status before job (§9); both guards are
        // statement temporaries, so they overlap for the `&&`.
        let _so = lockorder::acquired(LockClass::SupervisorStatus);
        let _jo = lockorder::acquired(LockClass::SupervisorJob);
        !self.status.lock().gave_up && !self.job.lock().needs_recovery()
    }

    /// Block until the supervisor has the job running cleanly (or give-up /
    /// timeout).
    pub fn wait_healthy(&self, timeout: Duration) -> SqResult<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let gave_up = {
                let _lo = lockorder::acquired(LockClass::SupervisorStatus);
                self.status.lock().gave_up
            };
            if gave_up {
                return Err(SqError::Runtime("supervisor gave up".into()));
            }
            if self.is_healthy() {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(SqError::Runtime(
                    "timed out waiting for supervised recovery".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn halt_monitor(&mut self) {
        self.stop_flag.store(true, Ordering::Release);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }

    /// Stop supervision and the job; return the final report.
    pub fn stop(mut self) -> JobReport {
        self.halt_monitor();
        let _lo = lockorder::acquired(LockClass::SupervisorJob);
        self.job.lock().stop_in_place()
    }
}

impl Drop for SupervisedJob {
    fn drop(&mut self) {
        // The inner JobHandle's own Drop crashes the job.
        self.halt_monitor();
    }
}

/// Build channels, state backends, and threads for one job incarnation.
fn build_runtime(
    spec: &JobSpec,
    grid: &Arc<Grid>,
    config: &EngineConfig,
    clock: &Clock,
    restore: Option<SnapshotId>,
    stats: CheckpointStats,
) -> SqResult<(Running, Arc<Shared>)> {
    let (ack_tx, ack_rx) = unbounded();
    let shared = Arc::new(Shared {
        clock: clock.clone(),
        poison: AtomicBool::new(false),
        ack_tx,
        latency: SharedHistogram::new(),
        sink_count: AtomicU64::new(0),
        source_count: AtomicU64::new(0),
        live_instances: AtomicU32::new(spec.total_instances()),
        exhausted_sources: AtomicU32::new(0),
        partitioner: grid.partitioner(),
        telemetry: grid.telemetry().clone(),
        faults: grid.fault_injector(),
        dead_workers: AtomicU32::new(0),
        coordinator_dead: AtomicBool::new(false),
        failure: parking_lot::Mutex::new(None),
    });

    // Input channels for every non-source instance.
    let mut input_tx: Vec<Vec<Option<Sender<Tagged>>>> = Vec::new();
    let mut input_rx: Vec<Vec<Option<Receiver<Tagged>>>> = Vec::new();
    for v in &spec.vertices {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..v.parallelism {
            if matches!(v.kind, VertexKind::Source(_)) {
                txs.push(None);
                rxs.push(None);
            } else {
                let (tx, rx) = bounded(config.channel_capacity);
                txs.push(Some(tx));
                rxs.push(Some(rx));
            }
        }
        input_tx.push(txs);
        input_rx.push(rxs);
    }

    // Channel-tag layout at each vertex: incoming edges in declaration order,
    // each contributing one channel per upstream instance.
    let tag_base = |vertex: usize, edge_index: usize| -> u32 {
        let mut base = 0u32;
        for (ei, e) in spec.incoming(vertex) {
            if ei == edge_index {
                return base;
            }
            base += spec.vertices[e.from].parallelism;
        }
        unreachable!("edge {edge_index} not incoming at vertex {vertex}")
    };
    let n_channels = |vertex: usize| -> u32 {
        spec.incoming(vertex)
            .iter()
            .map(|(_, e)| spec.vertices[e.from].parallelism)
            .sum()
    };
    let outputs = |vertex: usize, instance: u32| -> Vec<OutputPort> {
        spec.outgoing(vertex)
            .into_iter()
            .map(|(edge_index, e)| {
                let port = spec
                    .incoming(e.to)
                    .iter()
                    .position(|(ei, _)| *ei == edge_index)
                    .expect("edge is incoming at its target") as u8;
                OutputPort {
                    kind: e.kind,
                    senders: input_tx[e.to]
                        .iter()
                        .map(|t| t.clone().expect("non-source target has inputs"))
                        .collect(),
                    tag: tag_base(e.to, edge_index) + instance,
                    port,
                }
            })
            .collect()
    };

    let offsets_store = grid.snapshot_store(OFFSETS_STORE);
    let mut stores: Vec<Arc<SnapshotStore>> = vec![Arc::clone(&offsets_store)];
    let mut threads = Vec::new();
    let mut source_controls = Vec::new();

    for (vi, v) in spec.vertices.iter().enumerate() {
        match &v.kind {
            VertexKind::Source(factory) => {
                for i in 0..v.parallelism {
                    let (ctl_tx, ctl_rx) = unbounded();
                    source_controls.push(ctl_tx);
                    let mut source = factory.create(i, v.parallelism);
                    let saver = OffsetSaver {
                        store: Arc::clone(&offsets_store),
                        key: Value::str(format!("{}#{i}", v.name)),
                    };
                    if let Some(ssid) = restore {
                        if let Some(offset) = saver.load(ssid) {
                            source.rewind(&offset);
                        }
                    }
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let batch = config.source_batch;
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_source(source, ctl_rx, outs, i, batch, shared, saver, tel)
                    }));
                }
            }
            VertexKind::Stateless(factory) => {
                for i in 0..v.parallelism {
                    let rx = input_rx[vi][i as usize].take().expect("input channel");
                    let op = factory.create(i, v.parallelism);
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let channels = n_channels(vi);
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_operator(
                            rx,
                            channels,
                            OperatorKind::Stateless(op),
                            outs,
                            i,
                            shared,
                            tel,
                        )
                    }));
                }
            }
            VertexKind::Stateful(factory) => {
                let store = grid.snapshot_store(&v.name);
                if !stores.iter().any(|s| Arc::ptr_eq(s, &store)) {
                    stores.push(Arc::clone(&store));
                }
                let live = config.state.live_state.then(|| grid.map(&v.name));
                if let Some(schema) = &v.state_schema {
                    store.set_value_schema(Arc::clone(schema));
                    if let Some(l) = &live {
                        l.set_value_schema(Arc::clone(schema));
                    }
                }
                for i in 0..v.parallelism {
                    let rx = input_rx[vi][i as usize].take().expect("input channel");
                    let sink = if config.state.queryable_snapshots {
                        SnapshotSink::Queryable {
                            store: Arc::clone(&store),
                            mode: config.state.snapshot_mode,
                        }
                    } else {
                        SnapshotSink::Blob {
                            store: Arc::clone(&store),
                        }
                    };
                    let mut backend = StateBackend::new(
                        v.name.clone(),
                        i,
                        v.parallelism,
                        grid.partitioner(),
                        live.clone(),
                        sink,
                    )
                    .with_telemetry(grid.telemetry());
                    if let Some(ssid) = restore {
                        backend.restore(ssid)?;
                    }
                    let op = factory.create(i, v.parallelism);
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let channels = n_channels(vi);
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_operator(
                            rx,
                            channels,
                            OperatorKind::Stateful { op, state: backend },
                            outs,
                            i,
                            shared,
                            tel,
                        )
                    }));
                }
            }
            VertexKind::Sink(factory) => {
                for i in 0..v.parallelism {
                    let rx = input_rx[vi][i as usize].take().expect("input channel");
                    let sink = factory.create(i, v.parallelism);
                    let outs = outputs(vi, i);
                    let shared = Arc::clone(&shared);
                    let channels = n_channels(vi);
                    let tel = WorkerTelemetry::for_operator(grid.telemetry(), &v.name);
                    threads.push(spawn_named(format!("{}#{i}", v.name), move || {
                        run_operator(rx, channels, OperatorKind::Sink(sink), outs, i, shared, tel)
                    }));
                }
            }
        }
    }

    let coordinator = Coordinator::start(
        CoordinatorContext {
            grid: Arc::clone(grid),
            source_controls: source_controls.clone(),
            ack_rx,
            shared: Arc::clone(&shared),
            stores,
            stats,
            ack_timeout: config.ack_timeout,
            retries: config.checkpoint_retries,
            retry_backoff: config.retry_backoff,
        },
        config.checkpoint_interval,
    );

    Ok((
        Running {
            threads,
            source_controls,
            coordinator,
        },
        shared,
    ))
}

fn spawn_named(name: String, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::adapters::{FnSink, FnStateful, FnStatefulOp, NullSinkFactory};
    use crate::dag::{EdgeKind, Sink, SourceFactory, Stateful};
    use crate::message::Record;
    use crate::source::{GeneratorSource, Source};
    use crate::state::KeyedState;

    /// Source producing ints 0..limit keyed by `i % keys`.
    struct IntSourceFactory {
        limit: u64,
        keys: i64,
    }

    impl SourceFactory for IntSourceFactory {
        fn create(&self, instance: u32, total: u32) -> Box<dyn Source> {
            // Split the range across instances by residue.
            let keys = self.keys;
            let limit = self.limit;
            let (instance, total) = (instance as u64, total as u64);
            let count = limit / total + u64::from(instance < limit % total);
            Box::new(GeneratorSource::new(count, move |i| {
                let n = (i * total + instance) as i64;
                Some(Record::new(n % keys, n))
            }))
        }
    }

    /// Stateful op: per-key running sum, emits the new sum.
    fn summing_factory() -> Arc<FnStateful<impl Fn(u32, u32) -> Box<dyn Stateful> + Send + Sync>> {
        Arc::new(FnStateful(|_, _| {
            Box::new(FnStatefulOp(
                |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                    let prev = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0);
                    let next = prev + r.value.as_int().unwrap_or(0);
                    state.put(r.key.clone(), Value::Int(next));
                    out.push(Record {
                        key: r.key,
                        value: Value::Int(next),
                        src_ts: r.src_ts,
                        port: 0,
                    });
                },
            )) as Box<dyn Stateful>
        }))
    }

    fn sum_job(limit: u64, keys: i64, par: u32) -> JobSpec {
        let mut b = JobSpec::builder("sum");
        let src = b.source("src", 1, Arc::new(IntSourceFactory { limit, keys }));
        let op = b.stateful("sums", par, summing_factory());
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(src, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        b.build().unwrap()
    }

    fn env(state: StateConfig) -> StreamEnv {
        let config = EngineConfig {
            state,
            checkpoint_interval: None,
            ..EngineConfig::default()
        };
        StreamEnv::new(Grid::single_node(), config)
    }

    /// Expected per-key sums for ints 0..limit keyed by i % keys.
    fn expected_sums(limit: i64, keys: i64) -> Vec<(Value, Value)> {
        let mut sums = vec![0i64; keys as usize];
        for n in 0..limit {
            sums[(n % keys) as usize] += n;
        }
        sums.into_iter()
            .enumerate()
            .map(|(k, s)| (Value::Int(k as i64), Value::Int(s)))
            .collect()
    }

    #[test]
    fn stats_sampler_lifecycle_follows_the_env() {
        let grid = Grid::single_node();
        let config = EngineConfig {
            state: StateConfig::live_and_snapshot(),
            checkpoint_interval: None,
            stats_interval: Some(Duration::from_millis(5)),
            ..EngineConfig::default()
        };
        let env = StreamEnv::new(Arc::clone(&grid), config);
        assert!(env.stats_sampler_running());
        assert!(grid.stats().is_armed(), "env arms the grid");
        grid.map("orders").put(Value::Int(1), Value::Int(1));
        let deadline = Instant::now() + Duration::from_secs(10);
        while grid.stats().samples_total() == 0 {
            assert!(Instant::now() < deadline, "sampler never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(grid.stats().table(&grid, "orders").is_some());
        drop(env);
        // After the drop the thread is joined: the sample count freezes.
        let frozen = grid.stats().samples_total();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(grid.stats().samples_total(), frozen);
    }

    #[test]
    fn sampler_disabled_by_default() {
        let env = env(StateConfig::live_and_snapshot());
        assert!(!env.stats_sampler_running());
        assert!(!env.grid().stats().is_armed());
    }

    #[test]
    fn pipeline_processes_everything() {
        let env = env(StateConfig::live_and_snapshot());
        let mut job = env.submit(sum_job(1000, 10, 4)).unwrap();
        job.wait_for_sink_count(1000, Duration::from_secs(20))
            .unwrap();
        job.drain_and_checkpoint(Duration::from_secs(20)).unwrap();
        // Live state holds the exact final sums.
        let live = env.grid().get_map("sums").unwrap();
        let mut entries = live.entries();
        entries.sort();
        assert_eq!(entries, expected_sums(1000, 10));
        let report = job.stop();
        assert_eq!(report.sink_records, 1000);
        assert_eq!(report.source_records, 1000);
        assert_eq!(report.latency.count(), 1000);
    }

    #[test]
    fn checkpoint_now_produces_queryable_snapshot() {
        let env = env(StateConfig::snapshot_only());
        let mut job = env.submit(sum_job(500, 5, 2)).unwrap();
        job.wait_for_sink_count(500, Duration::from_secs(20))
            .unwrap();
        let ssid = job.drain_and_checkpoint(Duration::from_secs(20)).unwrap();
        assert_eq!(env.grid().registry().latest_committed(), ssid);
        let store = env.grid().get_snapshot_store("sums").unwrap();
        let (mut entries, _) = store.scan_at(ssid).unwrap();
        entries.sort();
        assert_eq!(entries, expected_sums(500, 5));
        let stats = job.checkpoint_stats();
        assert_eq!(stats.records().len(), 1);
        job.stop();
    }

    #[test]
    fn crash_and_recover_is_exactly_once() {
        let env = env(StateConfig::live_and_snapshot());
        let mut job = env.submit(sum_job(20_000, 10, 2)).unwrap();
        // Let some records through, checkpoint, let more through, crash.
        job.wait_for_sink_count(2_000, Duration::from_secs(20))
            .unwrap();
        job.checkpoint_now().unwrap();
        job.wait_for_sink_count(5_000, Duration::from_secs(20))
            .unwrap();
        job.crash();
        assert!(!job.is_running());
        // Recover and drain to completion (checkpoint barrier guarantees the
        // operators applied every replayed record before we inspect state).
        job.recover().unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        // Exactly-once: every input contributed to the sums exactly once,
        // even though records between the checkpoint and the crash were
        // processed twice from the sink's point of view.
        let live = env.grid().get_map("sums").unwrap();
        let mut entries = live.entries();
        entries.sort();
        assert_eq!(entries, expected_sums(20_000, 10));
        job.stop();
    }

    #[test]
    fn recovery_records_a_span_when_tracing_enabled() {
        let env = env(StateConfig::live_and_snapshot());
        env.grid().telemetry().spans().set_enabled(true);
        let mut job = env.submit(sum_job(500, 5, 2)).unwrap();
        job.wait_for_sink_count(500, Duration::from_secs(20))
            .unwrap();
        job.drain_and_checkpoint(Duration::from_secs(20)).unwrap();
        job.crash();
        job.recover().unwrap();
        let spans = env.grid().telemetry().spans().snapshot();
        let rec = spans
            .iter()
            .find(|s| s.kind == "recovery")
            .expect("recovery span");
        assert_eq!(rec.label("mode"), Some("rollback"));
        assert_eq!(rec.label("job"), Some("sum"));
        assert_eq!(rec.label("ssid"), Some("1"));
        // The traced checkpoint round also left its phase spans behind.
        assert!(spans.iter().any(|s| s.kind == "checkpoint_round"));
        assert!(spans.iter().any(|s| s.kind == "snapshot_write"));
        assert!(spans.iter().any(|s| s.kind == "mirror_write"));
        job.stop();
    }

    #[test]
    fn recover_without_snapshot_fails() {
        let env = env(StateConfig::snapshot_only());
        let mut job = env.submit(sum_job(100, 5, 1)).unwrap();
        job.crash();
        assert!(matches!(job.recover(), Err(SqError::NotFound(_))));
    }

    #[test]
    fn periodic_checkpoints_run() {
        let config = EngineConfig {
            state: StateConfig::snapshot_only(),
            checkpoint_interval: Some(Duration::from_millis(25)),
            ..EngineConfig::default()
        };
        let env = StreamEnv::new(Grid::single_node(), config);
        // Unbounded source paced at 50k/s.
        struct Paced;
        impl SourceFactory for Paced {
            fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
                Box::new(
                    GeneratorSource::new(0, |i| Some(Record::new((i % 100) as i64, i as i64)))
                        .with_rate(50_000.0),
                )
            }
        }
        let mut b = JobSpec::builder("periodic");
        let src = b.source("src", 1, Arc::new(Paced));
        let op = b.stateful("state", 2, summing_factory());
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(src, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        let job = env.submit(b.build().unwrap()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while env.grid().registry().latest_committed().0 < 3 {
            assert!(Instant::now() < deadline, "periodic checkpoints stalled");
            std::thread::sleep(Duration::from_millis(10));
        }
        let report = job.stop();
        assert!(report.checkpoints.len() >= 3);
        assert!(report.throughput() > 0.0);
        for c in &report.checkpoints {
            assert!(c.total_us >= c.phase1_us);
        }
    }

    #[test]
    fn two_input_operator_aligns_and_joins_streams() {
        // Port 0 adds, port 1 subtracts; both keyed to the same state.
        let env = env(StateConfig::snapshot_only());
        struct Ints {
            limit: u64,
        }
        impl SourceFactory for Ints {
            fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
                let limit = self.limit;
                Box::new(GeneratorSource::new(limit, |i| {
                    Some(Record::new((i % 7) as i64, 1i64))
                }))
            }
        }
        let op_factory = Arc::new(FnStateful(|_, _| {
            Box::new(FnStatefulOp(
                |r: Record, state: &mut dyn KeyedState, _out: &mut Vec<Record>| {
                    let prev = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0);
                    let delta = if r.port == 0 { 1 } else { -1 };
                    state.put(r.key.clone(), Value::Int(prev + delta));
                },
            )) as Box<dyn Stateful>
        }));
        let mut b = JobSpec::builder("two-input");
        let plus = b.source("plus", 1, Arc::new(Ints { limit: 700 }));
        let minus = b.source("minus", 1, Arc::new(Ints { limit: 350 }));
        let op = b.stateful("balance", 2, op_factory);
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(plus, op, EdgeKind::Keyed);
        b.edge(minus, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        let mut job = env.submit(b.build().unwrap()).unwrap();
        let ssid = job.drain_and_checkpoint(Duration::from_secs(20)).unwrap();
        let store = env.grid().get_snapshot_store("balance").unwrap();
        let (entries, _) = store.scan_at(ssid).unwrap();
        assert_eq!(entries.len(), 7);
        for (_k, v) in entries {
            assert_eq!(v, Value::Int(100 - 50), "700/7 pluses minus 350/7 minuses");
        }
        job.stop();
    }

    #[test]
    fn sink_latency_is_recorded() {
        use parking_lot::Mutex;
        let env = env(StateConfig::jet_baseline());
        let got: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        struct Collect(Arc<Mutex<Vec<i64>>>);
        impl Sink for Collect {
            fn consume(&mut self, r: Record) {
                self.0.lock().push(r.value.as_int().unwrap());
            }
        }
        let mut b = JobSpec::builder("latency");
        let src = b.source(
            "src",
            1,
            Arc::new(IntSourceFactory {
                limit: 100,
                keys: 100,
            }),
        );
        let sink = b.sink(
            "sink",
            1,
            Arc::new(FnSink(move |_, _| {
                Box::new(Collect(Arc::clone(&got2))) as Box<dyn Sink>
            })),
        );
        b.edge(src, sink, EdgeKind::Forward);
        let job = env.submit(b.build().unwrap()).unwrap();
        job.wait_for_sink_count(100, Duration::from_secs(10))
            .unwrap();
        let report = job.stop();
        assert_eq!(report.latency.count(), 100);
        assert_eq!(got.lock().len(), 100);
    }

    fn panic_plan(at_record: u64, once: bool) -> squery_common::fault::FaultPlan {
        use squery_common::fault::*;
        FaultPlan::new(11).with(FaultSpec {
            point: InjectionPoint::WorkerRecord,
            action: FaultAction::PanicWorker,
            trigger: FaultTrigger {
                at_record: Some(at_record),
                operator: Some("sums".into()),
                ..FaultTrigger::default()
            },
            once,
        })
    }

    #[test]
    fn supervisor_restarts_panicked_job_and_reaches_exact_sums() {
        use squery_common::fault::FaultInjector;
        let grid = Grid::single_node();
        grid.attach_fault_injector(Arc::new(FaultInjector::new(panic_plan(50, true))));
        let config = EngineConfig {
            state: StateConfig::live_and_snapshot(),
            checkpoint_interval: None,
            ..EngineConfig::default()
        };
        let env = StreamEnv::new(Arc::clone(&grid), config);
        let policy = RestartPolicy {
            max_restarts: 3,
            base_backoff: Duration::from_millis(2),
            poll_interval: Duration::from_millis(2),
            jitter_seed: 1,
            ..RestartPolicy::default()
        };
        let job = env.submit_supervised(sum_job(2000, 10, 2), policy).unwrap();
        // The injected panic fires once; the supervisor restarts the job
        // from the initial state (no snapshot committed yet) and it reruns
        // to completion — no manual recover() anywhere.
        let deadline = Instant::now() + Duration::from_secs(20);
        while job.status().restarts < 1 {
            assert!(Instant::now() < deadline, "supervisor never restarted");
            std::thread::sleep(Duration::from_millis(2));
        }
        job.wait_healthy(Duration::from_secs(20)).unwrap();
        job.with_job(|j| j.drain_and_checkpoint(Duration::from_secs(20)))
            .unwrap();
        let live = grid.get_map("sums").unwrap();
        let mut entries = live.entries();
        entries.sort();
        assert_eq!(entries, expected_sums(2000, 10));
        let status = job.status();
        assert_eq!(status.restarts, 1);
        assert!(!status.gave_up);
        assert!(status.last_error.unwrap().contains("injected fault"));
        assert_eq!(
            grid.telemetry()
                .counter_value("supervisor_restarts_total", &[]),
            Some(1)
        );
        let fault_log = grid.fault_injector().unwrap().records();
        assert_eq!(fault_log.len(), 1);
        assert_eq!(fault_log[0].outcome, "recovered");
        job.stop();
    }

    #[test]
    fn supervisor_gives_up_after_restart_budget() {
        use squery_common::fault::FaultInjector;
        let grid = Grid::single_node();
        // `once: false`: the worker re-panics at the same record after every
        // restart — a crash loop the budget must bound.
        grid.attach_fault_injector(Arc::new(FaultInjector::new(panic_plan(10, false))));
        let config = EngineConfig {
            state: StateConfig::live_and_snapshot(),
            checkpoint_interval: None,
            ..EngineConfig::default()
        };
        let env = StreamEnv::new(Arc::clone(&grid), config);
        let policy = RestartPolicy {
            max_restarts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            poll_interval: Duration::from_millis(2),
            jitter_seed: 2,
        };
        let job = env.submit_supervised(sum_job(2000, 10, 2), policy).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while !job.status().gave_up {
            assert!(Instant::now() < deadline, "supervisor never gave up");
            std::thread::sleep(Duration::from_millis(2));
        }
        let status = job.status();
        assert_eq!(status.restarts, 2, "budget is total, not per-incident");
        let events: Vec<String> = grid
            .telemetry()
            .events()
            .snapshot()
            .iter()
            .map(|e| e.kind.as_str().to_string())
            .collect();
        assert!(events.iter().any(|k| k == "supervisor_gave_up"));
        let fault_log = grid.fault_injector().unwrap().records();
        assert_eq!(fault_log.last().unwrap().outcome, "gave_up");
        job.stop();
    }

    #[test]
    fn wait_for_sink_count_fails_fast_on_worker_death() {
        use squery_common::fault::FaultInjector;
        let grid = Grid::single_node();
        grid.attach_fault_injector(Arc::new(FaultInjector::new(panic_plan(5, true))));
        let config = EngineConfig {
            state: StateConfig::live_and_snapshot(),
            checkpoint_interval: None,
            ..EngineConfig::default()
        };
        let env = StreamEnv::new(Arc::clone(&grid), config);
        // Unsupervised: the panic must surface as WorkerDied, not a hang
        // until the (long) timeout.
        let job = env.submit(sum_job(2000, 1, 1)).unwrap();
        let err = job
            .wait_for_sink_count(2000, Duration::from_secs(30))
            .unwrap_err();
        assert!(matches!(err, SqError::WorkerDied(_)), "{err}");
        assert!(err.to_string().contains("sums#0"), "{err}");
    }

    #[test]
    fn cold_start_from_wal_resumes_exactly_once() {
        use squery_storage::{FsyncMode, WalManager};
        let dir = std::env::temp_dir().join(format!(
            "squery-wal-runtime-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            state: StateConfig::live_and_snapshot(),
            checkpoint_interval: None,
            ..EngineConfig::default()
        };
        // Incarnation 1: process part of the input, checkpoint (sealing the
        // round in the WAL), then die taking every in-memory structure along.
        {
            let grid = Grid::single_node();
            grid.attach_wal(Arc::new(WalManager::new(&dir, FsyncMode::OnCommit, 4)));
            let env = StreamEnv::new(Arc::clone(&grid), config);
            let mut job = env.submit(sum_job(2000, 10, 2)).unwrap();
            job.wait_for_sink_count(500, Duration::from_secs(20))
                .unwrap();
            job.checkpoint_now().unwrap();
            job.crash();
        }
        // Incarnation 2: a brand-new grid rebuilt from the WAL directory
        // alone, then the job resubmitted against the recovered snapshot.
        let grid = Grid::single_node();
        grid.attach_wal(Arc::new(WalManager::new(&dir, FsyncMode::OnCommit, 4)));
        let latest = grid
            .recover_from_wal()
            .unwrap()
            .expect("a sealed round on disk");
        assert_eq!(grid.registry().latest_committed(), latest);
        let env = StreamEnv::new(Arc::clone(&grid), config);
        let mut job = env.submit_restored(sum_job(2000, 10, 2)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        // Exactly-once across the cold start: sources rewound to the
        // recovered offsets, so every input contributed exactly once.
        let live = grid.get_map("sums").unwrap();
        let mut entries = live.entries();
        entries.sort();
        assert_eq!(entries, expected_sums(2000, 10));
        job.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_restored_without_snapshot_is_plain_submit() {
        let env = env(StateConfig::live_and_snapshot());
        let mut job = env.submit_restored(sum_job(100, 5, 1)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(10)).unwrap();
        let live = env.grid().get_map("sums").unwrap();
        let mut entries = live.entries();
        entries.sort();
        assert_eq!(entries, expected_sums(100, 5));
        job.stop();
    }

    #[test]
    fn jet_baseline_writes_blobs_not_queryable_entries() {
        let env = env(StateConfig::jet_baseline());
        let mut job = env.submit(sum_job(100, 10, 2)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(10)).unwrap();
        let store = env.grid().get_snapshot_store("sums").unwrap();
        // 2 instances → 2 blob entries, not 10 queryable key entries.
        assert_eq!(store.stats().stored_entries, 2);
        // And no live map was created.
        assert!(env.grid().get_map("sums").is_none());
        job.stop();
    }
}
