//! Job specification: the DAG of operators.
//!
//! A [`JobSpec`] lists vertices (sources, stateless transforms, stateful
//! operators, sinks) and edges (forward or keyed). Vertex behaviour is
//! supplied through per-instance factories so each parallel instance owns its
//! own (Send, non-Sync) operator object, preserving the "parallel instances
//! of single-threaded operators in disjoint state partitions" execution model
//! the paper's serializability argument rests on (§VII-B).

use crate::message::Record;
use crate::source::Source;
use crate::state::KeyedState;
use squery_common::{SqError, SqResult};
use std::sync::Arc;

/// Creates one [`Source`] per source-vertex instance.
pub trait SourceFactory: Send + Sync {
    /// Create the source for instance `instance` of `total`.
    fn create(&self, instance: u32, total: u32) -> Box<dyn Source>;
}

/// A stateless transformation instance (map / filter / flat-map).
pub trait Stateless: Send {
    /// Process one record, emitting zero or more records into `out`.
    fn process(&mut self, record: Record, out: &mut Vec<Record>);
}

/// Creates one [`Stateless`] per instance.
pub trait StatelessFactory: Send + Sync {
    /// Create the transform for instance `instance` of `total`.
    fn create(&self, instance: u32, total: u32) -> Box<dyn Stateless>;
}

/// A stateful operator instance; its keyed state is managed by the engine
/// (and therefore snapshotted, restored, and — under S-QUERY — queryable).
pub trait Stateful: Send {
    /// Process one record with access to the operator's keyed state.
    fn process(&mut self, record: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>);
}

/// Creates one [`Stateful`] per instance.
pub trait StatefulFactory: Send + Sync {
    /// Create the operator for instance `instance` of `total`.
    fn create(&self, instance: u32, total: u32) -> Box<dyn Stateful>;
}

/// A sink instance.
pub trait Sink: Send {
    /// Consume one record (latency accounting happens in the engine).
    fn consume(&mut self, record: Record);
}

/// Creates one [`Sink`] per instance.
pub trait SinkFactory: Send + Sync {
    /// Create the sink for instance `instance` of `total`.
    fn create(&self, instance: u32, total: u32) -> Box<dyn Sink>;
}

/// Vertex behaviour.
#[derive(Clone)]
pub enum VertexKind {
    /// Event producer.
    Source(Arc<dyn SourceFactory>),
    /// Stateless transform.
    Stateless(Arc<dyn StatelessFactory>),
    /// Stateful keyed operator; its name names its state tables.
    Stateful(Arc<dyn StatefulFactory>),
    /// Event consumer.
    Sink(Arc<dyn SinkFactory>),
}

/// One vertex of the DAG.
#[derive(Clone)]
pub struct VertexSpec {
    /// Operator name — also the live map / `snapshot_<name>` table name for
    /// stateful vertices (paper §V-B).
    pub name: String,
    /// Number of parallel instances.
    pub parallelism: u32,
    /// Behaviour.
    pub kind: VertexKind,
    /// Schema of the state objects (stateful vertices only). Registering it
    /// lets the SQL layer expose the object's fields as columns.
    pub state_schema: Option<std::sync::Arc<squery_common::Schema>>,
}

/// How records route across an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Instance `i` feeds downstream instance `i % downstream_parallelism`.
    Forward,
    /// Records hash-route by key with the shared partitioner.
    Keyed,
}

/// One edge of the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Upstream vertex index.
    pub from: usize,
    /// Downstream vertex index.
    pub to: usize,
    /// Routing.
    pub kind: EdgeKind,
}

/// A complete job description.
#[derive(Clone)]
pub struct JobSpec {
    /// Job name (reporting only).
    pub name: String,
    /// Vertices, in topological order.
    pub vertices: Vec<VertexSpec>,
    /// Edges; `from < to` is required (topological listing).
    pub edges: Vec<EdgeSpec>,
}

impl JobSpec {
    /// Start building a job.
    pub fn builder(name: impl Into<String>) -> JobSpecBuilder {
        JobSpecBuilder {
            spec: JobSpec {
                name: name.into(),
                vertices: Vec::new(),
                edges: Vec::new(),
            },
        }
    }

    /// Validate DAG structure: topological edges, sources have no inputs,
    /// sinks no outputs, every non-source has at least one input, vertex
    /// names unique, parallelism positive.
    pub fn validate(&self) -> SqResult<()> {
        if self.vertices.is_empty() {
            return Err(SqError::Config("job has no vertices".into()));
        }
        let mut names = std::collections::HashSet::new();
        for v in &self.vertices {
            if v.parallelism == 0 {
                return Err(SqError::Config(format!(
                    "vertex '{}' has zero parallelism",
                    v.name
                )));
            }
            if !names.insert(v.name.as_str()) {
                return Err(SqError::Config(format!(
                    "duplicate vertex name '{}'",
                    v.name
                )));
            }
        }
        for e in &self.edges {
            if e.from >= self.vertices.len() || e.to >= self.vertices.len() {
                return Err(SqError::Config(format!(
                    "edge {} -> {} references unknown vertex",
                    e.from, e.to
                )));
            }
            if e.from >= e.to {
                return Err(SqError::Config(
                    "edges must go forward (topological vertex order, no cycles)".into(),
                ));
            }
            if matches!(self.vertices[e.to].kind, VertexKind::Source(_)) {
                return Err(SqError::Config("sources cannot have inputs".into()));
            }
            if matches!(self.vertices[e.from].kind, VertexKind::Sink(_)) {
                return Err(SqError::Config("sinks cannot have outputs".into()));
            }
        }
        for (i, v) in self.vertices.iter().enumerate() {
            let has_input = self.edges.iter().any(|e| e.to == i);
            let has_output = self.edges.iter().any(|e| e.from == i);
            match v.kind {
                VertexKind::Source(_) => {
                    if !has_output {
                        return Err(SqError::Config(format!(
                            "source '{}' feeds nothing",
                            v.name
                        )));
                    }
                }
                _ => {
                    if !has_input {
                        return Err(SqError::Config(format!(
                            "vertex '{}' has no inputs",
                            v.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Indexes of the source vertices.
    pub fn source_indexes(&self) -> Vec<usize> {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VertexKind::Source(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Names of the stateful vertices (the operators with queryable state).
    pub fn stateful_names(&self) -> Vec<String> {
        self.vertices
            .iter()
            .filter(|v| matches!(v.kind, VertexKind::Stateful(_)))
            .map(|v| v.name.clone())
            .collect()
    }

    /// Total instance count across vertices.
    pub fn total_instances(&self) -> u32 {
        self.vertices.iter().map(|v| v.parallelism).sum()
    }

    /// Incoming edges of a vertex, in declaration order (edge order defines
    /// the record `port` numbering).
    pub fn incoming(&self, vertex: usize) -> Vec<(usize, EdgeSpec)> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == vertex)
            .map(|(i, e)| (i, *e))
            .collect()
    }

    /// Outgoing edges of a vertex, in declaration order.
    pub fn outgoing(&self, vertex: usize) -> Vec<(usize, EdgeSpec)> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == vertex)
            .map(|(i, e)| (i, *e))
            .collect()
    }
}

/// Fluent builder for [`JobSpec`].
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    /// Add a vertex; returns its index for use in [`JobSpecBuilder::edge`].
    pub fn vertex(&mut self, name: impl Into<String>, parallelism: u32, kind: VertexKind) -> usize {
        self.spec.vertices.push(VertexSpec {
            name: name.into(),
            parallelism,
            kind,
            state_schema: None,
        });
        self.spec.vertices.len() - 1
    }

    /// Add a stateful vertex with a registered state-object schema (the SQL
    /// layer then exposes the object's fields as columns).
    pub fn stateful_with_schema(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        factory: Arc<dyn StatefulFactory>,
        schema: std::sync::Arc<squery_common::Schema>,
    ) -> usize {
        let idx = self.vertex(name, parallelism, VertexKind::Stateful(factory));
        self.spec.vertices[idx].state_schema = Some(schema);
        idx
    }

    /// Add a source vertex.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        factory: Arc<dyn SourceFactory>,
    ) -> usize {
        self.vertex(name, parallelism, VertexKind::Source(factory))
    }

    /// Add a stateless vertex.
    pub fn stateless(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        factory: Arc<dyn StatelessFactory>,
    ) -> usize {
        self.vertex(name, parallelism, VertexKind::Stateless(factory))
    }

    /// Add a stateful vertex.
    pub fn stateful(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        factory: Arc<dyn StatefulFactory>,
    ) -> usize {
        self.vertex(name, parallelism, VertexKind::Stateful(factory))
    }

    /// Add a sink vertex.
    pub fn sink(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        factory: Arc<dyn SinkFactory>,
    ) -> usize {
        self.vertex(name, parallelism, VertexKind::Sink(factory))
    }

    /// Add an edge.
    pub fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) -> &mut Self {
        self.spec.edges.push(EdgeSpec { from, to, kind });
        self
    }

    /// Validate and finish.
    pub fn build(self) -> SqResult<JobSpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// Convenience adapters turning closures into factories.
pub mod adapters {
    use super::*;

    /// A stateless factory from a cloneable closure applied per record.
    pub struct FnStateless<F>(pub F);

    impl<F> Stateless for FnMapper<F>
    where
        F: FnMut(Record, &mut Vec<Record>) + Send,
    {
        fn process(&mut self, record: Record, out: &mut Vec<Record>) {
            (self.0)(record, out)
        }
    }

    /// Wrapper holding the per-instance closure.
    pub struct FnMapper<F>(pub F);

    impl<F> StatelessFactory for FnStateless<F>
    where
        F: Fn() -> Box<dyn Stateless> + Send + Sync,
    {
        fn create(&self, _instance: u32, _total: u32) -> Box<dyn Stateless> {
            (self.0)()
        }
    }

    /// A stateful factory from a constructor closure.
    pub struct FnStateful<F>(pub F);

    impl<F> StatefulFactory for FnStateful<F>
    where
        F: Fn(u32, u32) -> Box<dyn Stateful> + Send + Sync,
    {
        fn create(&self, instance: u32, total: u32) -> Box<dyn Stateful> {
            (self.0)(instance, total)
        }
    }

    /// A stateful operator from a closure over (record, state, out).
    pub struct FnStatefulOp<F>(pub F);

    impl<F> Stateful for FnStatefulOp<F>
    where
        F: FnMut(Record, &mut dyn KeyedState, &mut Vec<Record>) + Send,
    {
        fn process(&mut self, record: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>) {
            (self.0)(record, state, out)
        }
    }

    /// A sink factory from a constructor closure.
    pub struct FnSink<F>(pub F);

    impl<F> SinkFactory for FnSink<F>
    where
        F: Fn(u32, u32) -> Box<dyn Sink> + Send + Sync,
    {
        fn create(&self, instance: u32, total: u32) -> Box<dyn Sink> {
            (self.0)(instance, total)
        }
    }

    /// A sink that drops everything (latency is still recorded by the engine).
    pub struct NullSink;

    impl Sink for NullSink {
        fn consume(&mut self, _record: Record) {}
    }

    /// Factory for [`NullSink`].
    pub struct NullSinkFactory;

    impl SinkFactory for NullSinkFactory {
        fn create(&self, _instance: u32, _total: u32) -> Box<dyn Sink> {
            Box::new(NullSink)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::adapters::*;
    use super::*;
    use crate::source::{GeneratorSource, SourceStatus};

    fn noop_source() -> Arc<dyn SourceFactory> {
        struct F;
        impl SourceFactory for F {
            fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
                Box::new(GeneratorSource::new(0, |_| None))
            }
        }
        let _ = SourceStatus::Exhausted;
        Arc::new(F)
    }

    fn noop_stateful() -> Arc<dyn StatefulFactory> {
        Arc::new(FnStateful(|_, _| {
            Box::new(FnStatefulOp(
                |_r: Record, _s: &mut dyn KeyedState, _o: &mut Vec<Record>| {},
            )) as Box<dyn Stateful>
        }))
    }

    fn simple_spec() -> JobSpec {
        let mut b = JobSpec::builder("test");
        let src = b.source("src", 2, noop_source());
        let op = b.stateful("op", 2, noop_stateful());
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(src, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        b.build().unwrap()
    }

    #[test]
    fn valid_spec_builds() {
        let spec = simple_spec();
        assert_eq!(spec.vertices.len(), 3);
        assert_eq!(spec.total_instances(), 5);
        assert_eq!(spec.source_indexes(), vec![0]);
        assert_eq!(spec.stateful_names(), vec!["op"]);
        assert_eq!(spec.incoming(1).len(), 1);
        assert_eq!(spec.outgoing(1).len(), 1);
        assert!(spec.incoming(0).is_empty());
    }

    #[test]
    fn invalid_specs_rejected() {
        // Empty job.
        assert!(JobSpec::builder("x").build().is_err());

        // Backwards edge.
        let mut b = JobSpec::builder("x");
        let src = b.source("s", 1, noop_source());
        let sink = b.sink("k", 1, Arc::new(NullSinkFactory));
        b.edge(sink, src, EdgeKind::Forward);
        assert!(b.build().is_err());

        // Zero parallelism.
        let mut b = JobSpec::builder("x");
        let src = b.source("s", 0, noop_source());
        let sink = b.sink("k", 1, Arc::new(NullSinkFactory));
        b.edge(src, sink, EdgeKind::Forward);
        assert!(b.build().is_err());

        // Duplicate names.
        let mut b = JobSpec::builder("x");
        let src = b.source("same", 1, noop_source());
        let sink = b.sink("same", 1, Arc::new(NullSinkFactory));
        b.edge(src, sink, EdgeKind::Forward);
        assert!(b.build().is_err());

        // Disconnected sink.
        let mut b = JobSpec::builder("x");
        let src = b.source("s", 1, noop_source());
        let sink = b.sink("k", 1, Arc::new(NullSinkFactory));
        let sink2 = b.sink("k2", 1, Arc::new(NullSinkFactory));
        b.edge(src, sink, EdgeKind::Forward);
        let _ = sink2;
        assert!(b.build().is_err());

        // Source that feeds nothing.
        let mut b = JobSpec::builder("x");
        let _src = b.source("s", 1, noop_source());
        assert!(b.build().is_err());
    }

    #[test]
    fn multi_input_ports_follow_edge_order() {
        let mut b = JobSpec::builder("q6");
        let bids = b.source("bids", 1, noop_source());
        let auctions = b.source("auctions", 1, noop_source());
        let op = b.stateful("maxbid", 2, noop_stateful());
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(bids, op, EdgeKind::Keyed);
        b.edge(auctions, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        let spec = b.build().unwrap();
        let incoming = spec.incoming(2);
        assert_eq!(incoming.len(), 2);
        assert_eq!(incoming[0].1.from, 0, "port 0 = bids");
        assert_eq!(incoming[1].1.from, 1, "port 1 = auctions");
    }
}
