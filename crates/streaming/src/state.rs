//! Keyed operator state and its backends.
//!
//! A stateful operator sees its state as a [`KeyedState`] map. The engine
//! wraps it in a [`StateBackend`] that implements the configurations the
//! paper evaluates (Figure 8):
//!
//! * **live write-through** — every update is mirrored into the operator's
//!   grid `IMap` (Table I), making the *live state* externally queryable;
//!   the mirroring cost is exactly the live-state overhead of Figure 8;
//! * **queryable snapshots** — at each checkpoint the backend writes per-key
//!   entries into the operator's `snapshot_<name>` store (Table II), either
//!   the full state or only the keys dirtied since the previous checkpoint
//!   (incremental, §VI-A);
//! * **blob snapshots** — the plain-Jet baseline: the whole state serializes
//!   into one opaque byte blob ("Formerly, snapshot state in the KV store was
//!   a mere blob structure"). Cheap to write, impossible to query.
//!
//! The backend also restores state from a committed snapshot during rollback
//! recovery, rebuilding the live map for its own partitions.

use bytes::{BufMut, BytesMut};
use squery_common::codec;
use squery_common::metrics::SharedHistogram;
use squery_common::telemetry::{Counter, MetricsRegistry};
use squery_common::trace::{SpanCollector, SpanGuard};
use squery_common::{Partitioner, SnapshotId, SqError, SqResult, Value};
use squery_storage::{IMap, SnapshotMode, SnapshotStore};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Per-operator state-update telemetry (shared by a vertex's instances).
struct BackendTelemetry {
    /// Puts + removes through [`KeyedState`].
    state_updates: Counter,
    /// Wall time of the live-map write-through mirror, per update.
    live_mirror_us: SharedHistogram,
    /// Wall time of one phase-1 snapshot write.
    snapshot_us: SharedHistogram,
    /// The registry's span collector (`mirror_write` spans).
    spans: SpanCollector,
}

/// The keyed-state view an operator programs against.
pub trait KeyedState {
    /// Read the state object for `key`.
    fn get(&self, key: &Value) -> Option<Value>;
    /// Insert or overwrite the state object for `key`.
    fn put(&mut self, key: Value, value: Value);
    /// Remove `key`'s state object.
    fn remove(&mut self, key: &Value) -> Option<Value>;
    /// Number of keys held.
    fn len(&self) -> usize;
    /// Whether no keys are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Where checkpoints write this operator's state.
pub enum SnapshotSink {
    /// No checkpointing (ephemeral state).
    None,
    /// Queryable per-key entries (S-QUERY).
    Queryable {
        /// The operator's snapshot store.
        store: Arc<SnapshotStore>,
        /// Full or incremental checkpoints.
        mode: SnapshotMode,
    },
    /// One opaque blob per instance (the plain-Jet baseline).
    Blob {
        /// The store holding the blob entries.
        store: Arc<SnapshotStore>,
    },
}

/// The engine-managed state of one stateful-operator instance.
pub struct StateBackend {
    name: String,
    instance: u32,
    total: u32,
    partitioner: Partitioner,
    local: HashMap<Value, Value>,
    /// Keys changed (put or removed) since the last checkpoint.
    dirty: HashSet<Value>,
    live: Option<Arc<IMap>>,
    sink: SnapshotSink,
    /// First checkpoint after (re)start writes a complete view even in
    /// incremental mode, so every chain has a base.
    has_snapshotted: bool,
    telemetry: Option<BackendTelemetry>,
}

impl StateBackend {
    /// A backend for instance `instance` of `total` of operator `name`.
    pub fn new(
        name: impl Into<String>,
        instance: u32,
        total: u32,
        partitioner: Partitioner,
        live: Option<Arc<IMap>>,
        sink: SnapshotSink,
    ) -> StateBackend {
        StateBackend {
            name: name.into(),
            instance,
            total,
            partitioner,
            local: HashMap::new(),
            dirty: HashSet::new(),
            live,
            sink,
            has_snapshotted: false,
            telemetry: None,
        }
    }

    /// Wire this backend into `registry`: a `state_updates_total` counter
    /// plus `state_live_mirror_us` / `state_snapshot_us` histograms, all
    /// labelled `operator=<name>`.
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> StateBackend {
        let labels = [("operator", self.name.as_str())];
        self.telemetry = Some(BackendTelemetry {
            state_updates: registry.counter("state_updates_total", &labels),
            live_mirror_us: registry.histogram("state_live_mirror_us", &labels),
            snapshot_us: registry.histogram("state_snapshot_us", &labels),
            spans: registry.spans().clone(),
        });
        self
    }

    /// A `mirror_write` span for one live write-through. Inert when the
    /// backend has no telemetry or tracing is disabled.
    fn mirror_span(&self) -> SpanGuard {
        match &self.telemetry {
            Some(t) => {
                let mut g = t.spans.start("mirror_write");
                g.label("operator", &self.name);
                g
            }
            None => SpanGuard::inert(),
        }
    }

    /// The operator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid partitions this instance owns.
    pub fn owned_partitions(&self) -> Vec<squery_common::PartitionId> {
        self.partitioner
            .partitions_of_instance(self.instance, self.total)
    }

    /// Write this instance's state for checkpoint `ssid` (phase 1).
    pub fn snapshot(&mut self, ssid: SnapshotId) -> SqResult<()> {
        let start = self.telemetry.as_ref().map(|_| Instant::now());
        match &self.sink {
            SnapshotSink::None => {}
            SnapshotSink::Queryable { store, mode } => {
                let full = !self.has_snapshotted || matches!(mode, SnapshotMode::Full);
                if full {
                    // Complete view: write every owned partition, including
                    // empty ones, so the version exists store-wide.
                    let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
                    for pid in self.owned_partitions() {
                        by_pid.insert(pid.0, Vec::new());
                    }
                    for (k, v) in &self.local {
                        by_pid
                            .entry(self.partitioner.partition_of(k).0)
                            .or_default()
                            .push((k.clone(), Some(v.clone())));
                    }
                    for (pid, entries) in by_pid {
                        store.write_partition(ssid, squery_common::PartitionId(pid), entries, true);
                    }
                } else {
                    // Delta: only dirty keys; absent in `local` ⇒ tombstone.
                    let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
                    for pid in self.owned_partitions() {
                        by_pid.insert(pid.0, Vec::new());
                    }
                    for k in &self.dirty {
                        by_pid
                            .entry(self.partitioner.partition_of(k).0)
                            .or_default()
                            .push((k.clone(), self.local.get(k).cloned()));
                    }
                    for (pid, entries) in by_pid {
                        store.write_partition(
                            ssid,
                            squery_common::PartitionId(pid),
                            entries,
                            false,
                        );
                    }
                }
            }
            SnapshotSink::Blob { store } => {
                let blob = encode_blob(&self.local);
                let key = blob_key(&self.name, self.instance);
                let pid = self.partitioner.partition_of(&key);
                store.write_partition(ssid, pid, vec![(key, Some(blob))], true);
            }
        }
        self.dirty.clear();
        self.has_snapshotted = true;
        if let (Some(t), Some(s)) = (&self.telemetry, start) {
            t.snapshot_us.record(s.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// Restore this instance's state from committed snapshot `ssid`
    /// (rollback recovery), rebuilding the live map for owned partitions.
    pub fn restore(&mut self, ssid: SnapshotId) -> SqResult<()> {
        self.local.clear();
        self.dirty.clear();
        self.has_snapshotted = false;
        match &self.sink {
            SnapshotSink::None => {
                return Err(SqError::Runtime(format!(
                    "operator '{}' has no snapshot sink to restore from",
                    self.name
                )))
            }
            SnapshotSink::Queryable { store, .. } => {
                for pid in self.owned_partitions() {
                    for (k, v) in store.scan_partition_at(ssid, pid)? {
                        self.local.insert(k, v);
                    }
                }
            }
            SnapshotSink::Blob { store } => {
                let key = blob_key(&self.name, self.instance);
                if let Some(blob) = store.read_at(ssid, &key)? {
                    self.local = decode_blob(&blob)?;
                }
            }
        }
        if let Some(live) = &self.live {
            live.clear_partitions(&self.owned_partitions());
            live.load_silent(
                self.local
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            );
        }
        Ok(())
    }

    /// Number of dirty keys (drives incremental-snapshot cost; test hook).
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Iterate the local entries.
    pub fn entries(&self) -> impl Iterator<Item = (&Value, &Value)> {
        self.local.iter()
    }
}

impl KeyedState for StateBackend {
    fn get(&self, key: &Value) -> Option<Value> {
        self.local.get(key).cloned()
    }

    fn put(&mut self, key: Value, value: Value) {
        if let Some(live) = &self.live {
            let start = self.telemetry.as_ref().map(|_| Instant::now());
            let span = self.mirror_span();
            live.put(key.clone(), value.clone());
            drop(span);
            if let (Some(t), Some(s)) = (&self.telemetry, start) {
                t.live_mirror_us.record(s.elapsed().as_micros() as u64);
            }
        }
        if let Some(t) = &self.telemetry {
            t.state_updates.inc();
        }
        self.dirty.insert(key.clone());
        self.local.insert(key, value);
    }

    fn remove(&mut self, key: &Value) -> Option<Value> {
        if let Some(live) = &self.live {
            let start = self.telemetry.as_ref().map(|_| Instant::now());
            let span = self.mirror_span();
            live.remove(key);
            drop(span);
            if let (Some(t), Some(s)) = (&self.telemetry, start) {
                t.live_mirror_us.record(s.elapsed().as_micros() as u64);
            }
        }
        if let Some(t) = &self.telemetry {
            t.state_updates.inc();
        }
        let old = self.local.remove(key);
        if old.is_some() {
            self.dirty.insert(key.clone());
        }
        old
    }

    fn len(&self) -> usize {
        self.local.len()
    }
}

fn blob_key(name: &str, instance: u32) -> Value {
    Value::str(format!("__blob_{name}_{instance}"))
}

fn encode_blob(entries: &HashMap<Value, Value>) -> Value {
    let mut buf = BytesMut::with_capacity(entries.len() * 32 + 8);
    buf.put_u64(entries.len() as u64);
    for (k, v) in entries {
        codec::encode_into(k, &mut buf);
        codec::encode_into(v, &mut buf);
    }
    Value::Bytes(Arc::from(&buf[..]))
}

fn decode_blob(blob: &Value) -> SqResult<HashMap<Value, Value>> {
    let Value::Bytes(bytes) = blob else {
        return Err(SqError::Codec("blob snapshot is not bytes".into()));
    };
    let mut buf: &[u8] = bytes;
    if buf.len() < 8 {
        return Err(SqError::Codec("blob snapshot truncated".into()));
    }
    let n = u64::from_be_bytes(buf[..8].try_into().expect("checked length"));
    buf = &buf[8..];
    let mut out = HashMap::with_capacity(n as usize);
    for _ in 0..n {
        let k = codec::decode_from(&mut buf)?;
        let v = codec::decode_from(&mut buf)?;
        out.insert(k, v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_storage::Grid;

    fn partitioner() -> Partitioner {
        Partitioner::new(16)
    }

    fn queryable_backend(mode: SnapshotMode, grid: &Arc<Grid>) -> StateBackend {
        StateBackend::new(
            "op",
            0,
            1,
            grid.partitioner(),
            None,
            SnapshotSink::Queryable {
                store: grid.snapshot_store("op"),
                mode,
            },
        )
    }

    #[test]
    fn keyed_state_basics() {
        let mut b = StateBackend::new("op", 0, 1, partitioner(), None, SnapshotSink::None);
        assert!(b.is_empty());
        b.put(Value::Int(1), Value::Int(10));
        assert_eq!(b.get(&Value::Int(1)), Some(Value::Int(10)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.remove(&Value::Int(1)), Some(Value::Int(10)));
        assert_eq!(b.remove(&Value::Int(1)), None);
        assert!(b.is_empty());
    }

    #[test]
    fn live_write_through_mirrors_updates() {
        let grid = Grid::single_node();
        let live = grid.map("op");
        let mut b = StateBackend::new(
            "op",
            0,
            1,
            grid.partitioner(),
            Some(Arc::clone(&live)),
            SnapshotSink::None,
        );
        b.put(Value::Int(1), Value::Int(10));
        assert_eq!(live.get(&Value::Int(1)), Some(Value::Int(10)));
        b.put(Value::Int(1), Value::Int(11));
        assert_eq!(live.get(&Value::Int(1)), Some(Value::Int(11)));
        b.remove(&Value::Int(1));
        assert_eq!(live.get(&Value::Int(1)), None);
    }

    #[test]
    fn full_snapshot_writes_complete_view() {
        let grid = Grid::single_node();
        let mut b = queryable_backend(SnapshotMode::Full, &grid);
        b.put(Value::Int(1), Value::Int(10));
        b.put(Value::Int(2), Value::Int(20));
        b.snapshot(SnapshotId(1)).unwrap();
        b.remove(&Value::Int(2));
        b.snapshot(SnapshotId(2)).unwrap();
        let store = grid.get_snapshot_store("op").unwrap();
        let (mut s1, _) = store.scan_at(SnapshotId(1)).unwrap();
        s1.sort();
        assert_eq!(s1.len(), 2);
        let (s2, _) = store.scan_at(SnapshotId(2)).unwrap();
        assert_eq!(s2, vec![(Value::Int(1), Value::Int(10))]);
    }

    #[test]
    fn incremental_snapshot_writes_only_dirty_keys() {
        let grid = Grid::single_node();
        let mut b = queryable_backend(SnapshotMode::Incremental, &grid);
        for i in 0..10i64 {
            b.put(Value::Int(i), Value::Int(i));
        }
        b.snapshot(SnapshotId(1)).unwrap(); // first: complete
        assert_eq!(b.dirty_len(), 0);
        b.put(Value::Int(3), Value::Int(333));
        b.remove(&Value::Int(4));
        assert_eq!(b.dirty_len(), 2);
        b.snapshot(SnapshotId(2)).unwrap();
        let store = grid.get_snapshot_store("op").unwrap();
        // Only the two dirty keys were stored at ssid 2 (12 entries total).
        assert_eq!(store.stats().stored_entries, 12);
        // Differential resolution still yields the complete view.
        let (s2, _) = store.scan_at(SnapshotId(2)).unwrap();
        assert_eq!(s2.len(), 9, "10 keys minus 1 removed");
        assert!(s2.contains(&(Value::Int(3), Value::Int(333))));
        assert!(s2.contains(&(Value::Int(0), Value::Int(0))));
        assert!(!s2.iter().any(|(k, _)| *k == Value::Int(4)));
    }

    #[test]
    fn queryable_restore_roundtrips() {
        let grid = Grid::single_node();
        let mut b = queryable_backend(SnapshotMode::Incremental, &grid);
        for i in 0..50i64 {
            b.put(Value::Int(i), Value::Int(i * 2));
        }
        b.snapshot(SnapshotId(1)).unwrap();
        b.put(Value::Int(0), Value::Int(999));
        b.snapshot(SnapshotId(2)).unwrap();

        let mut restored = queryable_backend(SnapshotMode::Incremental, &grid);
        restored.restore(SnapshotId(2)).unwrap();
        assert_eq!(restored.len(), 50);
        assert_eq!(restored.get(&Value::Int(0)), Some(Value::Int(999)));
        // Restoring the older snapshot rolls the update back.
        restored.restore(SnapshotId(1)).unwrap();
        assert_eq!(restored.get(&Value::Int(0)), Some(Value::Int(0)));
    }

    #[test]
    fn restore_rebuilds_live_map() {
        let grid = Grid::single_node();
        let live = grid.map("op");
        let store = grid.snapshot_store("op");
        let mut b = StateBackend::new(
            "op",
            0,
            1,
            grid.partitioner(),
            Some(Arc::clone(&live)),
            SnapshotSink::Queryable {
                store,
                mode: SnapshotMode::Full,
            },
        );
        b.put(Value::Int(1), Value::Int(10));
        b.snapshot(SnapshotId(1)).unwrap();
        b.put(Value::Int(1), Value::Int(99)); // dirty live state
        assert_eq!(live.get(&Value::Int(1)), Some(Value::Int(99)));
        b.restore(SnapshotId(1)).unwrap();
        // The paper's Figure 5c: after recovery the live state shows the
        // snapshot value again — the pre-failure read was a dirty read.
        assert_eq!(live.get(&Value::Int(1)), Some(Value::Int(10)));
    }

    #[test]
    fn blob_snapshot_roundtrips() {
        let grid = Grid::single_node();
        let store = grid.snapshot_store("op");
        let mut b = StateBackend::new(
            "op",
            0,
            1,
            grid.partitioner(),
            None,
            SnapshotSink::Blob {
                store: Arc::clone(&store),
            },
        );
        for i in 0..20i64 {
            b.put(Value::Int(i), Value::str(format!("v{i}")));
        }
        b.snapshot(SnapshotId(1)).unwrap();
        // One blob entry, not 20 queryable entries.
        assert_eq!(store.stats().stored_entries, 1);
        let mut restored = StateBackend::new(
            "op",
            0,
            1,
            grid.partitioner(),
            None,
            SnapshotSink::Blob { store },
        );
        restored.restore(SnapshotId(1)).unwrap();
        assert_eq!(restored.len(), 20);
        assert_eq!(restored.get(&Value::Int(7)), Some(Value::str("v7")));
    }

    #[test]
    fn telemetry_counts_updates_and_mirror_latency() {
        let grid = Grid::single_node();
        let live = grid.map("op");
        let mut b = StateBackend::new(
            "op",
            0,
            1,
            grid.partitioner(),
            Some(live),
            SnapshotSink::None,
        )
        .with_telemetry(grid.telemetry());
        b.put(Value::Int(1), Value::Int(10));
        b.remove(&Value::Int(1));
        let l = [("operator", "op")];
        assert_eq!(
            grid.telemetry().counter_value("state_updates_total", &l),
            Some(2)
        );
        let mirror = grid
            .telemetry()
            .histograms()
            .into_iter()
            .find(|(k, _)| k.name == "state_live_mirror_us")
            .expect("mirror histogram exists")
            .1;
        assert_eq!(mirror.count(), 2, "one sample per put/remove");
    }

    #[test]
    fn restore_without_sink_errors() {
        let mut b = StateBackend::new("op", 0, 1, partitioner(), None, SnapshotSink::None);
        assert!(b.restore(SnapshotId(1)).is_err());
    }

    #[test]
    fn multi_instance_backends_cover_disjoint_partitions() {
        let grid = Grid::single_node();
        let store = grid.snapshot_store("op");
        let mut backends: Vec<StateBackend> = (0..4)
            .map(|i| {
                StateBackend::new(
                    "op",
                    i,
                    4,
                    grid.partitioner(),
                    None,
                    SnapshotSink::Queryable {
                        store: Arc::clone(&store),
                        mode: SnapshotMode::Full,
                    },
                )
            })
            .collect();
        // Route each key to its owning instance, as the keyed exchange would.
        for i in 0..200i64 {
            let key = Value::Int(i);
            let owner = grid.partitioner().instance_of(&key, 4);
            backends[owner as usize].put(key, Value::Int(i));
        }
        for b in &mut backends {
            b.snapshot(SnapshotId(1)).unwrap();
        }
        let (all, _) = store.scan_at(SnapshotId(1)).unwrap();
        assert_eq!(
            all.len(),
            200,
            "instances cover all partitions exactly once"
        );
        // Restore each instance and check disjoint coverage.
        let total: usize = backends
            .iter_mut()
            .map(|b| {
                b.restore(SnapshotId(1)).unwrap();
                b.len()
            })
            .sum();
        assert_eq!(total, 200);
    }
}
