//! Instance workers: the per-thread execution loops.
//!
//! Every vertex instance runs on its own thread. Source workers pull batches
//! from their [`crate::source::Source`] and poll a control channel for
//! checkpoint markers and stop commands; operator workers consume a single
//! tagged input queue and implement the marker-alignment protocol of the
//! paper's Figure 3: once a channel delivers the marker for the in-flight
//! checkpoint, its subsequent records are buffered until every channel has
//! delivered (or reached end-of-stream); then the state snapshot is written
//! (phase 1), the ack goes to the coordinator, the marker is forwarded, and
//! the buffered records are replayed. This is what makes the written
//! snapshots *consistent* and the recovery exactly-once.

use crate::dag::{EdgeKind, Sink, Stateful, Stateless};
use crate::message::{Item, Record, Tagged};
use crate::source::{Source, SourceStatus};
use crate::state::StateBackend;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use squery_common::fault::{FaultAction, FaultInjector, INJECTED_PANIC_PREFIX};
use squery_common::metrics::SharedHistogram;
use squery_common::telemetry::{Counter, EventKind, Gauge, MetricsRegistry};
use squery_common::time::Clock;
use squery_common::trace::SpanGuard;
use squery_common::{Partitioner, SnapshotId, Value};
use squery_storage::SnapshotStore;
use std::collections::HashSet;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Marker-alignment stalls at or above this many µs also emit an
/// `alignment_stall` engine event (every stall lands in the histogram).
pub const ALIGN_STALL_EVENT_US: u64 = 10_000;

/// Per-vertex telemetry handles, shared by all instances of the vertex
/// (counters aggregate across instances; events carry the instance in
/// their detail).
pub struct WorkerTelemetry {
    /// The vertex name the handles are labelled with.
    pub operator: String,
    /// Records entering this vertex (for sources: none).
    pub records_in: Counter,
    /// Records leaving this vertex (for sinks: none).
    pub records_out: Counter,
    /// Time from the first marker of a checkpoint round to full alignment.
    pub align_stall_us: SharedHistogram,
    /// Wall-clock minus event-time frontier, sampled at each frontier
    /// advance (how far behind real time this vertex's watermark runs).
    pub watermark_lag: SharedHistogram,
    /// Wall-clock minus `src_ts` per sink record (end-to-end event-time
    /// lag; only sinks feed it).
    pub e2e_lag: SharedHistogram,
    /// The registry, for lifecycle/stall events.
    pub registry: MetricsRegistry,
}

impl WorkerTelemetry {
    /// Resolve the vertex's handles out of `registry`.
    pub fn for_operator(registry: &MetricsRegistry, operator: &str) -> WorkerTelemetry {
        let labels = [("operator", operator)];
        WorkerTelemetry {
            operator: operator.to_string(),
            records_in: registry.counter("operator_records_in_total", &labels),
            records_out: registry.counter("operator_records_out_total", &labels),
            align_stall_us: registry.histogram("operator_align_stall_us", &labels),
            watermark_lag: registry.histogram("watermark_lag_us", &labels),
            e2e_lag: registry.histogram("e2e_lag_us", &labels),
            registry: registry.clone(),
        }
    }

    /// The live event-time frontier gauge for one instance of this vertex
    /// (`sys_watermarks` reads these back out of the registry).
    pub fn watermark_gauge(&self, instance: u32) -> Gauge {
        let instance = instance.to_string();
        self.registry.gauge(
            "watermark_us",
            &[("instance", &instance), ("operator", &self.operator)],
        )
    }

    fn started(&self, instance: u32) {
        self.registry.event(
            EventKind::WorkerStarted,
            Some(&self.operator),
            None,
            None,
            format!("instance {instance}"),
        );
    }

    fn stopped(&self, instance: u32) {
        self.registry.event(
            EventKind::WorkerStopped,
            Some(&self.operator),
            None,
            None,
            format!("instance {instance}"),
        );
    }

    fn aligned(&self, ssid: SnapshotId, stall_us: u64) {
        self.align_stall_us.record(stall_us);
        if stall_us >= ALIGN_STALL_EVENT_US {
            self.registry.event(
                EventKind::AlignmentStall,
                Some(&self.operator),
                Some(ssid.0),
                Some(stall_us),
                "marker alignment",
            );
        }
    }
}

/// A phase-1 acknowledgement from one instance.
#[derive(Debug, Clone, Copy)]
pub struct Ack {
    /// The checkpoint being acknowledged.
    pub ssid: SnapshotId,
    /// The acking instance's event-time frontier at its snapshot point
    /// (0 = unknown), on the engine clock that stamped `Record::src_ts`.
    /// The coordinator's minimum over all acks is the consistent cut's
    /// global low watermark; it rebases the min into the unix-epoch domain
    /// before sealing it, so the persisted bound survives a restart.
    pub watermark_us: u64,
}

/// Commands the coordinator/runtime sends to source instances.
#[derive(Debug, Clone, Copy)]
pub enum SourceCommand {
    /// Begin checkpoint: snapshot the offset, ack, forward the marker.
    Marker(SnapshotId),
    /// Finish: emit end-of-stream and exit.
    Stop,
}

/// State shared by all workers of one job.
pub struct Shared {
    /// Engine clock (latency stamps, 2PC probes).
    pub clock: Clock,
    /// Set to force-crash every worker (failure injection).
    pub poison: AtomicBool,
    /// Phase-1 ack channel into the coordinator.
    pub ack_tx: Sender<Ack>,
    /// Source-to-sink latency across all sink instances.
    pub latency: SharedHistogram,
    /// Records consumed by sinks.
    pub sink_count: AtomicU64,
    /// Records produced by sources.
    pub source_count: AtomicU64,
    /// Instances currently running (coordinator's expected ack count).
    pub live_instances: AtomicU32,
    /// Source instances that have exhausted their input.
    pub exhausted_sources: AtomicU32,
    /// The shared partitioner (keyed routing).
    pub partitioner: Partitioner,
    /// The engine-wide metrics/event registry (the grid's).
    pub telemetry: MetricsRegistry,
    /// The attached fault injector, if any (cheap `None` check otherwise).
    pub faults: Option<Arc<FaultInjector>>,
    /// Workers whose panic was caught. Non-zero means the job cannot make
    /// progress and needs supervised recovery.
    pub dead_workers: AtomicU32,
    /// Set when the checkpoint coordinator was (fault-)killed between
    /// phases; it stops serving until recovery rebuilds it.
    pub coordinator_dead: AtomicBool,
    /// The first caught panic message (`worker_failure`).
    pub failure: Mutex<Option<String>>,
}

impl Shared {
    fn ack(&self, ssid: SnapshotId, watermark_us: u64) {
        let _ = self.ack_tx.send(Ack { ssid, watermark_us });
    }

    fn poisoned(&self) -> bool {
        // Acquire pairs with the SeqCst store in `crash()`: a worker that
        // observes the poison flag also observes the failure record that
        // was published before it.
        self.poison.load(Ordering::Acquire)
    }

    /// Record a caught worker panic. Key locks and channel senders were
    /// already released by the unwind itself (parking_lot guards unlock on
    /// drop); this makes the death *observable* so `wait_for_sink_count`
    /// and the supervisor stop waiting on a worker that will never run.
    fn note_worker_panic(&self, operator: &str, instance: u32, msg: &str) {
        self.dead_workers.fetch_add(1, Ordering::AcqRel);
        let mut failure = self.failure.lock();
        if failure.is_none() {
            *failure = Some(format!("{operator}#{instance}: {msg}"));
        }
        drop(failure);
        self.telemetry.counter("worker_panics_total", &[]).inc();
        self.telemetry.event(
            EventKind::WorkerPanicked,
            Some(operator),
            None,
            None,
            format!("instance {instance}: {msg}"),
        );
    }

    /// The first caught panic message, if any worker died.
    pub fn worker_failure(&self) -> Option<String> {
        self.failure.lock().clone()
    }

    /// Fault hook: about to process the worker's `nth` record. A planned
    /// `PanicWorker` fault panics here so it exercises the *real* unwind
    /// path; a `StallWorker` sleeps in-line.
    fn worker_record_fault(&self, operator: &str, instance: u32, nth: u64) {
        let Some(injector) = &self.faults else { return };
        match injector.on_worker_record(operator, instance, nth) {
            Some(FaultAction::PanicWorker) => {
                self.fault_event(operator, None, format!("panic at record {nth}"));
                panic!("{INJECTED_PANIC_PREFIX}worker panic at record {nth}");
            }
            Some(FaultAction::StallWorker { micros }) => {
                self.fault_event(operator, None, format!("stall {micros}us at record {nth}"));
                std::thread::sleep(Duration::from_micros(micros));
            }
            _ => {}
        }
    }

    /// Fault hook: the worker just acked phase 1 of `ssid` — the window
    /// between checkpoint phase 1 and phase 2.
    fn post_ack_fault(&self, operator: &str, instance: u32, ssid: SnapshotId) {
        let Some(injector) = &self.faults else { return };
        if let Some(FaultAction::PanicWorker) =
            injector.on_worker_post_ack(operator, instance, ssid.0)
        {
            self.fault_event(operator, Some(ssid.0), "killed after phase-1 ack".into());
            panic!("{INJECTED_PANIC_PREFIX}worker killed between phases of checkpoint {ssid}");
        }
    }

    fn fault_event(&self, operator: &str, ssid: Option<u64>, detail: String) {
        self.telemetry
            .event(EventKind::FaultInjected, Some(operator), ssid, None, detail);
    }
}

/// Start a span parented under the in-flight checkpoint round when the
/// coordinator has published one (the round root lives on the coordinator
/// thread), else a root span. Inert when tracing is disabled.
fn span_under_round(shared: &Shared, kind: &'static str) -> SpanGuard {
    let collector = shared.telemetry.spans();
    match collector.current_round() {
        Some(round) => collector.child(kind, round),
        None => collector.start(kind),
    }
}

/// Render a caught panic payload (the `&str`/`String` panics the engine and
/// the injector raise; anything else gets a generic label).
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// One output edge of an instance.
pub struct OutputPort {
    /// Routing mode.
    pub kind: EdgeKind,
    /// Senders to every downstream instance of the edge.
    pub senders: Vec<Sender<Tagged>>,
    /// The channel tag this instance's items carry at the receiver.
    pub tag: u32,
    /// The input-port number of this edge at the receiving vertex.
    pub port: u8,
}

/// Saves one source instance's offset into the offsets snapshot store.
pub struct OffsetSaver {
    /// The `__offsets` store.
    pub store: Arc<SnapshotStore>,
    /// This instance's offset key (`"<vertex>#<instance>"`).
    pub key: Value,
}

impl OffsetSaver {
    /// Phase-1 write of the current offset.
    pub fn save(&self, ssid: SnapshotId, offset: Value) {
        let pid = self.store.partition_of(&self.key);
        self.store
            .write_partition(ssid, pid, vec![(self.key.clone(), Some(offset))], true);
    }

    /// Read back the offset stored at `ssid`, if any.
    pub fn load(&self, ssid: SnapshotId) -> Option<Value> {
        self.store.read_at(ssid, &self.key).ok().flatten()
    }
}

/// Route one record along every output port; returns false if a downstream
/// channel is gone (job shutting down or crashed).
fn route_record(
    record: &Record,
    outs: &[OutputPort],
    my_instance: u32,
    partitioner: &Partitioner,
) -> bool {
    for out in outs {
        let n = out.senders.len() as u32;
        let idx = match out.kind {
            EdgeKind::Forward => my_instance % n,
            EdgeKind::Keyed => partitioner.instance_of(&record.key, n),
        };
        let mut r = record.clone();
        r.port = out.port;
        if out.senders[idx as usize]
            .send(Tagged {
                from: out.tag,
                item: Item::Record(r),
            })
            .is_err()
        {
            return false;
        }
    }
    true
}

/// Broadcast a marker, watermark, or Eos to every downstream instance of
/// every port.
fn broadcast(item: &Item, outs: &[OutputPort]) {
    for out in outs {
        for sender in &out.senders {
            let _ = sender.send(Tagged {
                from: out.tag,
                item: item.clone(),
            });
        }
    }
}

/// Advance an operator's event-time frontier to the minimum of its input
/// channels' watermarks (an Eos channel holds `u64::MAX` so it stops
/// gating the min). The frontier is monotonic; on advance it is published
/// to the instance gauge (rebased into the unix-epoch domain so sys tables
/// can compare it against persisted seal stamps and across clocks), sampled
/// into the lag histogram, and forwarded on the engine clock.
fn advance_frontier(
    channel_wm: &[u64],
    frontier: &mut u64,
    wm_gauge: &Gauge,
    tel: &WorkerTelemetry,
    shared: &Shared,
    outs: &[OutputPort],
) {
    let min = channel_wm.iter().copied().min().unwrap_or(0);
    if min != u64::MAX && min > *frontier {
        *frontier = min;
        wm_gauge.set(shared.clock.to_epoch_micros(min) as i64);
        tel.watermark_lag
            .record(shared.clock.now_micros().saturating_sub(min));
        broadcast(&Item::Watermark(min), outs);
    }
}

/// Fold watermarks (and Eos releases, `u64::MAX`) parked during marker
/// alignment into the live per-channel watermarks and re-derive the
/// frontier. Runs after the snapshot ack and buffer replay, so the frontier
/// only ever claims completeness for records that have actually been
/// processed — and any resulting downstream watermark follows the records
/// it promises about.
#[allow(clippy::too_many_arguments)]
fn apply_deferred_watermarks(
    deferred_wm: &mut [u64],
    channel_wm: &mut [u64],
    frontier: &mut u64,
    wm_gauge: &Gauge,
    tel: &WorkerTelemetry,
    shared: &Shared,
    outs: &[OutputPort],
) {
    let mut any = false;
    for (slot, d) in channel_wm.iter_mut().zip(deferred_wm.iter_mut()) {
        if *d > 0 {
            *slot = (*slot).max(*d);
            *d = 0;
            any = true;
        }
    }
    if any {
        advance_frontier(channel_wm, frontier, wm_gauge, tel, shared, outs);
    }
}

/// The source-instance worker. The production loop runs under
/// `catch_unwind` so a panicking source (organic or injected) cannot leave
/// the job hanging: the death is recorded on [`Shared`] and the live count
/// still drops exactly once.
#[allow(clippy::too_many_arguments)]
pub fn run_source(
    source: Box<dyn Source>,
    control: Receiver<SourceCommand>,
    outs: Vec<OutputPort>,
    my_instance: u32,
    batch_size: usize,
    shared: Arc<Shared>,
    offsets: OffsetSaver,
    tel: WorkerTelemetry,
) {
    tel.started(my_instance);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        source_loop(
            source,
            control,
            outs,
            my_instance,
            batch_size,
            &shared,
            offsets,
            &tel,
        )
    }));
    if let Err(payload) = result {
        shared.note_worker_panic(&tel.operator, my_instance, &panic_text(payload));
    }
    shared.live_instances.fetch_sub(1, Ordering::AcqRel);
    tel.stopped(my_instance);
}

#[allow(clippy::too_many_arguments)]
fn source_loop(
    mut source: Box<dyn Source>,
    control: Receiver<SourceCommand>,
    outs: Vec<OutputPort>,
    my_instance: u32,
    batch_size: usize,
    shared: &Shared,
    offsets: OffsetSaver,
    tel: &WorkerTelemetry,
) {
    let partitioner = shared.partitioner;
    let mut batch: Vec<Record> = Vec::with_capacity(batch_size);
    let mut exhausted = false;
    let mut produced: u64 = 0;
    // Source frontier: the max `src_ts` emitted so far. The in-tree sources
    // stamp monotonically (scheduled emission time under offered load, `now`
    // otherwise), making this the exact low watermark of everything still to
    // come. A user `Source` may supply its own, possibly out-of-order event
    // times — for which "max emitted" over-promises — so monotonicity is
    // *checked* per record below: the first regression freezes watermark
    // emission and demotes the acked frontier to unknown, every regression
    // is counted, and downstream freshness degrades to "no bound" instead of
    // an invalid one. (A bounded-lateness policy is the eventual refinement.)
    let mut frontier: u64 = 0;
    let mut last_ts: u64 = 0;
    let mut unordered = false;
    let wm_gauge = tel.watermark_gauge(my_instance);
    let wm_violations = tel
        .registry
        .counter("watermark_violations_total", &[("operator", &tel.operator)]);
    loop {
        if shared.poisoned() {
            break;
        }
        // Control first: markers must not wait behind data production.
        match control.try_recv() {
            Ok(SourceCommand::Marker(ssid)) => {
                offsets.save(ssid, source.offset());
                shared.ack(ssid, if unordered { 0 } else { frontier });
                shared.post_ack_fault(&tel.operator, my_instance, ssid);
                broadcast(&Item::Marker(ssid), &outs);
                continue;
            }
            Ok(SourceCommand::Stop) => {
                broadcast(&Item::Eos, &outs);
                break;
            }
            Err(_) => {}
        }
        if exhausted {
            // Keep serving control (checkpoints must still complete) but stop
            // producing. Block on control to avoid spinning.
            match control.recv_timeout(Duration::from_millis(20)) {
                Ok(SourceCommand::Marker(ssid)) => {
                    offsets.save(ssid, source.offset());
                    shared.ack(ssid, if unordered { 0 } else { frontier });
                    shared.post_ack_fault(&tel.operator, my_instance, ssid);
                    broadcast(&Item::Marker(ssid), &outs);
                }
                Ok(SourceCommand::Stop) => {
                    broadcast(&Item::Eos, &outs);
                    break;
                }
                Err(_) => {}
            }
            continue;
        }
        batch.clear();
        let status = source.next_batch(batch_size, shared.clock.now_micros(), &mut batch);
        shared
            .source_count
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        tel.records_out.add(batch.len() as u64);
        let mut batch_span = if batch.is_empty() {
            SpanGuard::inert()
        } else {
            shared.telemetry.spans().start("batch")
        };
        if batch_span.is_active() {
            batch_span.label("operator", &tel.operator);
            batch_span.label("instance", my_instance);
            batch_span.label("records", batch.len());
        }
        let mut batch_max_ts = 0u64;
        for record in &batch {
            produced += 1;
            shared.worker_record_fault(&tel.operator, my_instance, produced);
            if record.src_ts < last_ts {
                // Out-of-order stamping: the already-emitted watermark's
                // promise just broke. Surface every violation, note the
                // breach once, and stop promising below.
                wm_violations.inc();
                if !unordered {
                    unordered = true;
                    shared.telemetry.event(
                        EventKind::WatermarkRegressed,
                        Some(&tel.operator),
                        None,
                        None,
                        format!(
                            "instance {my_instance}: src_ts {} below {} — \
                             watermark emission suspended",
                            record.src_ts, last_ts
                        ),
                    );
                }
            }
            last_ts = last_ts.max(record.src_ts);
            batch_max_ts = batch_max_ts.max(record.src_ts);
            if !route_record(record, &outs, my_instance, &partitioner) {
                return;
            }
        }
        drop(batch_span);
        if !unordered && batch_max_ts > frontier {
            // One watermark per advancing batch, after its records: the
            // promise "nothing below this comes later" holds only while the
            // source has stamped monotonically (checked above).
            frontier = batch_max_ts;
            wm_gauge.set(shared.clock.to_epoch_micros(frontier) as i64);
            tel.watermark_lag
                .record(shared.clock.now_micros().saturating_sub(frontier));
            broadcast(&Item::Watermark(frontier), &outs);
        }
        match status {
            SourceStatus::Exhausted => {
                // Stay alive and keep serving checkpoints: Eos flows only on
                // an explicit Stop, so a finished input does not tear down
                // the (possibly still busy) downstream operators, and a
                // triggered checkpoint can still act as a barrier behind
                // every produced record.
                exhausted = true;
                shared.exhausted_sources.fetch_add(1, Ordering::AcqRel);
            }
            SourceStatus::Idle => {
                std::thread::sleep(Duration::from_micros(200));
            }
            SourceStatus::Active => {}
        }
    }
}

/// What an operator worker runs.
pub enum OperatorKind {
    /// Stateless transform.
    Stateless(Box<dyn Stateless>),
    /// Stateful operator plus its engine-managed state.
    Stateful {
        /// User logic.
        op: Box<dyn Stateful>,
        /// Engine-managed keyed state (snapshotting, write-through).
        state: StateBackend,
    },
    /// Terminal consumer; the worker records sink latency around it.
    Sink(Box<dyn Sink>),
}

/// The operator/sink-instance worker with marker alignment. Like
/// [`run_source`], the loop runs under `catch_unwind`: a panicking operator
/// releases its key locks and channels via the unwind itself (parking_lot
/// guards and crossbeam senders unlock/close on drop), and the caught death
/// is surfaced on [`Shared`] instead of leaving the job wedged.
pub fn run_operator(
    rx: Receiver<Tagged>,
    n_channels: u32,
    kind: OperatorKind,
    outs: Vec<OutputPort>,
    my_instance: u32,
    shared: Arc<Shared>,
    tel: WorkerTelemetry,
) {
    tel.started(my_instance);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        operator_loop(rx, n_channels, kind, outs, my_instance, &shared, &tel)
    }));
    if let Err(payload) = result {
        shared.note_worker_panic(&tel.operator, my_instance, &panic_text(payload));
    }
    shared.live_instances.fetch_sub(1, Ordering::AcqRel);
    tel.stopped(my_instance);
}

fn operator_loop(
    rx: Receiver<Tagged>,
    n_channels: u32,
    mut kind: OperatorKind,
    outs: Vec<OutputPort>,
    my_instance: u32,
    shared: &Shared,
    tel: &WorkerTelemetry,
) {
    let partitioner = shared.partitioner;
    let mut aligned: HashSet<u32> = HashSet::new();
    let mut eos: HashSet<u32> = HashSet::new();
    let mut pending_marker: Option<SnapshotId> = None;
    let mut align_started: Option<Instant> = None;
    let mut align_span: Option<SpanGuard> = None;
    let mut buffer: Vec<Record> = Vec::new();
    let mut out_buf: Vec<Record> = Vec::new();
    let mut received: u64 = 0;
    // Per-input-channel watermark; the operator frontier is their min.
    let mut channel_wm: Vec<u64> = vec![0; n_channels as usize];
    // Watermarks (and Eos releases) arriving on an already-aligned channel
    // while a marker round is open: like post-marker records, they belong to
    // the next checkpoint epoch, so they park here (u64::MAX = deferred Eos
    // release) and apply only after the snapshot ack — otherwise the acked
    // frontier would claim event-time completeness for records that are
    // merely buffered, and a watermark could overtake them downstream.
    let mut deferred_wm: Vec<u64> = vec![0; n_channels as usize];
    let mut frontier: u64 = 0;
    let wm_gauge = tel.watermark_gauge(my_instance);

    let tel_ref = tel;
    let process = |record: Record,
                   kind: &mut OperatorKind,
                   out_buf: &mut Vec<Record>,
                   shared: &Shared|
     -> bool {
        out_buf.clear();
        match kind {
            OperatorKind::Stateless(op) => op.process(record, out_buf),
            OperatorKind::Stateful { op, state } => op.process(record, state, out_buf),
            OperatorKind::Sink(sink) => {
                let now = shared.clock.now_micros();
                let lag = now.saturating_sub(record.src_ts);
                shared.latency.record(lag);
                tel_ref.e2e_lag.record(lag);
                shared.sink_count.fetch_add(1, Ordering::Relaxed);
                sink.consume(record);
            }
        }
        tel_ref.records_out.add(out_buf.len() as u64);
        for r in out_buf.iter() {
            if !route_record(r, &outs, my_instance, &partitioner) {
                return false;
            }
        }
        true
    };

    'outer: loop {
        if shared.poisoned() {
            break;
        }
        let tagged = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(t) => t,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        };
        match tagged.item {
            Item::Record(record) => {
                tel.records_in.inc();
                received += 1;
                shared.worker_record_fault(&tel.operator, my_instance, received);
                if pending_marker.is_some() && aligned.contains(&tagged.from) {
                    // Figure 3a: this channel already delivered the marker;
                    // its records belong to the next checkpoint epoch.
                    buffer.push(record);
                } else if !process(record, &mut kind, &mut out_buf, shared) {
                    break;
                }
            }
            Item::Marker(ssid) => {
                aligned.insert(tagged.from);
                if pending_marker.is_none() {
                    align_started = Some(Instant::now());
                    let mut span = span_under_round(shared, "marker_align");
                    span.label("operator", &tel.operator);
                    span.label("instance", my_instance);
                    span.label("ssid", ssid.0);
                    align_span = Some(span);
                }
                pending_marker = Some(ssid);
                if aligned.len() + eos.iter().filter(|c| !aligned.contains(c)).count()
                    >= n_channels as usize
                {
                    // Figure 3b/3c: all channels aligned — snapshot, ack,
                    // forward, resume.
                    if let Some(s) = align_started.take() {
                        tel.aligned(ssid, s.elapsed().as_micros() as u64);
                    }
                    drop(align_span.take());
                    if let OperatorKind::Stateful { state, .. } = &mut kind {
                        let mut snap = span_under_round(shared, "snapshot_write");
                        snap.label("operator", &tel.operator);
                        snap.label("ssid", ssid.0);
                        if state.snapshot(ssid).is_err() {
                            break;
                        }
                    }
                    shared.ack(ssid, frontier);
                    shared.post_ack_fault(&tel.operator, my_instance, ssid);
                    broadcast(&Item::Marker(ssid), &outs);
                    pending_marker = None;
                    aligned.clear();
                    for record in buffer.drain(..) {
                        if !process(record, &mut kind, &mut out_buf, shared) {
                            break 'outer;
                        }
                    }
                    // Next epoch begins: watermarks deferred during the
                    // round apply after the replayed records they followed.
                    apply_deferred_watermarks(
                        &mut deferred_wm,
                        &mut channel_wm,
                        &mut frontier,
                        &wm_gauge,
                        tel,
                        shared,
                        &outs,
                    );
                }
            }
            Item::Watermark(wm) => {
                if pending_marker.is_some() && aligned.contains(&tagged.from) {
                    // Post-marker watermark on an aligned channel: its
                    // records are buffered out of the cut, so its promise
                    // must not raise the acked frontier (nor overtake the
                    // buffered records downstream). Park it until alignment
                    // completes — deferring a watermark only loosens it,
                    // which is always sound.
                    if let Some(slot) = deferred_wm.get_mut(tagged.from as usize) {
                        *slot = (*slot).max(wm);
                    }
                } else {
                    if let Some(slot) = channel_wm.get_mut(tagged.from as usize) {
                        *slot = (*slot).max(wm);
                    }
                    advance_frontier(&channel_wm, &mut frontier, &wm_gauge, tel, shared, &outs);
                }
            }
            Item::Eos => {
                let was_aligned = pending_marker.is_some() && aligned.contains(&tagged.from);
                eos.insert(tagged.from);
                // A finished channel stops gating the watermark min — but if
                // it already delivered this round's marker, its buffered
                // post-marker records are outside the cut, so the release is
                // deferred with the rest of its next-epoch watermarks.
                if was_aligned {
                    if let Some(slot) = deferred_wm.get_mut(tagged.from as usize) {
                        *slot = u64::MAX;
                    }
                } else {
                    if let Some(slot) = channel_wm.get_mut(tagged.from as usize) {
                        *slot = u64::MAX;
                    }
                    advance_frontier(&channel_wm, &mut frontier, &wm_gauge, tel, shared, &outs);
                }
                // An Eos channel counts as aligned for any pending marker.
                if let Some(ssid) = pending_marker {
                    if aligned.len() + eos.iter().filter(|c| !aligned.contains(c)).count()
                        >= n_channels as usize
                    {
                        if let Some(s) = align_started.take() {
                            tel.aligned(ssid, s.elapsed().as_micros() as u64);
                        }
                        drop(align_span.take());
                        if let OperatorKind::Stateful { state, .. } = &mut kind {
                            let mut snap = span_under_round(shared, "snapshot_write");
                            snap.label("operator", &tel.operator);
                            snap.label("ssid", ssid.0);
                            if state.snapshot(ssid).is_err() {
                                break;
                            }
                        }
                        shared.ack(ssid, frontier);
                        shared.post_ack_fault(&tel.operator, my_instance, ssid);
                        broadcast(&Item::Marker(ssid), &outs);
                        pending_marker = None;
                        aligned.clear();
                        for record in buffer.drain(..) {
                            if !process(record, &mut kind, &mut out_buf, shared) {
                                break 'outer;
                            }
                        }
                        apply_deferred_watermarks(
                            &mut deferred_wm,
                            &mut channel_wm,
                            &mut frontier,
                            &wm_gauge,
                            tel,
                            shared,
                            &outs,
                        );
                    }
                }
                if eos.len() >= n_channels as usize {
                    broadcast(&Item::Eos, &outs);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn shared() -> (Arc<Shared>, Receiver<Ack>) {
        let (ack_tx, ack_rx) = unbounded();
        (
            Arc::new(Shared {
                clock: Clock::manual(),
                poison: AtomicBool::new(false),
                ack_tx,
                latency: SharedHistogram::new(),
                sink_count: AtomicU64::new(0),
                source_count: AtomicU64::new(0),
                live_instances: AtomicU32::new(1),
                exhausted_sources: AtomicU32::new(0),
                partitioner: Partitioner::new(16),
                telemetry: MetricsRegistry::new(),
                faults: None,
                dead_workers: AtomicU32::new(0),
                coordinator_dead: AtomicBool::new(false),
                failure: Mutex::new(None),
            }),
            ack_rx,
        )
    }

    fn tel(shared: &Shared, operator: &str) -> WorkerTelemetry {
        WorkerTelemetry::for_operator(&shared.telemetry, operator)
    }

    /// A sink worker with two input channels must align markers: records
    /// arriving on an already-aligned channel wait until the other channel's
    /// marker arrives.
    #[test]
    fn marker_alignment_buffers_post_marker_records() {
        let (shared, ack_rx) = shared();
        let (tx, rx) = unbounded::<Tagged>();
        use parking_lot::Mutex;
        let seen: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        struct CollectSink(Arc<Mutex<Vec<i64>>>);
        impl Sink for CollectSink {
            fn consume(&mut self, r: Record) {
                self.0.lock().push(r.key.as_int().unwrap());
            }
        }
        let worker = {
            let shared = Arc::clone(&shared);
            let tel = tel(&shared, "collect");
            std::thread::spawn(move || {
                run_operator(
                    rx,
                    2,
                    OperatorKind::Sink(Box::new(CollectSink(seen2))),
                    vec![],
                    0,
                    shared,
                    tel,
                )
            })
        };
        let rec = |from: u32, k: i64| Tagged {
            from,
            item: Item::Record(Record::new(k, 0i64)),
        };
        let marker = |from: u32| Tagged {
            from,
            item: Item::Marker(SnapshotId(1)),
        };
        // Channel 0: r1, marker, r3 (r3 must wait). Channel 1: r2, marker.
        tx.send(rec(0, 1)).unwrap();
        tx.send(marker(0)).unwrap();
        tx.send(rec(0, 3)).unwrap();
        tx.send(rec(1, 2)).unwrap();
        tx.send(marker(1)).unwrap();
        tx.send(Tagged {
            from: 0,
            item: Item::Eos,
        })
        .unwrap();
        tx.send(Tagged {
            from: 1,
            item: Item::Eos,
        })
        .unwrap();
        worker.join().unwrap();
        let order = seen.lock().clone();
        assert_eq!(order, vec![1, 2, 3], "r3 processed only after alignment");
        let ack = ack_rx.try_recv().unwrap();
        assert_eq!(ack.ssid, SnapshotId(1));
        assert_eq!(shared.sink_count.load(Ordering::Relaxed), 3);
        // Telemetry: 3 records in, a worker started+stopped pair, and one
        // alignment-stall sample for the completed round.
        let l = [("operator", "collect")];
        assert_eq!(
            shared
                .telemetry
                .counter_value("operator_records_in_total", &l),
            Some(3)
        );
        let kinds: Vec<_> = shared
            .telemetry
            .events()
            .snapshot()
            .iter()
            .map(|e| e.kind.as_str().to_string())
            .collect();
        assert!(kinds.contains(&"worker_started".to_string()));
        assert!(kinds.contains(&"worker_stopped".to_string()));
        let stalls = shared
            .telemetry
            .histograms()
            .into_iter()
            .find(|(k, _)| k.name == "operator_align_stall_us")
            .expect("stall histogram exists")
            .1;
        assert_eq!(stalls.count(), 1);
    }

    #[test]
    fn eos_channel_counts_as_aligned() {
        let (shared, ack_rx) = shared();
        let (tx, rx) = unbounded::<Tagged>();
        struct Null;
        impl Sink for Null {
            fn consume(&mut self, _r: Record) {}
        }
        let worker = {
            let shared = Arc::clone(&shared);
            let tel = tel(&shared, "null");
            std::thread::spawn(move || {
                run_operator(
                    rx,
                    2,
                    OperatorKind::Sink(Box::new(Null)),
                    vec![],
                    0,
                    shared,
                    tel,
                )
            })
        };
        // Channel 1 ends before the checkpoint; channel 0's marker alone
        // must complete it.
        tx.send(Tagged {
            from: 1,
            item: Item::Eos,
        })
        .unwrap();
        tx.send(Tagged {
            from: 0,
            item: Item::Marker(SnapshotId(7)),
        })
        .unwrap();
        tx.send(Tagged {
            from: 0,
            item: Item::Eos,
        })
        .unwrap();
        worker.join().unwrap();
        assert_eq!(ack_rx.try_recv().unwrap().ssid, SnapshotId(7));
    }

    #[test]
    fn poison_stops_worker() {
        let (shared, _ack) = shared();
        let (_tx, rx) = unbounded::<Tagged>();
        struct Null;
        impl Sink for Null {
            fn consume(&mut self, _r: Record) {}
        }
        shared.poison.store(true, Ordering::Relaxed);
        let s2 = Arc::clone(&shared);
        let t2 = tel(&shared, "null");
        let worker = std::thread::spawn(move || {
            run_operator(rx, 1, OperatorKind::Sink(Box::new(Null)), vec![], 0, s2, t2)
        });
        worker.join().unwrap();
        assert_eq!(shared.live_instances.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn panicking_sink_is_caught_and_flagged() {
        let (shared, _ack) = shared();
        let (tx, rx) = unbounded::<Tagged>();
        struct ExplodingSink;
        impl Sink for ExplodingSink {
            fn consume(&mut self, _r: Record) {
                panic!("sink exploded");
            }
        }
        let s2 = Arc::clone(&shared);
        let t2 = tel(&shared, "boom");
        let worker = std::thread::spawn(move || {
            run_operator(
                rx,
                1,
                OperatorKind::Sink(Box::new(ExplodingSink)),
                vec![],
                0,
                s2,
                t2,
            )
        });
        tx.send(Tagged {
            from: 0,
            item: Item::Record(Record::new(1i64, 1i64)),
        })
        .unwrap();
        // The worker thread itself must NOT propagate the panic: join
        // succeeds, the death is flagged, and the live count still dropped.
        worker.join().expect("unwind was caught inside the worker");
        assert_eq!(shared.dead_workers.load(Ordering::Acquire), 1);
        assert_eq!(shared.live_instances.load(Ordering::Acquire), 0);
        let failure = shared.worker_failure().expect("failure recorded");
        assert!(failure.contains("boom#0"), "names the instance: {failure}");
        assert!(failure.contains("sink exploded"));
        let kinds: Vec<_> = shared
            .telemetry
            .events()
            .snapshot()
            .iter()
            .map(|e| e.kind.as_str().to_string())
            .collect();
        assert!(kinds.contains(&"worker_panicked".to_string()));
    }

    #[test]
    fn injected_record_fault_panics_worker_deterministically() {
        use squery_common::fault::{
            FaultAction, FaultInjector, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint,
        };
        let (ack_tx, _ack_rx) = unbounded();
        let plan = FaultPlan::new(7).with(FaultSpec {
            point: InjectionPoint::WorkerRecord,
            action: FaultAction::PanicWorker,
            trigger: FaultTrigger {
                at_record: Some(3),
                operator: Some("victim".into()),
                ..FaultTrigger::default()
            },
            once: true,
        });
        let injector = Arc::new(FaultInjector::new(plan));
        let shared = Arc::new(Shared {
            clock: Clock::manual(),
            poison: AtomicBool::new(false),
            ack_tx,
            latency: SharedHistogram::new(),
            sink_count: AtomicU64::new(0),
            source_count: AtomicU64::new(0),
            live_instances: AtomicU32::new(1),
            exhausted_sources: AtomicU32::new(0),
            partitioner: Partitioner::new(16),
            telemetry: MetricsRegistry::new(),
            faults: Some(Arc::clone(&injector)),
            dead_workers: AtomicU32::new(0),
            coordinator_dead: AtomicBool::new(false),
            failure: Mutex::new(None),
        });
        let (tx, rx) = unbounded::<Tagged>();
        struct Null;
        impl Sink for Null {
            fn consume(&mut self, _r: Record) {}
        }
        let s2 = Arc::clone(&shared);
        let t2 = tel(&shared, "victim");
        let worker = std::thread::spawn(move || {
            run_operator(rx, 1, OperatorKind::Sink(Box::new(Null)), vec![], 0, s2, t2)
        });
        for k in 0..5i64 {
            let _ = tx.send(Tagged {
                from: 0,
                item: Item::Record(Record::new(k, 0i64)),
            });
        }
        worker.join().unwrap();
        // Records 1 and 2 were consumed; the fault fired at the 3rd.
        assert_eq!(shared.sink_count.load(Ordering::Relaxed), 2);
        assert_eq!(shared.dead_workers.load(Ordering::Acquire), 1);
        let records = injector.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].point, InjectionPoint::WorkerRecord);
        assert_eq!(records[0].operator.as_deref(), Some("victim"));
    }

    /// The operator frontier is the min across input channels, monotonic,
    /// released by Eos, published to the instance gauge, and carried on the
    /// phase-1 ack.
    #[test]
    fn watermark_frontier_is_min_across_channels() {
        let (shared, ack_rx) = shared();
        let (tx, rx) = unbounded::<Tagged>();
        struct Null;
        impl Sink for Null {
            fn consume(&mut self, _r: Record) {}
        }
        let worker = {
            let shared = Arc::clone(&shared);
            let tel = tel(&shared, "wm");
            std::thread::spawn(move || {
                run_operator(
                    rx,
                    2,
                    OperatorKind::Sink(Box::new(Null)),
                    vec![],
                    0,
                    shared,
                    tel,
                )
            })
        };
        let wm = |from: u32, w: u64| Tagged {
            from,
            item: Item::Watermark(w),
        };
        // Channel 0 at 100, channel 1 at 50 → frontier 50.
        tx.send(wm(0, 100)).unwrap();
        tx.send(wm(1, 50)).unwrap();
        // Channel 1 jumps to 200 → frontier min(100, 200) = 100; the marker
        // ack then carries that frontier.
        tx.send(wm(1, 200)).unwrap();
        tx.send(Tagged {
            from: 0,
            item: Item::Marker(SnapshotId(3)),
        })
        .unwrap();
        tx.send(Tagged {
            from: 1,
            item: Item::Marker(SnapshotId(3)),
        })
        .unwrap();
        // Channel 0 finishes → it stops gating the min → frontier 200.
        tx.send(Tagged {
            from: 0,
            item: Item::Eos,
        })
        .unwrap();
        tx.send(Tagged {
            from: 1,
            item: Item::Eos,
        })
        .unwrap();
        worker.join().unwrap();
        let ack = ack_rx.try_recv().unwrap();
        assert_eq!(ack.ssid, SnapshotId(3));
        assert_eq!(ack.watermark_us, 100, "ack carries the frontier at align");
        let gauge = shared
            .telemetry
            .gauges()
            .into_iter()
            .find(|(k, _)| k.name == "watermark_us")
            .expect("instance frontier gauge exists");
        assert_eq!(gauge.1, 200, "Eos releases the finished channel");
        let lag_samples = shared
            .telemetry
            .histograms()
            .into_iter()
            .find(|(k, _)| k.name == "watermark_lag_us")
            .expect("lag histogram exists")
            .1;
        assert_eq!(lag_samples.count(), 3, "one sample per frontier advance");
    }

    /// Post-marker watermarks from an already-aligned channel must not raise
    /// the frontier the snapshot ack carries: like post-marker records they
    /// belong to the next epoch, and apply only after alignment completes.
    #[test]
    fn post_marker_watermarks_defer_until_alignment() {
        let (shared, ack_rx) = shared();
        let (tx, rx) = unbounded::<Tagged>();
        struct Null;
        impl Sink for Null {
            fn consume(&mut self, _r: Record) {}
        }
        let worker = {
            let shared = Arc::clone(&shared);
            let tel = tel(&shared, "defer");
            std::thread::spawn(move || {
                run_operator(
                    rx,
                    2,
                    OperatorKind::Sink(Box::new(Null)),
                    vec![],
                    0,
                    shared,
                    tel,
                )
            })
        };
        let wm = |from: u32, w: u64| Tagged {
            from,
            item: Item::Watermark(w),
        };
        tx.send(wm(0, 100)).unwrap();
        tx.send(wm(1, 200)).unwrap(); // frontier = min(100, 200) = 100
        tx.send(Tagged {
            from: 0,
            item: Item::Marker(SnapshotId(7)),
        })
        .unwrap();
        // Channel 0 races ahead of the open round: a record (buffered out of
        // the cut) and a watermark promising event-time past it.
        tx.send(Tagged {
            from: 0,
            item: Item::Record(Record::new(1i64, 1i64).at(450)),
        })
        .unwrap();
        tx.send(wm(0, 500)).unwrap();
        tx.send(Tagged {
            from: 1,
            item: Item::Marker(SnapshotId(7)),
        })
        .unwrap();
        tx.send(Tagged {
            from: 0,
            item: Item::Eos,
        })
        .unwrap();
        tx.send(Tagged {
            from: 1,
            item: Item::Eos,
        })
        .unwrap();
        worker.join().unwrap();
        let ack = ack_rx.try_recv().unwrap();
        // The snapshot excludes the buffered record, so the ack must not
        // carry channel 0's post-marker promise (applying it eagerly would
        // ack min(500, 200) = 200).
        assert_eq!(ack.watermark_us, 100, "acked frontier predates the marker");
        // Once the round sealed, the deferred watermark applied: min(500, 200).
        let gauge = shared
            .telemetry
            .gauges()
            .into_iter()
            .find(|(k, _)| k.name == "watermark_us")
            .expect("instance frontier gauge exists");
        assert_eq!(gauge.1, 200, "deferred watermark applies after the ack");
        assert_eq!(
            shared.sink_count.load(Ordering::Relaxed),
            1,
            "buffered record replayed"
        );
    }

    /// Eos arriving on a channel that already delivered this round's marker
    /// must not release that channel's watermark gate before the ack — the
    /// release is next-epoch, exactly like a deferred watermark.
    #[test]
    fn eos_on_aligned_channel_defers_release_until_alignment() {
        let (shared, ack_rx) = shared();
        let (tx, rx) = unbounded::<Tagged>();
        struct Null;
        impl Sink for Null {
            fn consume(&mut self, _r: Record) {}
        }
        let worker = {
            let shared = Arc::clone(&shared);
            let tel = tel(&shared, "eosdefer");
            std::thread::spawn(move || {
                run_operator(
                    rx,
                    2,
                    OperatorKind::Sink(Box::new(Null)),
                    vec![],
                    0,
                    shared,
                    tel,
                )
            })
        };
        let wm = |from: u32, w: u64| Tagged {
            from,
            item: Item::Watermark(w),
        };
        tx.send(wm(0, 100)).unwrap();
        tx.send(wm(1, 200)).unwrap(); // frontier 100, gated by channel 0
        tx.send(Tagged {
            from: 0,
            item: Item::Marker(SnapshotId(9)),
        })
        .unwrap();
        // Aligned channel finishes mid-round: an eager release would lift
        // channel 0's gate and ack 200.
        tx.send(Tagged {
            from: 0,
            item: Item::Eos,
        })
        .unwrap();
        tx.send(Tagged {
            from: 1,
            item: Item::Marker(SnapshotId(9)),
        })
        .unwrap();
        tx.send(Tagged {
            from: 1,
            item: Item::Eos,
        })
        .unwrap();
        worker.join().unwrap();
        let ack = ack_rx.try_recv().unwrap();
        assert_eq!(ack.ssid, SnapshotId(9));
        assert_eq!(ack.watermark_us, 100, "Eos release deferred past the ack");
    }

    /// A source stamping out-of-order `src_ts` breaks the max-based
    /// watermark promise: emission is suspended, every violation counted,
    /// and the marker ack demotes its frontier to unknown (0).
    #[test]
    fn unordered_source_suspends_watermarks_and_acks_unknown() {
        struct Unordered {
            batches: usize,
        }
        impl Source for Unordered {
            fn next_batch(
                &mut self,
                _max: usize,
                _now: u64,
                out: &mut Vec<Record>,
            ) -> SourceStatus {
                self.batches += 1;
                match self.batches {
                    1 => {
                        out.push(Record::new(1i64, 1i64).at(100));
                        SourceStatus::Active
                    }
                    2 => {
                        // Regression: below the already-promised 100.
                        out.push(Record::new(2i64, 2i64).at(50));
                        SourceStatus::Exhausted
                    }
                    _ => SourceStatus::Exhausted,
                }
            }
            fn offset(&self) -> Value {
                Value::Int(self.batches as i64)
            }
            fn rewind(&mut self, _offset: &Value) {}
        }
        let (shared, ack_rx) = shared();
        let grid = squery_storage::Grid::single_node();
        let saver = OffsetSaver {
            store: grid.snapshot_store("__offsets"),
            key: Value::str("src#0"),
        };
        let (ctl_tx, ctl_rx) = unbounded();
        let worker = {
            let shared = Arc::clone(&shared);
            let tel = tel(&shared, "unordered");
            std::thread::spawn(move || {
                run_source(
                    Box::new(Unordered { batches: 0 }),
                    ctl_rx,
                    vec![],
                    0,
                    8,
                    shared,
                    saver,
                    tel,
                )
            })
        };
        // Both records (and thus the regression) must land before the marker.
        while shared.source_count.load(Ordering::Relaxed) < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        ctl_tx.send(SourceCommand::Marker(SnapshotId(1))).unwrap();
        let ack = ack_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            ack.watermark_us, 0,
            "regressed source acks an unknown frontier, not the stale max"
        );
        ctl_tx.send(SourceCommand::Stop).unwrap();
        worker.join().unwrap();
        let violations = shared
            .telemetry
            .counter_value("watermark_violations_total", &[("operator", "unordered")])
            .expect("violation counter exists");
        assert_eq!(violations, 1);
        let kinds: Vec<_> = shared
            .telemetry
            .events()
            .snapshot()
            .iter()
            .map(|e| e.kind.as_str().to_string())
            .collect();
        assert!(kinds.contains(&"watermark_regressed".to_string()));
    }

    #[test]
    fn offset_saver_roundtrip() {
        let grid = squery_storage::Grid::single_node();
        let saver = OffsetSaver {
            store: grid.snapshot_store("__offsets"),
            key: Value::str("src#0"),
        };
        saver.save(SnapshotId(1), Value::Int(42));
        assert_eq!(saver.load(SnapshotId(1)), Some(Value::Int(42)));
        assert_eq!(saver.load(SnapshotId(2)), Some(Value::Int(42)));
    }
}
