//! Sources: replayable, rate-limitable event producers.
//!
//! A [`Source`] must be able to report and rewind its offset — that is what
//! makes exactly-once rollback recovery possible (paper §IV: "all operators
//! of the system roll back to the latest checkpoint and start processing
//! input from that point onwards").
//!
//! [`GeneratorSource`] additionally supports *offered-load* pacing: when a
//! rate is set, records are stamped with their scheduled emission time, so a
//! backlogged pipeline shows the queueing delay in its sink latency instead
//! of hiding it (no coordinated omission) — this is how the latency/throughput
//! experiments of Figures 8, 9 and 15 drive the system.

use crate::message::Record;
use squery_common::Value;

/// Result of a batch production attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// Produced something (or could have).
    Active,
    /// Nothing to emit right now (rate limit); try again shortly.
    Idle,
    /// The stream is finished; no further records will ever come.
    Exhausted,
}

/// A replayable event producer (one instance of a source vertex).
///
/// Records are expected to carry non-decreasing `src_ts`: the worker emits
/// watermarks from the max stamp seen, which is a valid low-watermark
/// promise only under monotone stamping (the in-tree sources stamp
/// emission time, which is monotone). The worker *checks* this per record —
/// a regression increments `watermark_violations_total`, logs a
/// `watermark_regressed` event, and permanently suspends watermark emission
/// for that instance rather than over-promise.
pub trait Source: Send {
    /// Produce up to `max` records into `out`. `now_us` is the engine clock.
    fn next_batch(&mut self, max: usize, now_us: u64, out: &mut Vec<Record>) -> SourceStatus;

    /// The current offset, snapshotted at checkpoints.
    fn offset(&self) -> Value;

    /// Reset to a snapshotted offset (rollback recovery).
    fn rewind(&mut self, offset: &Value);
}

/// A source driven by a generator function `index → record`.
///
/// The generator must be deterministic in `index` for replay to be
/// exactly-once: after recovery the source re-produces exactly the records
/// that followed the restored offset.
pub struct GeneratorSource {
    index: u64,
    limit: Option<u64>,
    rate_per_sec: Option<f64>,
    /// The first `prefill` events are exempt from pacing (state build-up);
    /// the rate schedule anchors at the instant the prefill completed.
    prefill: u64,
    prefill_done_at: Option<u64>,
    exhausted: bool,
    gen: Box<dyn FnMut(u64) -> Option<Record> + Send>,
}

impl GeneratorSource {
    /// A source emitting `gen(0), gen(1), …` until `gen` returns `None` or
    /// `limit` records were produced (`limit = 0` means unbounded).
    pub fn new(
        limit: u64,
        gen: impl FnMut(u64) -> Option<Record> + Send + 'static,
    ) -> GeneratorSource {
        GeneratorSource {
            index: 0,
            limit: (limit > 0).then_some(limit),
            rate_per_sec: None,
            prefill: 0,
            prefill_done_at: None,
            exhausted: false,
            gen: Box::new(gen),
        }
    }

    /// Pace this source at `events_per_sec` (per instance), stamping records
    /// with their scheduled emission time.
    pub fn with_rate(mut self, events_per_sec: f64) -> GeneratorSource {
        assert!(events_per_sec > 0.0, "rate must be positive");
        self.rate_per_sec = Some(events_per_sec);
        self
    }

    /// Exempt the first `events` from pacing: they emit at full speed (state
    /// build-up for the snapshot-size experiments), and the rate schedule
    /// starts when they are done, so no catch-up burst follows.
    pub fn with_prefill(mut self, events: u64) -> GeneratorSource {
        self.prefill = events;
        self
    }

    /// Records produced so far.
    pub fn produced(&self) -> u64 {
        self.index
    }
}

impl Source for GeneratorSource {
    fn next_batch(&mut self, max: usize, now_us: u64, out: &mut Vec<Record>) -> SourceStatus {
        if self.exhausted {
            return SourceStatus::Exhausted;
        }
        let mut budget = max as u64;
        if let Some(limit) = self.limit {
            budget = budget.min(limit.saturating_sub(self.index));
            if budget == 0 {
                self.exhausted = true;
                return SourceStatus::Exhausted;
            }
        }
        let pacing_anchor = if self.prefill == 0 {
            // No prefill: the schedule anchors at clock zero, so a source
            // started late immediately owes its backlog (offered load).
            Some(0)
        } else if self.index >= self.prefill {
            Some(*self.prefill_done_at.get_or_insert(now_us))
        } else {
            None
        };
        if let (Some(rate), Some(anchor)) = (self.rate_per_sec, pacing_anchor) {
            let elapsed = now_us.saturating_sub(anchor);
            let scheduled_so_far = self.prefill + (elapsed as f64 * rate / 1_000_000.0) as u64;
            budget = budget.min(scheduled_so_far.saturating_sub(self.index));
            if budget == 0 {
                return SourceStatus::Idle;
            }
        }
        for _ in 0..budget {
            match (self.gen)(self.index) {
                Some(mut record) => {
                    record.src_ts = match (self.rate_per_sec, pacing_anchor) {
                        // Scheduled emission time, not actual: queueing delay
                        // stays visible in sink-side latency.
                        (Some(rate), Some(anchor)) => {
                            anchor
                                + ((self.index - self.prefill) as f64 * 1_000_000.0 / rate) as u64
                        }
                        _ => now_us,
                    };
                    out.push(record);
                    self.index += 1;
                }
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        if self.exhausted && out.is_empty() {
            SourceStatus::Exhausted
        } else {
            SourceStatus::Active
        }
    }

    fn offset(&self) -> Value {
        Value::Int(self.index as i64)
    }

    fn rewind(&mut self, offset: &Value) {
        self.index = offset.as_int().expect("generator offset is an integer") as u64;
        self.exhausted = false;
    }
}

/// A source over a fixed record list (deterministic tests).
pub fn vec_source(records: Vec<Record>) -> GeneratorSource {
    GeneratorSource::new(0, move |i| records.get(i as usize).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_source(limit: u64) -> GeneratorSource {
        GeneratorSource::new(limit, |i| Some(Record::new(i as i64, i as i64)))
    }

    #[test]
    fn produces_until_limit() {
        let mut s = int_source(5);
        let mut out = Vec::new();
        assert_eq!(s.next_batch(3, 0, &mut out), SourceStatus::Active);
        assert_eq!(out.len(), 3);
        assert_eq!(s.next_batch(10, 0, &mut out), SourceStatus::Active);
        assert_eq!(out.len(), 5);
        assert_eq!(s.next_batch(10, 0, &mut out), SourceStatus::Exhausted);
        assert_eq!(s.produced(), 5);
    }

    #[test]
    fn generator_none_exhausts() {
        let mut s = vec_source(vec![Record::new(1i64, 1i64)]);
        let mut out = Vec::new();
        assert_eq!(s.next_batch(10, 0, &mut out), SourceStatus::Active);
        assert_eq!(out.len(), 1);
        assert_eq!(s.next_batch(10, 0, &mut out), SourceStatus::Exhausted);
    }

    #[test]
    fn offset_and_rewind_replay_identically() {
        let mut s = int_source(0);
        let mut first = Vec::new();
        s.next_batch(10, 0, &mut first);
        let offset_after_4 = Value::Int(4);
        s.rewind(&offset_after_4);
        assert_eq!(s.offset(), Value::Int(4));
        let mut replay = Vec::new();
        s.next_batch(3, 0, &mut replay);
        assert_eq!(replay[0].key, first[4].key, "replay resumes at offset");
        assert_eq!(replay[2].key, first[6].key);
    }

    #[test]
    fn rate_limits_by_elapsed_time() {
        // 1000 events/s: at t=10ms, 10 events are due.
        let mut s = int_source(0).with_rate(1000.0);
        let mut out = Vec::new();
        assert_eq!(s.next_batch(100, 0, &mut out), SourceStatus::Idle);
        assert!(out.is_empty());
        assert_eq!(s.next_batch(100, 10_000, &mut out), SourceStatus::Active);
        assert_eq!(out.len(), 10);
        // Stamps are the scheduled times: 0ms, 1ms, 2ms, ...
        assert_eq!(out[0].src_ts, 0);
        assert_eq!(out[1].src_ts, 1_000);
        assert_eq!(out[9].src_ts, 9_000);
        // Nothing more due at the same instant.
        assert_eq!(s.next_batch(100, 10_000, &mut out), SourceStatus::Idle);
    }

    #[test]
    fn unpaced_records_stamped_with_now() {
        let mut s = int_source(1);
        let mut out = Vec::new();
        s.next_batch(1, 777, &mut out);
        assert_eq!(out[0].src_ts, 777);
    }

    #[test]
    fn rewound_exhausted_source_resumes() {
        let mut s = int_source(3);
        let mut out = Vec::new();
        s.next_batch(10, 0, &mut out);
        assert_eq!(s.next_batch(10, 0, &mut out), SourceStatus::Exhausted);
        s.rewind(&Value::Int(1));
        out.clear();
        assert_eq!(s.next_batch(10, 0, &mut out), SourceStatus::Active);
        assert_eq!(out.len(), 2, "replays records 1 and 2");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        int_source(0).with_rate(0.0);
    }
}
