//! # squery-streaming
//!
//! A shared-nothing DAG stream processor — this reproduction's analogue of
//! Hazelcast Jet, the host system of the paper's S-QUERY implementation
//! (§VI-A). It provides everything S-QUERY's mechanisms hook into:
//!
//! * **Dataflow model** (§IV "Streaming Model"): jobs are DAGs of operators;
//!   partitioned operators run as parallel single-threaded instances connected
//!   by forward or keyed (hash-partitioned) edges. Keyed routing uses the
//!   *same* partitioner as the storage grid, so instance `i`'s keys live in
//!   grid partitions owned by instance `i`'s node — the co-partitioning
//!   contract (§II).
//! * **Aligned checkpoints** (§IV, Figure 3): the checkpoint coordinator
//!   injects markers at the sources; multi-input operators align (buffering
//!   records from channels whose marker already arrived), snapshot their
//!   state, ack, and forward the marker. Exactly-once rollback recovery
//!   restores operator state and source offsets from the latest committed
//!   snapshot.
//! * **2PC snapshot commit** (§IX-C): phase 1 = all instances have written
//!   their snapshot data and acked; phase 2 = the snapshot registry's atomic
//!   flip plus retention pruning. Both phase durations are recorded at the
//!   coordinator, exactly where the paper measures them.
//! * **State backends** ([`state`]): local-only (the plain-Jet baseline with
//!   opaque blob snapshots), queryable snapshots (full or incremental per-key
//!   entries), and live write-through into the grid's `IMap`s — the
//!   live/snapshot/both configurations of Figure 8.
//! * **Latency stamping**: sources stamp records at their *scheduled* emission
//!   time (avoiding coordinated omission under offered load); sinks record
//!   source-to-sink latency into shared histograms, the measurement of
//!   Figures 8 and 9.
//! * **Supervised recovery** ([`runtime::SupervisedJob`]): a monitor thread
//!   detects dead workers and killed coordinators and re-runs rollback
//!   recovery under a bounded restart policy with exponential backoff —
//!   queries keep serving the last committed snapshot throughout. Faults can
//!   be injected deterministically via
//!   [`squery_common::fault::FaultInjector`] hooks threaded through the
//!   workers and the coordinator.

pub mod checkpoint;
pub mod dag;
pub mod message;
pub mod runtime;
pub mod source;
pub mod state;
pub mod worker;

pub use dag::{EdgeKind, JobSpec, VertexKind, VertexSpec};
pub use message::{Item, Record};
pub use runtime::{
    EngineConfig, JobHandle, JobReport, RestartPolicy, StateConfig, StreamEnv, SupervisedJob,
    SupervisorStatus,
};
pub use source::{GeneratorSource, SourceStatus};
