//! Golden-file tests for `EXPLAIN` output of the paper's queries.
//!
//! The rendered plan of Q1–Q4 (q-commerce order monitoring, §VIII) and the
//! NEXMark q6 join is compared line-for-line against checked-in golden
//! files under `tests/golden/`. Regenerate after an intentional planner or
//! renderer change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p squery-bench --test explain_golden
//! ```

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_nexmark::{q6_job, NexmarkConfig};
use squery_qcommerce::{order_monitoring_job, QCommerceConfig, QUERY_1, QUERY_2, QUERY_3, QUERY_4};
use std::path::PathBuf;
use std::time::Duration;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Render `<prefix> <sql>` as one newline-terminated string.
fn explain_with(system: &SQuery, prefix: &str, sql: &str) -> String {
    let rs = system
        .query(&format!("{prefix} {sql}"))
        .unwrap_or_else(|e| panic!("{prefix} failed for {sql:?}: {e}"));
    let mut out = String::new();
    for row in rs.rows() {
        out.push_str(row[0].as_str().expect("plan lines are strings"));
        out.push('\n');
    }
    out
}

/// Render `EXPLAIN <sql>` as one newline-terminated string.
fn explain(system: &SQuery, sql: &str) -> String {
    explain_with(system, "EXPLAIN", sql)
}

/// Compare against the golden file, or rewrite it when `UPDATE_GOLDEN` is
/// set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "EXPLAIN output for {name} drifted from {} — \
         rerun with UPDATE_GOLDEN=1 if the change is intentional",
        path.display()
    );
}

#[test]
fn explain_of_paper_queries_q1_to_q4_matches_golden() {
    let system =
        SQuery::new(SQueryConfig::default().with_state(StateConfig::live_and_snapshot())).unwrap();
    let cfg = QCommerceConfig {
        orders: 40,
        riders: 10,
        events_per_instance: 320,
        rate_per_instance: None,
        prefill_passes: 0,
    };
    let mut job = system.submit(order_monitoring_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(60)).unwrap();
    for (name, sql) in [
        ("q1", QUERY_1),
        ("q2", QUERY_2),
        ("q3", QUERY_3),
        ("q4", QUERY_4),
    ] {
        check(name, &explain(&system, sql));
    }
    job.stop();
}

/// `EXPLAIN ANALYZE` on Q1–Q4 reports measured per-operator rows and wall
/// time, and the forced profile spans land in `sys_spans` with the plan
/// operators nested under each query's root span.
#[test]
fn explain_analyze_of_q1_to_q4_is_consistent_with_sys_spans() {
    let system =
        SQuery::new(SQueryConfig::default().with_state(StateConfig::live_and_snapshot())).unwrap();
    let cfg = QCommerceConfig {
        orders: 40,
        riders: 10,
        events_per_instance: 320,
        rate_per_instance: None,
        prefill_passes: 0,
    };
    let mut job = system.submit(order_monitoring_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(60)).unwrap();
    for sql in [QUERY_1, QUERY_2, QUERY_3, QUERY_4] {
        let plan = explain_with(&system, "EXPLAIN ANALYZE", sql);
        // Every instrumented node carries measured stats, and the scans
        // actually read the 40-order snapshot.
        for needle in ["Scan", "HashJoin", "Filter", "Aggregate"] {
            let line = plan
                .lines()
                .find(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("no {needle} node in: {plan}"));
            assert!(line.contains("(rows="), "unannotated {needle}: {line}");
            assert!(line.contains(" wall="), "no wall time on {needle}: {line}");
        }
        assert!(
            plan.lines()
                .any(|l| l.contains("Scan") && l.contains("rows=40")),
            "scans saw the snapshot: {plan}"
        );
    }
    // Each ANALYZE forced one root query span; the plan operators hang off
    // those roots and fit inside them on the timeline.
    let roots = system
        .query("SELECT id, duration_us FROM sys_spans WHERE kind = 'query'")
        .unwrap();
    assert_eq!(roots.rows().len(), 4, "one forced root per ANALYZE");
    for kind in ["scan", "join", "filter", "aggregate"] {
        let children = system
            .query(&format!(
                "SELECT parent, duration_us FROM sys_spans WHERE kind = '{kind}'"
            ))
            .unwrap();
        assert!(!children.rows().is_empty(), "no {kind} spans recorded");
        for child in children.rows() {
            let root = roots
                .rows()
                .iter()
                .find(|r| r[0] == child[0])
                .unwrap_or_else(|| panic!("orphan {kind} span: {child:?}"));
            assert!(
                child[1].as_int().unwrap() <= root[1].as_int().unwrap(),
                "{kind} span outlives its query root"
            );
        }
    }
    job.stop();
}

/// The cost model picks the smaller side as the hash-join build input; when
/// the table sizes invert, the decision flips. Captured as a golden so the
/// `[build=… est_rows=…]` rendering is pinned too.
#[test]
fn cost_model_flips_build_side_when_table_sizes_invert() {
    use squery_common::Value;
    use squery_sql::{GridCatalog, SqlEngine};
    use squery_storage::Grid;

    let grid = Grid::single_node();
    let big = grid.map("big");
    let small = grid.map("small");
    for i in 0..50i64 {
        big.put(Value::Int(i), Value::Int(i * 10));
    }
    for i in 0..3i64 {
        small.put(Value::Int(i), Value::Int(i * 100));
    }
    let engine = SqlEngine::new(GridCatalog::new(grid));
    let explain = |sql: &str| {
        let rs = engine.query(sql).unwrap();
        let mut out = String::new();
        for row in rs.rows() {
            out.push_str(row[0].as_str().expect("plan lines are strings"));
            out.push('\n');
        }
        out
    };
    // big ⨝ small: build from the right (small) side — query-text order
    // already agrees with the cost model.
    let right = explain("EXPLAIN SELECT * FROM big JOIN small USING(partitionKey)");
    // small ⨝ big: query-text order would build from the 50-row side; the
    // cost model flips the build to the left (small) input.
    let left = explain("EXPLAIN SELECT * FROM small JOIN big USING(partitionKey)");
    assert!(right.contains("[build=right est_rows=3]"), "{right}");
    assert!(left.contains("[build=left est_rows=3]"), "{left}");
    check("cost_model_build_side", &format!("{right}{left}"));
}

#[test]
fn explain_of_nexmark_q6_join_matches_golden() {
    let system =
        SQuery::new(SQueryConfig::default().with_state(StateConfig::live_and_snapshot())).unwrap();
    let cfg = NexmarkConfig {
        sellers: 10,
        active_auctions: 20,
        events_per_instance: 400,
        rate_per_instance: None,
    };
    let mut job = system.submit(q6_job(cfg, 1, 2)).unwrap();
    job.drain_and_checkpoint(Duration::from_secs(60)).unwrap();
    let sql = "SELECT prices FROM \"snapshot_average\" a JOIN \"snapshot_maxbid\" b \
               ON a.partitionKey = b.seller LIMIT 10";
    check("nexmark_q6", &explain(&system, sql));
    job.stop();
}
