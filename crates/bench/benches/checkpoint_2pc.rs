//! The snapshot 2PC path (Figures 10–12's mechanism): one complete
//! checkpoint — marker injection, alignment, phase-1 state writes, commit,
//! pruning — over a live job with populated state, S-QUERY vs the
//! Jet-baseline blob path, full vs incremental.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squery::{SQuery, SQueryConfig, StateConfig};
use squery_bench::util::{submit_monitoring, wait_for_fill};
use squery_streaming::JobHandle;
use std::time::Duration;

fn prepared_job(state: StateConfig, orders: u64) -> (SQuery, JobHandle) {
    let config = SQueryConfig::default().with_state(state);
    let system = SQuery::new(config).unwrap();
    let job = submit_monitoring(&system, orders, Some(3_000.0), 2);
    let fill = orders + orders * 8 + (orders / 5).max(10);
    wait_for_fill(&job, fill, Duration::from_secs(120));
    let _ = job.checkpoint_now();
    (system, job)
}

fn checkpoint_2pc(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_2pc");
    group.sample_size(15);
    for orders in [1_000u64, 5_000] {
        for (label, state) in [
            ("squery_full", StateConfig::snapshot_only()),
            ("squery_incremental", StateConfig::snapshot_incremental()),
            ("jet_blob", StateConfig::jet_baseline()),
        ] {
            let (_system, job) = prepared_job(state, orders);
            group.bench_with_input(BenchmarkId::new(label, orders), &orders, |b, _| {
                b.iter(|| job.checkpoint_now().unwrap());
            });
            job.stop();
        }
    }
    group.finish();
}

criterion_group!(benches, checkpoint_2pc);
criterion_main!(benches);
