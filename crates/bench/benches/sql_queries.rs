//! Micro-benchmarks of the SQL layer: parsing, point reads via hint
//! pushdown, Query 1's join+aggregate pipeline (the Figure 13 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::Value;
use squery_qcommerce::events::{order_info_event, order_status_event};
use squery_qcommerce::QUERY_1;
use squery_sql::parser::parse;

/// An S-QUERY system whose orderinfo/orderstate snapshot state is populated
/// for `orders` keys (written directly, no job, for bench setup speed).
fn populated_system(orders: u64) -> SQuery {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let grid = system.grid();
    let info_store = grid.snapshot_store("orderinfo");
    let state_store = grid.snapshot_store("orderstate");
    info_store.set_value_schema(squery_qcommerce::events::order_info_schema());
    state_store.set_value_schema(squery_qcommerce::events::order_state_schema());
    let info_live = grid.map("orderinfo");
    info_live.set_value_schema(squery_qcommerce::events::order_info_schema());
    let ssid = grid.registry().begin().unwrap();
    for pid in 0..grid.partitioner().partition_count() {
        info_store.write_partition(ssid, squery_common::PartitionId(pid), vec![], true);
        state_store.write_partition(ssid, squery_common::PartitionId(pid), vec![], true);
    }
    for o in 0..orders {
        let info = order_info_event(o);
        let status = order_status_event(o, 7);
        info_live.put(info.key.clone(), info.value.clone());
        info_store.write_partition(
            ssid,
            info_store.partition_of(&info.key),
            vec![(info.key, Some(info.value))],
            true,
        );
        state_store.write_partition(
            ssid,
            state_store.partition_of(&status.key),
            vec![(status.key, Some(status.value))],
            true,
        );
    }
    grid.registry().commit(ssid).unwrap();
    system
}

fn parsing(c: &mut Criterion) {
    c.bench_function("parse_query1", |b| b.iter(|| parse(QUERY_1).unwrap()));
    c.bench_function("parse_point_select", |b| {
        b.iter(|| parse("SELECT count, total FROM average WHERE partitionKey = 1").unwrap())
    });
}

fn point_reads(c: &mut Criterion) {
    let system = populated_system(10_000);
    let mut i = 0i64;
    c.bench_function("sql_point_read_live_10k", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            system
                .query(&format!(
                    "SELECT deliveryZone FROM orderinfo WHERE partitionKey = {i}"
                ))
                .unwrap()
        })
    });
    c.bench_function("sql_point_read_snapshot_10k", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            system
                .query(&format!(
                    "SELECT deliveryZone FROM snapshot_orderinfo WHERE partitionKey = {i}"
                ))
                .unwrap()
        })
    });
}

fn query1_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("query1_join_groupby");
    group.sample_size(20);
    for orders in [1_000u64, 10_000] {
        let system = populated_system(orders);
        group.bench_with_input(BenchmarkId::from_parameter(orders), &orders, |b, _| {
            b.iter(|| system.query(QUERY_1).unwrap())
        });
    }
    group.finish();
}

fn aggregates(c: &mut Criterion) {
    let system = populated_system(10_000);
    c.bench_function("group_by_zone_10k", |b| {
        b.iter(|| {
            system
                .query(
                    "SELECT deliveryZone, COUNT(*) FROM snapshot_orderinfo GROUP BY deliveryZone",
                )
                .unwrap()
        })
    });
    let _ = Value::Null;
}

criterion_group!(benches, parsing, point_reads, query1_join, aggregates);
criterion_main!(benches);
