//! Rollback-recovery latency: crash a running job (workers joined, state
//! torn down) and restore it from the last committed snapshot, as the
//! supervisor does after a fatal fault. State size sweeps show the restore
//! cost growing with the keyspace — the recovery-time side of the paper's
//! fault-tolerance story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squery::{SQuery, SQueryConfig, StateConfig};
use squery_bench::util::{submit_monitoring, wait_for_fill};
use squery_streaming::JobHandle;
use std::time::Duration;

fn prepared_job(orders: u64) -> (SQuery, JobHandle) {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let job = submit_monitoring(&system, orders, None, 2);
    let fill = orders + orders * 8 + (orders / 5).max(10);
    wait_for_fill(&job, fill, Duration::from_secs(120));
    job.checkpoint_now().unwrap();
    (system, job)
}

fn recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_time");
    group.sample_size(10);
    for orders in [1_000u64, 5_000, 20_000] {
        let (_system, mut job) = prepared_job(orders);
        group.bench_with_input(
            BenchmarkId::new("crash_recover", orders),
            &orders,
            |b, _| {
                b.iter(|| {
                    job.crash();
                    job.recover().unwrap();
                });
            },
        );
        job.stop();
    }
    group.finish();
}

criterion_group!(benches, recovery_time);
criterion_main!(benches);
