//! Rollback-recovery latency: crash a running job (workers joined, state
//! torn down) and restore it from the last committed snapshot, as the
//! supervisor does after a fatal fault. State size sweeps show the restore
//! cost growing with the keyspace — the recovery-time side of the paper's
//! fault-tolerance story. The `cold_start_from_wal` cases measure the
//! process-death path instead: rebuilding a system's entire snapshot state
//! from the write-ahead log alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squery::{SQuery, SQueryConfig, StateConfig};
use squery_bench::util::{submit_monitoring, wait_for_fill};
use squery_common::{PartitionId, Value};
use squery_streaming::JobHandle;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn prepared_job(orders: u64) -> (SQuery, JobHandle) {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let job = submit_monitoring(&system, orders, None, 2);
    let fill = orders + orders * 8 + (orders / 5).max(10);
    wait_for_fill(&job, fill, Duration::from_secs(120));
    job.checkpoint_now().unwrap();
    (system, job)
}

/// Build a sealed, committed WAL holding `keys` entries, then drop the
/// system — the directory is all that survives, as after a process kill.
fn prepared_wal(keys: i64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "squery-recovery-bench-{}-{keys}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = SQueryConfig::default()
        .with_state(StateConfig::live_and_snapshot())
        .with_wal_dir(&dir);
    let system = SQuery::new(config).unwrap();
    let grid = system.grid();
    let store = grid.snapshot_store("riders");
    let ssid = grid.registry().begin().unwrap();
    let mut parts: BTreeMap<PartitionId, Vec<(Value, Option<Value>)>> = BTreeMap::new();
    for k in 0..keys {
        let key = Value::Int(k);
        parts
            .entry(store.partition_of(&key))
            .or_default()
            .push((key, Some(Value::Int(k * 3))));
    }
    for (pid, entries) in parts {
        store.write_partition(ssid, pid, entries, true);
    }
    grid.wal_seal(ssid).unwrap();
    grid.registry().commit(ssid).unwrap();
    dir
}

fn recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_time");
    group.sample_size(10);
    for orders in [1_000u64, 5_000, 20_000] {
        let (_system, mut job) = prepared_job(orders);
        group.bench_with_input(
            BenchmarkId::new("crash_recover", orders),
            &orders,
            |b, _| {
                b.iter(|| {
                    job.crash();
                    job.recover().unwrap();
                });
            },
        );
        job.stop();
    }
    for keys in [1_000i64, 5_000, 20_000] {
        let dir = prepared_wal(keys);
        group.bench_with_input(
            BenchmarkId::new("cold_start_from_wal", keys),
            &keys,
            |b, _| {
                b.iter(|| {
                    let config = SQueryConfig::default()
                        .with_state(StateConfig::live_and_snapshot())
                        .with_wal_dir(&dir);
                    let system = SQuery::new(config).unwrap();
                    assert!(system.latest_snapshot().is_some());
                });
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, recovery_time);
criterion_main!(benches);
