//! Partition-parallel SQL execution: Query 1 (join + group-by over snapshot
//! state) and a full snapshot scan, swept over degrees of parallelism.
//!
//! The interesting comparison is `dop=1` (the sequential executor) vs
//! `dop=4` on the 100K-key population — the acceptance shape for the
//! parallel execution layer. On single-core hosts the dop>1 numbers mostly
//! measure coordination overhead; the result-equality assertion still holds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squery::{SQuery, SQueryConfig, StateConfig};
use squery_qcommerce::events::{order_info_event, order_status_event};
use squery_qcommerce::QUERY_1;
use std::time::Duration;

/// An S-QUERY system whose orderinfo/orderstate snapshot state is populated
/// for `orders` keys (written directly, no job, for bench setup speed).
fn populated_system(orders: u64) -> SQuery {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    populated_system_with(orders, config)
}

fn populated_system_with(orders: u64, config: SQueryConfig) -> SQuery {
    let system = SQuery::new(config).unwrap();
    let grid = system.grid();
    let info_store = grid.snapshot_store("orderinfo");
    let state_store = grid.snapshot_store("orderstate");
    info_store.set_value_schema(squery_qcommerce::events::order_info_schema());
    state_store.set_value_schema(squery_qcommerce::events::order_state_schema());
    let ssid = grid.registry().begin().unwrap();
    for pid in 0..grid.partitioner().partition_count() {
        info_store.write_partition(ssid, squery_common::PartitionId(pid), vec![], true);
        state_store.write_partition(ssid, squery_common::PartitionId(pid), vec![], true);
    }
    for o in 0..orders {
        let info = order_info_event(o);
        let status = order_status_event(o, 7);
        info_store.write_partition(
            ssid,
            info_store.partition_of(&info.key),
            vec![(info.key, Some(info.value))],
            true,
        );
        state_store.write_partition(
            ssid,
            state_store.partition_of(&status.key),
            vec![(status.key, Some(status.value))],
            true,
        );
    }
    grid.registry().commit(ssid).unwrap();
    system
}

fn query1_dop_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_parallel_query1_100k");
    group.sample_size(10);
    let system = populated_system(100_000);
    let baseline = system.query_with_dop(QUERY_1, 1).unwrap().sorted_rows();
    for dop in [1usize, 2, 4, 8] {
        let rows = system.query_with_dop(QUERY_1, dop).unwrap().sorted_rows();
        assert_eq!(rows, baseline, "dop {dop} must match sequential results");
        group.bench_with_input(BenchmarkId::from_parameter(dop), &dop, |b, &dop| {
            b.iter(|| system.query_with_dop(QUERY_1, dop).unwrap())
        });
    }
    group.finish();
}

fn snapshot_scan_dop_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_parallel_scan_aggregate_100k");
    group.sample_size(10);
    let system = populated_system(100_000);
    let sql = "SELECT deliveryZone, COUNT(*) FROM snapshot_orderinfo GROUP BY deliveryZone";
    for dop in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(dop), &dop, |b, &dop| {
            b.iter(|| system.query_with_dop(sql, dop).unwrap())
        });
    }
    group.finish();
}

/// The stats-subsystem overhead gate: Query 1 at DOP 4 with the background
/// sampler armed and sampling every 10 ms vs fully off. Write-path
/// accounting is always on; arming additionally routes every live write
/// through the recent-key ring. The acceptance shape is the armed number
/// within ~2% of the off number — compare the two criterion ids.
fn stats_sampler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_parallel_stats_overhead_100k");
    group.sample_size(10);
    let base = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    for (label, interval) in [
        ("sampler-off", None),
        ("sampler-on-10ms", Some(Duration::from_millis(10))),
    ] {
        let system = populated_system_with(100_000, base.clone().with_stats_interval(interval));
        // Live writes on the side so the armed run exercises the ring.
        let map = system.grid().map("orderinfo");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut i = 0u64;
            b.iter(|| {
                map.put(
                    squery_common::Value::Int((i % 1024) as i64),
                    squery_common::Value::Int(i as i64),
                );
                i += 1;
                system.query_with_dop(QUERY_1, 4).unwrap()
            })
        });
    }
    group.finish();
}

/// Columnar vs row engine at DOP 4 over Query 1 — the criterion twin of the
/// bench-gate smoke (`scripts/check.sh --only bench`). The assertion pins
/// the equivalence contract (identical sorted rows) before timing either
/// engine; the columnar id should run well ahead of the row id once the
/// snapshot executor cache is warm.
fn vectorized_vs_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_parallel_vectorized_vs_row_100k");
    group.sample_size(10);
    let system = populated_system(100_000);
    let row = system
        .query_with_opts(QUERY_1, 4, false)
        .unwrap()
        .sorted_rows();
    let columnar = system
        .query_with_opts(QUERY_1, 4, true)
        .unwrap()
        .sorted_rows();
    assert_eq!(columnar, row, "columnar results must match the row engine");
    for (label, vectorized) in [("row", false), ("columnar", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &vectorized, |b, &v| {
            b.iter(|| system.query_with_opts(QUERY_1, 4, v).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    query1_dop_sweep,
    snapshot_scan_dop_sweep,
    stats_sampler_overhead,
    vectorized_vs_row
);
criterion_main!(benches);
