//! Micro-benchmarks of the storage mechanisms behind Figures 8, 10, 12, 13:
//! live write-through cost, full vs incremental snapshot writes, direct vs
//! differential snapshot reads, and pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squery_common::{PartitionId, Partitioner, SnapshotId, Value};
use squery_storage::{Grid, SnapshotStore};
use std::collections::HashMap;

/// The live-state mirror write (the per-update cost of Figure 8's "live"
/// configurations) vs a plain HashMap insert baseline.
fn live_write_through(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_write_through");
    group.throughput(Throughput::Elements(1));

    let grid = Grid::single_node();
    let map = grid.map("op");
    let mut i = 0i64;
    group.bench_function("imap_put", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            map.put(Value::Int(i), Value::Int(i * 2));
        })
    });

    let mut plain: HashMap<Value, Value> = HashMap::new();
    let mut j = 0i64;
    group.bench_function("plain_hashmap_put_baseline", |b| {
        b.iter(|| {
            j = (j + 1) % 10_000;
            plain.insert(Value::Int(j), Value::Int(j * 2));
        })
    });

    let mut k = 0i64;
    group.bench_function("imap_get", |b| {
        b.iter(|| {
            k = (k + 1) % 10_000;
            map.get(&Value::Int(k))
        })
    });
    group.finish();
}

#[derive(Clone, Copy)]
enum StoreMode {
    /// Every version is a complete view.
    Full,
    /// First version full, later versions touch 10% of the keys.
    IncrementalSmallDelta,
    /// First version full, later versions re-touch every key (full churn) —
    /// the worst case for the differential backwards walk.
    IncrementalFullChurn,
}

fn filled_store(keys: u64, versions: u64, mode: StoreMode) -> SnapshotStore {
    let partitioner = Partitioner::new(271);
    let store = SnapshotStore::new("bench", partitioner);
    for v in 1..=versions {
        let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
        let full = matches!(mode, StoreMode::Full) || v == 1;
        let key_range: Box<dyn Iterator<Item = u64>> = match (mode, full) {
            (_, true) | (StoreMode::IncrementalFullChurn, _) => Box::new(0..keys),
            _ => Box::new((0..keys / 10).map(move |i| (i + v * 13) % keys)),
        };
        for key in key_range {
            let k = Value::Int(key as i64);
            by_pid
                .entry(partitioner.partition_of(&k).0)
                .or_default()
                .push((k, Some(Value::Int((key * v) as i64))));
        }
        for (pid, entries) in by_pid {
            store.write_partition(SnapshotId(v), PartitionId(pid), entries, full);
        }
    }
    store
}

/// Snapshot write cost by key count (the Figure 10 phase-1 mechanism).
fn snapshot_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_write");
    for keys in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(keys));
        let partitioner = Partitioner::new(271);
        let entries: Vec<(Value, Option<Value>)> = (0..keys)
            .map(|k| (Value::Int(k as i64), Some(Value::Int(k as i64))))
            .collect();
        let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
        for (k, v) in entries {
            by_pid
                .entry(partitioner.partition_of(&k).0)
                .or_default()
                .push((k, v));
        }
        group.bench_with_input(BenchmarkId::new("full_per_key", keys), &keys, |b, _| {
            let store = SnapshotStore::new("w", partitioner);
            let mut ssid = 0u64;
            b.iter(|| {
                ssid += 1;
                for (pid, entries) in &by_pid {
                    store.write_partition(
                        SnapshotId(ssid),
                        PartitionId(*pid),
                        entries.clone(),
                        true,
                    );
                }
            })
        });
    }
    group.finish();
}

/// Differential read cost: resolving the latest view from a full snapshot vs
/// from an incremental chain (the Figure 13 gap mechanism).
fn snapshot_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_scan");
    for keys in [1_000u64, 10_000] {
        for (label, mode) in [
            ("full", StoreMode::Full),
            ("incremental_10pct_chain6", StoreMode::IncrementalSmallDelta),
            ("incremental_churn_chain6", StoreMode::IncrementalFullChurn),
        ] {
            let store = filled_store(keys, 6, mode);
            group.bench_with_input(BenchmarkId::new(label, keys), &keys, |b, _| {
                b.iter(|| store.scan_at(SnapshotId(6)).unwrap().0.len())
            });
        }
    }
    group.finish();
}

/// Pruning: folding an incremental chain into a base (phase-2 work).
fn pruning(c: &mut Criterion) {
    c.bench_function("prune_fold_chain6_10k", |b| {
        b.iter_with_setup(
            || filled_store(10_000, 6, StoreMode::IncrementalSmallDelta),
            |store| store.prune_below(SnapshotId(5)),
        )
    });
}

criterion_group!(
    benches,
    live_write_through,
    snapshot_writes,
    snapshot_reads,
    pruning
);
criterion_main!(benches);
