//! Ablations of the design decisions DESIGN.md calls out:
//!
//! * **Co-partitioning** (paper §II/§V-A): S-QUERY schedules state and
//!   compute of the same partition together so every live-state update is a
//!   local write. The ablation charges each write the modelled cross-node
//!   network cost instead — what a design *without* the shared partitioner
//!   would pay ("instead of performing remote calls for each change …
//!   the change remains local").
//! * **Key-level lock striping** (§VII-B): per-access key locks as
//!   implemented vs one global map lock, under concurrent writers.
//! * **Incremental delta sweep**: snapshot write cost as a function of the
//!   delta ratio (the continuous version of Figure 12's three points).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squery_common::config::NetworkConfig;
use squery_common::{PartitionId, Partitioner, SnapshotId, Value};
use squery_storage::locks::LockStripes;
use squery_storage::{Grid, SnapshotStore};
use squery_tspoon::spin_for;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Local (co-partitioned) live-state writes vs writes that must cross the
/// modelled network on every update.
fn copartitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_copartition");
    group.throughput(Throughput::Elements(1));
    let grid = Grid::single_node();
    let map = grid.map("op");
    let value = Value::str("a-typical-state-object-payload");
    let network = NetworkConfig::lan();
    let wire_cost = network.transfer_delay(
        squery_common::codec::encoded_len(&Value::Int(0))
            + squery_common::codec::encoded_len(&value),
    );

    let mut i = 0i64;
    group.bench_function("co_partitioned_local_put", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            map.put(Value::Int(i), value.clone());
        })
    });
    let mut j = 0i64;
    group.bench_function("remote_put_per_update", |b| {
        b.iter(|| {
            j = (j + 1) % 10_000;
            // Without co-partitioning, the update crosses the network first.
            spin_for(wire_cost);
            map.put(Value::Int(j), value.clone());
        })
    });
    group.finish();
}

/// Striped key locks vs a single global lock, 4 concurrent writers.
fn lock_striping(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lock_striping");
    const OPS_PER_THREAD: u64 = 20_000;
    const THREADS: u64 = 4;
    group.throughput(Throughput::Elements(OPS_PER_THREAD * THREADS));
    for stripes in [1usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("concurrent_lock_unlock", stripes),
            &stripes,
            |b, &stripes| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let pool = Arc::new(LockStripes::with_stripes(stripes));
                        let start = Instant::now();
                        let handles: Vec<_> = (0..THREADS)
                            .map(|t| {
                                let pool = Arc::clone(&pool);
                                std::thread::spawn(move || {
                                    for k in 0..OPS_PER_THREAD {
                                        let key = Value::Int((t * OPS_PER_THREAD + k) as i64);
                                        let _g = pool.lock(&key);
                                    }
                                })
                            })
                            .collect();
                        for h in handles {
                            h.join().unwrap();
                        }
                        total += start.elapsed();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

/// Incremental snapshot write cost as the delta ratio grows.
fn delta_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_incremental_delta");
    const KEYS: u64 = 10_000;
    let partitioner = Partitioner::new(271);
    for delta_pct in [1u64, 5, 10, 25, 50, 100] {
        let dirty = KEYS * delta_pct / 100;
        group.throughput(Throughput::Elements(dirty.max(1)));
        // Pre-group the delta entries by partition, as the backend does.
        let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
        for k in 0..dirty {
            let key = Value::Int(k as i64);
            by_pid
                .entry(partitioner.partition_of(&key).0)
                .or_default()
                .push((key, Some(Value::Int(k as i64))));
        }
        group.bench_with_input(
            BenchmarkId::new("delta_write_pct", delta_pct),
            &delta_pct,
            |b, _| {
                let store = SnapshotStore::new("sweep", partitioner);
                let mut ssid = 0u64;
                b.iter(|| {
                    ssid += 1;
                    for (pid, entries) in &by_pid {
                        store.write_partition(
                            SnapshotId(ssid),
                            PartitionId(*pid),
                            entries.clone(),
                            false,
                        );
                    }
                    // Keep the chain bounded like the runtime does.
                    if ssid.is_multiple_of(4) {
                        store.prune_below(SnapshotId(ssid - 1));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, copartitioning, lock_striping, delta_sweep);
criterion_main!(benches);
