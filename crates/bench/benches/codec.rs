//! Codec micro-benchmarks: the serialization cost underlying blob snapshots
//! (the Jet baseline) and replication traffic sizing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use squery_common::codec;
use squery_common::schema::schema;
use squery_common::{DataType, Value};

fn rider_value() -> Value {
    let s = schema(vec![
        ("lat", DataType::Float),
        ("lon", DataType::Float),
        ("updated", DataType::Timestamp),
    ]);
    Value::record(
        &s,
        vec![
            Value::Float(52.0123),
            Value::Float(4.3456),
            Value::Timestamp(1_650_000_000_000_000),
        ],
    )
}

fn codec_benches(c: &mut Criterion) {
    let v = rider_value();
    let encoded = codec::encode(&v);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_rider_struct", |b| b.iter(|| codec::encode(&v)));
    group.bench_function("decode_rider_struct", |b| {
        b.iter(|| codec::decode(&encoded).unwrap())
    });
    group.bench_function("encoded_len_rider_struct", |b| {
        b.iter(|| codec::encoded_len(&v))
    });
    group.finish();

    // A 1 000-entry blob, the unit of the Jet baseline's snapshot write.
    let entries: Vec<Value> = (0..1_000).map(|_| rider_value()).collect();
    let blob = Value::list(entries);
    let blob_encoded = codec::encode(&blob);
    let mut group = c.benchmark_group("codec_blob_1000");
    group.throughput(Throughput::Bytes(blob_encoded.len() as u64));
    group.bench_function("encode", |b| b.iter(|| codec::encode(&blob)));
    group.bench_function("decode", |b| {
        b.iter(|| codec::decode(&blob_encoded).unwrap())
    });
    group.finish();
}

criterion_group!(benches, codec_benches);
criterion_main!(benches);
