//! The Figure 14 mechanism at the operation level: one direct-object query
//! through S-QUERY's store-read path vs the TSpoon model's read-only
//! transaction path, by keys selected.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squery::{SQuery, SQueryConfig, StateConfig, StateView};
use squery_bench::util::rider_state_entries;
use squery_common::{Partitioner, Value};
use squery_tspoon::{TspoonCluster, TspoonConfig};

const TOTAL_KEYS: u64 = 20_000;

fn squery_side() -> SQuery {
    let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
    let system = SQuery::new(config).unwrap();
    let map = system.grid().map("riderlocation");
    for (k, v) in rider_state_entries(TOTAL_KEYS) {
        map.put(k, v);
    }
    system
}

fn tspoon_side() -> TspoonCluster {
    let cluster = TspoonCluster::start(
        TspoonConfig {
            instances: 3,
            txn_overhead_us: 10,
            per_key_read_ns: 0,
        },
        Partitioner::new(271),
    );
    cluster.ingest_bulk(rider_state_entries(TOTAL_KEYS));
    // Flush mailboxes before measuring.
    let _ = cluster.query(&[Value::Int(0)]);
    cluster
}

fn direct_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_object_query");
    let system = squery_side();
    let tspoon = tspoon_side();
    for sel in [1usize, 10, 100, 1000] {
        let keys: Vec<Value> = (0..sel as i64).map(Value::Int).collect();
        group.bench_with_input(BenchmarkId::new("squery_live", sel), &sel, |b, _| {
            b.iter(|| {
                system
                    .direct()
                    .get_many("riderlocation", &keys, StateView::Live)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("tspoon_txn", sel), &sel, |b, _| {
            b.iter(|| tspoon.query(&keys).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, direct_queries);
criterion_main!(benches);
