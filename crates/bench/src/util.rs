//! Shared experiment machinery: load runners, measurement loops, fits.

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::metrics::Histogram;
use squery_common::Value;
use squery_nexmark::{q6_job, NexmarkConfig};
use squery_qcommerce::{order_monitoring_job, QCommerceConfig};
use squery_streaming::JobHandle;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Build an [`SQuery`] system for a latency/throughput run.
pub fn system_for(state: StateConfig, interval: Option<Duration>) -> SQuery {
    let config = SQueryConfig {
        checkpoint_interval: interval,
        ..SQueryConfig::default().with_state(state)
    };
    SQuery::new(config).expect("valid experiment config")
}

/// Submit NEXMark q6 with a total offered rate (split across its two
/// sources), or unpaced when `rate_total` is `None`.
pub fn submit_q6(
    system: &SQuery,
    sellers: u64,
    rate_total: Option<f64>,
    parallelism: u32,
) -> JobHandle {
    let cfg = NexmarkConfig {
        sellers,
        active_auctions: sellers * 2,
        events_per_instance: 0,
        rate_per_instance: rate_total.map(|r| (r / 2.0).max(1.0)),
    };
    system
        .submit(q6_job(cfg, 1, parallelism))
        .expect("q6 submits")
}

/// Run q6 under offered load and return the post-warmup latency histogram
/// plus the achieved source throughput (events/s) over the measure window.
pub fn q6_latency_run(
    state: StateConfig,
    interval: Option<Duration>,
    sellers: u64,
    rate_total: Option<f64>,
    parallelism: u32,
    warmup: Duration,
    measure: Duration,
) -> (Histogram, f64) {
    let system = system_for(state, interval);
    let mut job = submit_q6(&system, sellers, rate_total, parallelism);
    std::thread::sleep(warmup);
    job.reset_latency();
    let source_before = job.source_count();
    let t0 = Instant::now();
    std::thread::sleep(measure);
    let hist = job.latency();
    let throughput = (job.source_count() - source_before) as f64 / t0.elapsed().as_secs_f64();
    job.stop();
    (hist, throughput)
}

/// Measure q6's maximum sustainable throughput in *source events/s*: run
/// unpaced and count what the sources push through the backpressured DAG.
pub fn q6_max_throughput(
    state: StateConfig,
    interval: Option<Duration>,
    sellers: u64,
    parallelism: u32,
    warmup: Duration,
    measure: Duration,
) -> f64 {
    let system = system_for(state, interval);
    let job = submit_q6(&system, sellers, None, parallelism);
    std::thread::sleep(warmup);
    let before = job.source_count();
    let t0 = Instant::now();
    std::thread::sleep(measure);
    let rate = (job.source_count() - before) as f64 / t0.elapsed().as_secs_f64();
    job.stop();
    rate
}

/// Binary-search the highest offered rate q6 sustains with a stable backlog
/// (achieved ≥ 90 % of offered and p99 source→sink latency under 100 ms).
///
/// The raw unpaced maximum overstates sustainable capacity (full queues never
/// park threads; paced production does), so offered-load experiments must
/// calibrate against this instead.
pub fn q6_sustainable_rate(
    state: StateConfig,
    interval: Option<Duration>,
    sellers: u64,
    parallelism: u32,
    probe_warmup: Duration,
    probe_measure: Duration,
) -> f64 {
    let mut hi = q6_max_throughput(
        state,
        interval,
        sellers,
        parallelism,
        probe_warmup,
        probe_measure,
    );
    let mut lo = hi * 0.05;
    for _ in 0..5 {
        let mid = (lo + hi) / 2.0;
        let (hist, achieved) = q6_latency_run(
            state,
            interval,
            sellers,
            Some(mid),
            parallelism,
            probe_warmup,
            probe_measure,
        );
        // Strict stability: production keeps up with the schedule, the body
        // of the distribution stays in single-digit ms, and the tail is
        // bounded — a short probe window understates backlog growth, so
        // anything marginal must count as unstable.
        let stable = achieved >= mid * 0.95
            && hist.percentile(0.5) < 5_000
            && hist.percentile(0.99) < 50_000;
        if stable {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Safety margin: capacity drifts as operator state grows.
    lo * 0.9
}

/// Run a small fully-instrumented q6 workload (drain + checkpoint + a SQL
/// query over the sys tables) and return the engine telemetry as
/// `(json, prometheus)` dumps — the raw observability artifact behind the
/// `--telemetry-json` flag of `paper-figures`.
pub fn telemetry_dump() -> (String, String) {
    let system = system_for(StateConfig::live_and_snapshot(), None);
    let cfg = NexmarkConfig {
        sellers: 100,
        active_auctions: 200,
        events_per_instance: 10_000,
        rate_per_instance: None,
    };
    let mut job = system.submit(q6_job(cfg, 1, 2)).expect("q6 submits");
    job.drain_and_checkpoint(Duration::from_secs(60))
        .expect("q6 drains");
    // Exercise the query path so query metrics/events appear in the dump.
    system
        .query("SELECT COUNT(*) AS n FROM sys_operators")
        .expect("sys query runs");
    job.stop();
    let registry = system.telemetry();
    (registry.render_json(), registry.render_prometheus())
}

/// Run a small fully-traced fig13-style workload — fill the q-commerce
/// monitoring state, drive one checkpoint round (phase-1/phase-2 spans nest
/// under the round root), then run Query 1 at `dop` — and return the span
/// log rendered as Chrome trace-event JSON (loadable in `chrome://tracing`
/// or Perfetto). The artifact behind the `--trace-json` flag of
/// `paper-figures`.
pub fn trace_dump(dop: usize) -> String {
    use squery_common::trace::render_chrome_trace;
    let config = SQueryConfig::default()
        .with_state(StateConfig::live_and_snapshot())
        .with_tracing(true);
    let system = SQuery::new(config).expect("valid trace config");
    let cfg = QCommerceConfig {
        orders: 200,
        riders: 40,
        events_per_instance: 2_000,
        rate_per_instance: None,
        prefill_passes: 0,
    };
    let mut job = system
        .submit(order_monitoring_job(cfg, 1, 2))
        .expect("monitoring submits");
    job.drain_and_checkpoint(Duration::from_secs(120))
        .expect("traced checkpoint round");
    system
        .query_with_dop(squery_qcommerce::QUERY_1, dop)
        .expect("query 1 runs");
    job.stop();
    render_chrome_trace(&system.telemetry().spans().snapshot())
}

/// Submit the q-commerce monitoring job with `orders` unique keys at a total
/// offered rate (split across its three sources; `None` = unpaced).
pub fn submit_monitoring(
    system: &SQuery,
    orders: u64,
    rate_total: Option<f64>,
    parallelism: u32,
) -> JobHandle {
    let cfg = QCommerceConfig {
        orders,
        riders: (orders / 5).max(10),
        events_per_instance: 0,
        rate_per_instance: rate_total.map(|r| (r / 3.0).max(1.0)),
        prefill_passes: 1,
    };
    system
        .submit(order_monitoring_job(cfg, 1, parallelism))
        .expect("monitoring submits")
}

/// Wait until every order key exists in the orderstate live/snapshot path:
/// approximate by waiting for the source to produce a full pass.
pub fn wait_for_fill(job: &JobHandle, events: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while job.source_count() < events {
        assert!(Instant::now() < deadline, "fill timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drive `n` manual checkpoints with `gap` of processing between them and
/// return (phase-1, total) 2PC latency histograms in µs.
pub fn checkpoint_distribution(job: &JobHandle, n: usize, gap: Duration) -> (Histogram, Histogram) {
    let before = job.checkpoint_stats().records().len();
    for _ in 0..n {
        std::thread::sleep(gap);
        let _ = job.checkpoint_now();
    }
    let mut phase1 = Histogram::new();
    let mut total = Histogram::new();
    for rec in job.checkpoint_stats().records().iter().skip(before) {
        phase1.record(rec.phase1_us);
        total.record(rec.total_us);
    }
    (phase1, total)
}

/// Spawn `threads` query clients running `make_query()` in a loop until the
/// returned stopper is invoked; returns (queries/s, per-query latency µs).
pub struct QueryLoad {
    stop: Arc<AtomicBool>,
    count: Arc<AtomicU64>,
    handles: Vec<std::thread::JoinHandle<Histogram>>,
    started: Instant,
}

impl QueryLoad {
    /// Start the load.
    pub fn start<F>(threads: usize, run_query: F) -> QueryLoad
    where
        F: Fn() + Send + Sync + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let count = Arc::new(AtomicU64::new(0));
        let run_query = Arc::new(run_query);
        let handles = (0..threads)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let count = Arc::clone(&count);
                let run_query = Arc::clone(&run_query);
                std::thread::spawn(move || {
                    let mut hist = Histogram::new();
                    while !stop.load(Ordering::Acquire) {
                        let t0 = Instant::now();
                        run_query();
                        hist.record(t0.elapsed().as_micros() as u64);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                    hist
                })
            })
            .collect();
        QueryLoad {
            stop,
            count,
            handles,
            started: Instant::now(),
        }
    }

    /// Stop and report `(queries_per_sec, latency_histogram)`.
    pub fn finish(self) -> (f64, Histogram) {
        let elapsed = self.started.elapsed().as_secs_f64();
        self.stop.store(true, Ordering::Release);
        let mut hist = Histogram::new();
        for h in self.handles {
            // A client thread that panicked contributes no samples; the run
            // still reports whatever the surviving clients measured.
            match h.join() {
                Ok(client_hist) => hist.merge(&client_hist),
                Err(_) => eprintln!("warning: query client thread panicked; samples dropped"),
            }
        }
        let qps = self.count.load(Ordering::Relaxed) as f64 / elapsed;
        (qps, hist)
    }
}

/// A paper-style percentile row where each reported percentile is the
/// *median across repeated runs* — robust against the multi-ms scheduler
/// stalls a single-vCPU host injects into any one run's tail.
pub fn median_report_row(label: &str, runs: &[Histogram]) -> String {
    fn median(mut xs: Vec<u64>) -> u64 {
        xs.sort_unstable();
        xs[xs.len() / 2]
    }
    let ms = |us: u64| us as f64 / 1000.0;
    let count: u64 = runs.iter().map(Histogram::count).sum();
    format!(
        "{label:<24} n={count:<9} 0%={:<8.2} 50%={:<8.2} 90%={:<8.2} 99%={:<8.2} 99.9%={:<8.2} 99.99%={:<8.2} max={:.2} (ms, median of {} runs)",
        ms(median(runs.iter().map(Histogram::min).collect())),
        ms(median(runs.iter().map(|h| h.percentile(0.50)).collect())),
        ms(median(runs.iter().map(|h| h.percentile(0.90)).collect())),
        ms(median(runs.iter().map(|h| h.percentile(0.99)).collect())),
        ms(median(runs.iter().map(|h| h.percentile(0.999)).collect())),
        ms(median(runs.iter().map(|h| h.percentile(0.9999)).collect())),
        ms(median(runs.iter().map(Histogram::max).collect())),
        runs.len(),
    )
}

/// Least-squares power-law fit `y = a·x^b` via log-log regression; returns
/// `(a, b, r_squared)` — the paper reports the R² of exactly this fit for
/// Figure 14.
pub fn power_law_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "fit needs at least two points");
    let logs: Vec<(f64, f64)> = points.iter().map(|(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let ln_a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = logs.iter().map(|(x, y)| (y - (ln_a + b * x)).powi(2)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (ln_a.exp(), b, r2)
}

/// Least-squares linear fit `y = a + b·x`; returns `(a, b, r_squared)` —
/// the paper reports R² > 0.96 linear trends for Figure 15.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "fit needs at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|(x, y)| (y - (a + b * x)).powi(2)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, r2)
}

/// Preload a rider-location style state (two doubles + a timestamp, the
/// Figure 14 state) of `keys` entries directly into a grid map/snapshot
/// store and a TSpoon cluster.
pub fn rider_state_entries(keys: u64) -> Vec<(Value, Value)> {
    let schema = squery_qcommerce::events::rider_location_schema();
    (0..keys)
        .map(|k| {
            (
                Value::Int(k as i64),
                Value::record(
                    &schema,
                    vec![
                        Value::Float(52.0 + k as f64 / 1e6),
                        Value::Float(4.3 + k as f64 / 1e6),
                        Value::Timestamp(k as i64),
                    ],
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_fit_recovers_parameters() {
        let points: Vec<(f64, f64)> = [1.0f64, 10.0, 100.0, 1000.0]
            .iter()
            .map(|&x| (x, 50_000.0 * x.powf(-0.9)))
            .collect();
        let (a, b, r2) = power_law_fit(&points);
        assert!((a - 50_000.0).abs() / 50_000.0 < 1e-6);
        assert!((b - (-0.9)).abs() < 1e-9);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn linear_fit_recovers_parameters() {
        let points = vec![(36.0, 8.6), (60.0, 12.0), (84.0, 19.0)];
        let (_a, b, r2) = linear_fit(&points);
        assert!(b > 0.0, "positive slope");
        assert!(r2 > 0.9, "roughly linear: {r2}");
    }

    #[test]
    fn rider_entries_have_figure14_shape() {
        let entries = rider_state_entries(10);
        assert_eq!(entries.len(), 10);
        let sv = entries[3].1.as_struct().unwrap();
        assert!(sv.field("lat").unwrap().as_f64().is_some());
        assert!(sv.field("lon").unwrap().as_f64().is_some());
        assert!(sv.field("updated").unwrap().as_timestamp().is_some());
    }

    #[test]
    fn query_load_counts_queries() {
        let load = QueryLoad::start(2, || {
            std::thread::sleep(Duration::from_micros(100));
        });
        std::thread::sleep(Duration::from_millis(50));
        let (qps, hist) = load.finish();
        assert!(qps > 100.0, "qps={qps}");
        assert!(hist.count() > 10);
    }
}
