//! One driver per table/figure of the paper's evaluation (§IX).
//!
//! Every function returns a [`FigureResult`] whose lines are the same
//! rows/series the paper reports (see EXPERIMENTS.md for the side-by-side
//! with the paper's numbers). All experiments run at the requested
//! [`Scale`]; `Scale::quick()` is used by tests to validate shapes cheaply.

use crate::scale::Scale;
use crate::util::{
    self, checkpoint_distribution, linear_fit, power_law_fit, q6_latency_run, rider_state_entries,
    submit_monitoring, system_for, QueryLoad,
};
use squery::{SQuery, SQueryConfig, StateConfig, StateView};
use squery_common::metrics::Histogram;
use squery_common::{Partitioner, Value};
use squery_qcommerce::QUERY_1;
use squery_tspoon::{spin_for, TspoonCluster, TspoonConfig};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A regenerated table/figure: an id, a title, and printable rows.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Paper artifact id, e.g. `"fig8"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The rows/series.
    pub lines: Vec<String>,
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

fn ms_row(label: &str, hist: &Histogram) -> String {
    hist.report().as_ms_row(label)
}

/// A stable fingerprint of a sorted result set, printed in fig13's
/// `result-check` lines so CI can diff runs at different `--dop` values.
fn rows_fingerprint(rows: &[Vec<Value>]) -> u64 {
    use std::hash::Hasher;
    let mut h = squery_common::partition::FnvHasher::default();
    for row in rows {
        for v in row {
            h.write(v.to_string().as_bytes());
            h.write_u8(0x1f);
        }
        h.write_u8(0x1e);
    }
    h.finish()
}

/// Table III: the paper's hardware vs this reproduction's substitution.
pub fn table3(_scale: Scale) -> FigureResult {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    FigureResult {
        id: "table3",
        title: "Node properties (paper: AWS c5.4xlarge ×7; here: simulated in-process cluster)",
        lines: vec![
            "paper    : 7 nodes × c5.4xlarge (16 vCPU, 32 GB, 10 Gbit/s), OpenJDK 15".to_string(),
            format!(
                "this run : 1 process, {cpus} host vCPU(s); nodes are placement domains over a \
                 271-partition grid; cross-node traffic modelled at 50µs + 10 Gbit/s"
            ),
            "substitution: absolute numbers are not comparable; shapes and ratios are".to_string(),
        ],
    }
}

/// Figure 8: source→sink latency distribution of the four state
/// configurations on NEXMark q6 at a fixed offered load.
pub fn fig8(scale: Scale) -> FigureResult {
    // Offered load: 40% of the calibrated sustainable maximum (the raw
    // unpaced rate is not sustainable under paced production).
    let max = util::q6_sustainable_rate(
        StateConfig::jet_baseline(),
        Some(scale.checkpoint_interval()),
        scale.sellers(),
        2,
        scale.warmup(),
        scale.measure_duration() / 2,
    );
    let rate = (max * 0.4).max(500.0);
    let configs = [
        ("S-Query live+snap", StateConfig::live_and_snapshot()),
        ("S-Query live", StateConfig::live_only()),
        ("S-Query snap", StateConfig::snapshot_only()),
        ("Jet", StateConfig::jet_baseline()),
    ];
    let reps = if scale.full { 3 } else { 1 };
    let mut lines = vec![format!(
        "workload: NEXMark q6, {} sellers, offered {:.0} events/s (40% of sustainable max {:.0}/s), checkpoint {:?}",
        scale.sellers(),
        rate,
        max,
        scale.checkpoint_interval()
    )];
    for (label, state) in configs {
        let runs: Vec<Histogram> = (0..reps)
            .map(|_| {
                q6_latency_run(
                    state,
                    Some(scale.checkpoint_interval()),
                    scale.sellers(),
                    Some(rate),
                    2,
                    scale.warmup(),
                    scale.measure_duration() / 2,
                )
                .0
            })
            .collect();
        lines.push(util::median_report_row(label, &runs));
    }
    FigureResult {
        id: "fig8",
        title: "Latency distribution of S-QUERY state configurations vs Jet (NEXMark q6)",
        lines,
    }
}

/// Figure 9: S-Query snapshot configuration vs Jet at three offered loads
/// (the paper's 1M/5M/9M events/s become fractions of the measured max).
pub fn fig9(scale: Scale) -> FigureResult {
    let max = util::q6_sustainable_rate(
        StateConfig::jet_baseline(),
        Some(scale.checkpoint_interval()),
        scale.sellers(),
        2,
        scale.warmup(),
        scale.measure_duration() / 2,
    );
    let mut lines = vec![format!(
        "workload: NEXMark q6; offered loads are fractions of sustainable max {max:.0} ev/s \
         (stand-ins for the paper's 1M/5M/9M on AWS)"
    )];
    let reps = if scale.full { 3 } else { 1 };
    for frac in scale.load_fractions() {
        let rate = (max * frac).max(500.0);
        for (label, state) in [
            ("S-Query", StateConfig::snapshot_only()),
            ("Jet", StateConfig::jet_baseline()),
        ] {
            let runs: Vec<Histogram> = (0..reps)
                .map(|_| {
                    q6_latency_run(
                        state,
                        Some(scale.checkpoint_interval()),
                        scale.sellers(),
                        Some(rate),
                        2,
                        scale.warmup(),
                        scale.measure_duration() / 2,
                    )
                    .0
                })
                .collect();
            lines.push(util::median_report_row(
                &format!("{label} {:.0}% load", frac * 100.0),
                &runs,
            ));
        }
    }
    FigureResult {
        id: "fig9",
        title: "Latency distribution of S-QUERY vs Jet at increasing offered load",
        lines,
    }
}

fn fill_monitoring(system: &SQuery, orders: u64, rate: f64) -> squery::JobHandle {
    let job = submit_monitoring(system, orders, Some(rate), 2);
    // One full pass per source is prefilled at full speed.
    let fill_events = orders + orders * 8 + (orders / 5).max(10);
    util::wait_for_fill(&job, fill_events, Duration::from_secs(120));
    job
}

/// Figure 10: snapshot 2PC latency distribution, S-Query vs Jet, for
/// 1K/10K/100K unique keys.
pub fn fig10(scale: Scale) -> FigureResult {
    let rate = if scale.full { 9_000.0 } else { 3_000.0 };
    let mut lines = vec![format!(
        "workload: q-commerce monitoring at {rate:.0} ev/s, manual checkpoints every {:?}, {} checkpoints per config",
        scale.checkpoint_interval(),
        scale.checkpoints_per_config()
    )];
    for keys in scale.key_counts() {
        for (label, state) in [
            ("S-Query", StateConfig::snapshot_only()),
            ("Jet", StateConfig::jet_baseline()),
        ] {
            let system = system_for(state, None);
            let job = fill_monitoring(&system, keys, rate);
            let _ = job.checkpoint_now(); // absorb the fill
            let (_p1, total) = checkpoint_distribution(
                &job,
                scale.checkpoints_per_config(),
                scale.checkpoint_interval(),
            );
            lines.push(ms_row(&format!("{label} {keys} keys"), &total));
            job.stop();
        }
    }
    FigureResult {
        id: "fig10",
        title: "Snapshot 2PC latency distribution, S-QUERY vs Jet, by unique keys",
        lines,
    }
}

/// Figure 11: snapshot 2PC latency with vs without concurrent Query 1 load
/// (two full-speed query threads, as in the paper).
pub fn fig11(scale: Scale) -> FigureResult {
    let rate = if scale.full { 9_000.0 } else { 3_000.0 };
    let mut lines = vec![format!(
        "workload: as fig10 (S-Query config), plus 2 threads running Query 1 at full speed"
    )];
    for keys in scale.key_counts() {
        for queries in [false, true] {
            let system = Arc::new(system_for(StateConfig::snapshot_only(), None));
            let job = fill_monitoring(&system, keys, rate);
            let _ = job.checkpoint_now();
            let load = queries.then(|| {
                let system = Arc::clone(&system);
                QueryLoad::start(2, move || {
                    let _ = system.query(QUERY_1);
                })
            });
            let (_p1, total) = checkpoint_distribution(
                &job,
                scale.checkpoints_per_config(),
                scale.checkpoint_interval(),
            );
            if let Some(l) = load {
                let _ = l.finish();
            }
            let label = if queries { "Query" } else { "No Query" };
            lines.push(ms_row(&format!("{label} {keys} keys"), &total));
            job.stop();
        }
    }
    FigureResult {
        id: "fig11",
        title: "Snapshot 2PC latency with and without concurrent queries",
        lines,
    }
}

/// Figure 12: incremental vs full snapshot 2PC latency at 1%/10%/100% delta
/// ratios (share of keys touched between checkpoints).
pub fn fig12(scale: Scale) -> FigureResult {
    let keys = *scale.key_counts().last().expect("key counts nonempty");
    let mut lines = vec![format!(
        "workload: synthetic last-value state of {keys} keys; source touches delta%·keys between checkpoints"
    )];
    let mut run = |label: String, state: StateConfig, delta: f64| {
        let config = SQueryConfig::default().with_state(state);
        let system = SQuery::new(config).expect("config");
        let delta_keys = ((keys as f64 * delta) as u64).max(1);
        // Source: one full pass (prefilled), then cycle over the delta set.
        let spec = delta_job_spec(
            keys,
            delta_keys,
            if scale.full { 20_000.0 } else { 5_000.0 },
        );
        let job = system.submit(spec).expect("submit");
        util::wait_for_fill(&job, keys, Duration::from_secs(120));
        let _ = job.checkpoint_now(); // base
        let (_p1, total) = checkpoint_distribution(
            &job,
            scale.checkpoints_per_config(),
            scale.checkpoint_interval(),
        );
        lines.push(ms_row(&label, &total));
        job.stop();
    };
    for delta in [0.01, 0.10, 1.00] {
        run(
            format!("{:.0}% delta", delta * 100.0),
            StateConfig::snapshot_incremental(),
            delta,
        );
    }
    run(
        "Full snapshot".to_string(),
        StateConfig::snapshot_only(),
        1.0,
    );
    FigureResult {
        id: "fig12",
        title: "Snapshot 2PC latency, incremental (by delta ratio) vs full",
        lines,
    }
}

/// The synthetic delta-controlled job used by fig12.
fn delta_job_spec(keys: u64, delta_keys: u64, rate: f64) -> squery::JobSpec {
    use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
    use squery_streaming::dag::{SourceFactory, Stateful};
    use squery_streaming::source::{GeneratorSource, Source};
    use squery_streaming::{EdgeKind, JobSpec, Record};

    struct DeltaSource {
        keys: u64,
        delta_keys: u64,
        rate: f64,
    }
    impl SourceFactory for DeltaSource {
        fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
            let (keys, delta_keys) = (self.keys, self.delta_keys);
            Box::new(
                GeneratorSource::new(0, move |i| {
                    let key = if i < keys { i } else { (i - keys) % delta_keys };
                    Some(Record::new(key as i64, i as i64))
                })
                .with_rate(self.rate)
                .with_prefill(keys),
            )
        }
    }
    let last_value = Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record,
             state: &mut dyn squery_streaming::state::KeyedState,
             out: &mut Vec<Record>| {
                state.put(r.key.clone(), r.value.clone());
                out.push(r);
            },
        )) as Box<dyn Stateful>
    }));
    let mut b = JobSpec::builder("delta-workload");
    let src = b.source(
        "delta_src",
        1,
        Arc::new(DeltaSource {
            keys,
            delta_keys,
            rate,
        }),
    );
    let op = b.stateful("deltastate", 2, last_value);
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    b.build().expect("delta spec valid")
}

/// Figure 13: SQL query (Query 1) latency over incremental vs full
/// snapshots at 1K/10K/100K keys; also reports snapshot-id resolution time.
///
/// With `scale.dop > 1` each configuration is additionally timed at that
/// degree of parallelism, the parallel result is asserted row-for-row equal
/// to the sequential one, and a deterministic `result-check` line (keyed on
/// the *sequential* result only) is emitted so CI can diff two runs at
/// different `--dop` values.
pub fn fig13(scale: Scale) -> FigureResult {
    let mut lines = vec![format!(
        "workload: q-commerce monitoring, one full key-space churn between checkpoints, \
         retention 6 (chains accumulate); {} timed executions of Query 1 per config, \
         measured after sources quiesce",
        scale.queries_per_config()
    )];
    let mut dops = vec![1usize];
    if scale.dop > 1 {
        dops.push(scale.dop);
    }
    // 7 passes of every source over its key space; checkpoint at each pass
    // boundary so each incremental delta is a full churn — the regime where
    // the differential backwards walk has real work to do.
    const PASSES: u64 = 7;
    for keys in scale.key_counts() {
        for (label, state) in [
            ("Full", StateConfig::snapshot_only()),
            ("Incremental", StateConfig::snapshot_incremental()),
        ] {
            let config = SQueryConfig::default().with_retention(6).with_state(state);
            let system = SQuery::new(config).expect("config");
            let cfg = squery_qcommerce::QCommerceConfig {
                orders: keys,
                riders: (keys / 5).max(10),
                events_per_instance: keys * 8 * PASSES,
                rate_per_instance: None,
                prefill_passes: 0,
            };
            let mut job = system
                .submit(squery_qcommerce::order_monitoring_job(cfg, 1, 2))
                .expect("submit");
            let total_events = 3 * keys * 8 * PASSES;
            for pass in 1..=6u64 {
                util::wait_for_fill(&job, total_events * pass / PASSES, Duration::from_secs(300));
                let _ = job.checkpoint_now();
            }
            // Quiesce: finish the input, take the final barrier checkpoint,
            // then measure pure query latency without processing contention.
            job.drain_and_checkpoint(Duration::from_secs(300))
                .expect("drain");
            let baseline = system.query(QUERY_1).expect("query 1 runs").sorted_rows();
            lines.push(format!(
                "result-check {label} {keys} keys rows={} fnv={:016x}",
                baseline.len(),
                rows_fingerprint(&baseline)
            ));
            for &dop in &dops {
                if dop > 1 {
                    let parallel = system
                        .query_with_dop(QUERY_1, dop)
                        .expect("query 1 runs in parallel")
                        .sorted_rows();
                    assert_eq!(
                        parallel, baseline,
                        "dop {dop} result diverges from sequential ({label} {keys} keys)"
                    );
                }
                let mut hist = Histogram::new();
                let mut ssid_hist = Histogram::new();
                for _ in 0..scale.queries_per_config() {
                    let t0 = Instant::now();
                    let _ = system.latest_snapshot();
                    ssid_hist.record(t0.elapsed().as_micros() as u64);
                    let t1 = Instant::now();
                    system.query_with_dop(QUERY_1, dop).expect("query 1 runs");
                    hist.record(t1.elapsed().as_micros() as u64);
                }
                let row_label = if dop == 1 {
                    format!("{label} {keys} keys")
                } else {
                    format!("{label} {keys} keys dop={dop}")
                };
                lines.push(format!(
                    "{} [ssid lookup p50={}µs]",
                    ms_row(&row_label, &hist),
                    ssid_hist.percentile(0.5)
                ));
            }
            job.stop();
        }
    }
    FigureResult {
        id: "fig13",
        title: "SQL query latency, incremental vs full snapshots, by unique keys",
        lines,
    }
}

/// Constants of the Figure 14 client model (documented in EXPERIMENTS.md):
/// both systems pay the same simulated client/RPC overhead; TSpoon
/// additionally pays its transactional fixed cost and mailbox serialization.
pub const FIG14_CLIENT_OVERHEAD_US: u64 = 10;
const FIG14_TSPOON: TspoonConfig = TspoonConfig {
    instances: 3,
    txn_overhead_us: 10,
    per_key_read_ns: 0,
};

/// Figure 14: direct-object query throughput vs number of keys selected,
/// S-QUERY vs the TSpoon model.
pub fn fig14(scale: Scale) -> FigureResult {
    let total_keys = *scale.key_counts().last().expect("key counts") as i64;
    // One client thread: with more clients than cores, reply round-trips
    // thrash the scheduler and penalize the mailbox-based baseline for
    // reasons unrelated to its design.
    let threads = 1;
    let selections: Vec<usize> = if scale.full {
        vec![1, 10, 100, 1000]
    } else {
        vec![1, 10, 100]
    };

    // S-QUERY side: rider state preloaded into the grid's live map.
    let system = Arc::new(system_for(StateConfig::live_and_snapshot(), None));
    let rider_map = system.grid().map("riderlocation");
    for (k, v) in rider_state_entries(total_keys as u64) {
        rider_map.put(k, v);
    }
    // TSpoon side: same state ingested through the operator mailboxes.
    let tspoon = Arc::new(TspoonCluster::start(FIG14_TSPOON, Partitioner::new(271)));
    tspoon.ingest_bulk(rider_state_entries(total_keys as u64));
    // Ensure ingestion finished before measuring (queries serialize behind
    // events, so one query per instance flushes the mailboxes).
    let all_instance_keys: Vec<Value> = (0..total_keys).take(64).map(Value::Int).collect();
    let _ = tspoon.query(&all_instance_keys);

    let mut lines = vec![format!(
        "state: {total_keys} rider keys (lat, lon, updated); {threads} client threads; \
         client/RPC overhead {FIG14_CLIENT_OVERHEAD_US}µs both systems; \
         TSpoon txn overhead {}µs",
        FIG14_TSPOON.txn_overhead_us
    )];
    let mut squery_points = Vec::new();
    let mut tspoon_points = Vec::new();
    for &sel in &selections {
        let cursor = Arc::new(AtomicU64::new(0));
        // S-QUERY: direct multi-key reads of the live map.
        let sq = {
            let system = Arc::clone(&system);
            let cursor = Arc::clone(&cursor);
            QueryLoad::start(threads, move || {
                let base = cursor.fetch_add(sel as u64, Ordering::Relaxed) as i64;
                let keys: Vec<Value> = (0..sel as i64)
                    .map(|j| Value::Int((base + j).rem_euclid(total_keys)))
                    .collect();
                spin_for(Duration::from_micros(FIG14_CLIENT_OVERHEAD_US));
                let _ = system
                    .direct()
                    .get_many("riderlocation", &keys, StateView::Live);
            })
        };
        std::thread::sleep(scale.direct_query_duration());
        let (squery_qps, _) = sq.finish();

        let cursor = Arc::new(AtomicU64::new(0));
        let ts = {
            let tspoon = Arc::clone(&tspoon);
            let cursor = Arc::clone(&cursor);
            QueryLoad::start(threads, move || {
                let base = cursor.fetch_add(sel as u64, Ordering::Relaxed) as i64;
                let keys: Vec<Value> = (0..sel as i64)
                    .map(|j| Value::Int((base + j).rem_euclid(total_keys)))
                    .collect();
                spin_for(Duration::from_micros(FIG14_CLIENT_OVERHEAD_US));
                let _ = tspoon.query(&keys);
            })
        };
        std::thread::sleep(scale.direct_query_duration());
        let (tspoon_qps, _) = ts.finish();

        squery_points.push((sel as f64, squery_qps));
        tspoon_points.push((sel as f64, tspoon_qps));
        lines.push(format!(
            "{sel:>5} keys selected: S-Query {squery_qps:>10.0} q/s | TSpoon {tspoon_qps:>10.0} q/s | ratio {:.2}x",
            squery_qps / tspoon_qps.max(1.0)
        ));
    }
    let (_, b_s, r2_s) = power_law_fit(&squery_points);
    let (_, b_t, r2_t) = power_law_fit(&tspoon_points);
    lines.push(format!(
        "power-law fit: S-Query exponent {b_s:.2} (R²={r2_s:.3}) | TSpoon exponent {b_t:.2} (R²={r2_t:.3})"
    ));
    FigureResult {
        id: "fig14",
        title: "Direct-object query throughput vs keys selected, S-QUERY vs TSpoon",
        lines,
    }
}

/// Figure 15: sustainable throughput vs degrees of parallelism at three
/// snapshot intervals, with 10 JOIN queries/s running concurrently.
pub fn fig15(scale: Scale) -> FigureResult {
    let mut lines = vec![
        "workload: NEXMark q6 unpaced + ~10 JOIN queries/s; per (DOP, snapshot interval):"
            .to_string(),
        "note: single-host run — DOP adds threads, not cores; the 'modelled' series \
         extrapolates the measured per-DOP-1 rate to a cluster with one core per instance"
            .to_string(),
    ];
    let mut measured: Vec<(u32, Duration, f64)> = Vec::new();
    for &dop in &scale.dops() {
        for &interval in &scale.fig15_intervals() {
            let system = Arc::new(system_for(StateConfig::snapshot_only(), Some(interval)));
            let job = util::submit_q6(&system, scale.sellers(), None, dop);
            // ~10 JOIN queries per second against the job's state.
            let load = {
                let system = Arc::clone(&system);
                QueryLoad::start(1, move || {
                    let _ = system.query(
                        "SELECT prices FROM \"snapshot_average\" a JOIN \"snapshot_maxbid\" b \
                         ON a.partitionKey = b.seller LIMIT 10",
                    );
                    std::thread::sleep(Duration::from_millis(100));
                })
            };
            std::thread::sleep(scale.warmup());
            let before = job.source_count();
            let t0 = Instant::now();
            std::thread::sleep(scale.measure_duration());
            let rate = (job.source_count() - before) as f64 / t0.elapsed().as_secs_f64();
            let _ = load.finish();
            job.stop();
            measured.push((dop, interval, rate));
        }
    }
    // Calibration: the smallest DOP's per-instance rate at each interval.
    let base_dop = scale.dops()[0];
    let mut model_points = Vec::new();
    for &(dop, interval, rate) in &measured {
        let base_rate = measured
            .iter()
            .find(|(d, i, _)| *d == base_dop && *i == interval)
            .map(|(_, _, r)| *r)
            .unwrap_or(rate);
        let modelled = base_rate / base_dop as f64 * dop as f64;
        lines.push(format!(
            "DOP {dop:>2} interval {:>5}ms: measured {rate:>9.0} ev/s | modelled {modelled:>9.0} ev/s | normalized (modelled/DOP) {:>8.0} ev/s",
            interval.as_millis(),
            modelled / dop as f64,
        ));
        model_points.push((dop as f64, modelled));
    }
    let (_a, slope, r2) = linear_fit(&model_points);
    lines.push(format!(
        "linear fit of modelled throughput vs DOP: slope {slope:.0} ev/s per DOP, R²={r2:.3}"
    ));
    FigureResult {
        id: "fig15",
        title: "Degrees of parallelism vs max throughput for different snapshot intervals",
        lines,
    }
}

/// Run every artifact in paper order.
pub fn all(scale: Scale) -> Vec<FigureResult> {
    vec![
        table3(scale),
        fig8(scale),
        fig9(scale),
        fig10(scale),
        fig11(scale),
        fig12(scale),
        fig13(scale),
        fig14(scale),
        fig15(scale),
    ]
}

/// Artifact ids accepted by the binary.
pub const ALL_IDS: [&str; 9] = [
    "table3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
];

/// Run one artifact by id.
pub fn by_id(id: &str, scale: Scale) -> Option<FigureResult> {
    match id {
        "table3" => Some(table3(scale)),
        "fig8" => Some(fig8(scale)),
        "fig9" => Some(fig9(scale)),
        "fig10" => Some(fig10(scale)),
        "fig11" => Some(fig11(scale)),
        "fig12" => Some(fig12(scale)),
        "fig13" => Some(fig13(scale)),
        "fig14" => Some(fig14(scale)),
        "fig15" => Some(fig15(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shape tests run at quick scale; they assert the *relationships* the
    // paper reports, not absolute numbers.

    #[test]
    fn table3_mentions_substitution() {
        let t = table3(Scale::quick());
        assert!(t.to_string().contains("substitution"));
    }

    #[test]
    fn fig14_squery_beats_tspoon_at_one_key() {
        let f = fig14(Scale::quick());
        let one_key_line = f
            .lines
            .iter()
            .find(|l| l.contains("    1 keys"))
            .expect("1-key row");
        let ratio: f64 = one_key_line
            .rsplit("ratio ")
            .next()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(
            ratio > 1.2,
            "S-Query should clearly win at 1 key (paper: 2x): {one_key_line}"
        );
    }

    #[test]
    fn fig12_incremental_beats_full_at_small_delta() {
        let f = fig12(Scale::quick());
        let parse_p50 = |needle: &str| -> f64 {
            let line = f
                .lines
                .iter()
                .find(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("missing {needle} in {f}"));
            line.split("50%=")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let small_delta = parse_p50("1% delta");
        let full = parse_p50("Full snapshot");
        assert!(
            small_delta < full,
            "1% incremental ({small_delta}ms) must beat full ({full}ms)\n{f}"
        );
    }
}
