//! Experiment scaling: quick (smoke/CI) vs full (recorded run).

use std::time::Duration;

/// How big to run each experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Full recorded-run sizes when true; fast smoke sizes when false.
    pub full: bool,
    /// Degree of SQL query parallelism for fig13's dop sweep (1 = the
    /// sequential baseline only).
    pub dop: usize,
}

impl Scale {
    /// The full recorded-run scale.
    pub fn full() -> Scale {
        Scale { full: true, dop: 1 }
    }

    /// The smoke-test scale.
    pub fn quick() -> Scale {
        Scale {
            full: false,
            dop: 1,
        }
    }

    /// The same scale with fig13 additionally sweeping this degree of
    /// query parallelism.
    pub fn with_dop(mut self, dop: usize) -> Scale {
        self.dop = dop.max(1);
        self
    }

    /// Measurement window per latency configuration (paper: 240 s).
    pub fn measure_duration(&self) -> Duration {
        if self.full {
            Duration::from_secs(10)
        } else {
            Duration::from_millis(1500)
        }
    }

    /// Warmup before measuring (paper: 20 s).
    pub fn warmup(&self) -> Duration {
        if self.full {
            Duration::from_secs(2)
        } else {
            Duration::from_millis(300)
        }
    }

    /// Checkpoint interval for the latency experiments (paper: 1 s).
    pub fn checkpoint_interval(&self) -> Duration {
        if self.full {
            Duration::from_secs(1)
        } else {
            Duration::from_millis(200)
        }
    }

    /// Unique-key counts for the snapshot/query experiments
    /// (paper: 1 K / 10 K / 100 K).
    pub fn key_counts(&self) -> Vec<u64> {
        if self.full {
            vec![1_000, 10_000, 100_000]
        } else {
            vec![200, 1_000]
        }
    }

    /// NEXMark seller count (paper: 10 K).
    pub fn sellers(&self) -> u64 {
        if self.full {
            10_000
        } else {
            500
        }
    }

    /// Load fractions of the measured maximum for Figure 9
    /// (stands in for the paper's 1 M / 5 M / 9 M events/s).
    pub fn load_fractions(&self) -> Vec<f64> {
        vec![0.2, 0.5, 0.8]
    }

    /// Checkpoints to collect per 2PC-distribution configuration.
    pub fn checkpoints_per_config(&self) -> usize {
        if self.full {
            40
        } else {
            8
        }
    }

    /// Queries to time per query-latency configuration.
    pub fn queries_per_config(&self) -> usize {
        if self.full {
            60
        } else {
            20
        }
    }

    /// Per-point duration of the Figure 14 throughput measurement.
    pub fn direct_query_duration(&self) -> Duration {
        if self.full {
            Duration::from_secs(3)
        } else {
            Duration::from_millis(400)
        }
    }

    /// Degrees of parallelism for Figure 15 (paper: 36/60/84 Jet threads;
    /// scaled to in-process instance counts).
    pub fn dops(&self) -> Vec<u32> {
        if self.full {
            vec![2, 4, 6]
        } else {
            vec![1, 2]
        }
    }

    /// Snapshot intervals for Figure 15 (paper: 0.5 s / 1 s / 2 s).
    pub fn fig15_intervals(&self) -> Vec<Duration> {
        if self.full {
            vec![
                Duration::from_millis(500),
                Duration::from_secs(1),
                Duration::from_secs(2),
            ]
        } else {
            vec![Duration::from_millis(200), Duration::from_millis(400)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.measure_duration() < f.measure_duration());
        assert!(q.key_counts().iter().max() < f.key_counts().iter().max());
        assert!(q.sellers() < f.sellers());
        assert!(q.checkpoints_per_config() < f.checkpoints_per_config());
    }

    #[test]
    fn full_matches_paper_key_counts() {
        assert_eq!(Scale::full().key_counts(), vec![1_000, 10_000, 100_000]);
        assert_eq!(Scale::full().sellers(), 10_000);
        assert_eq!(Scale::full().fig15_intervals().len(), 3);
    }
}
