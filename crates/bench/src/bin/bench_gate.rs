//! The SQL benchmark regression gate (`scripts/check.sh --only bench`).
//!
//! A short fixed-iteration smoke over the paper's SQL workload: Q1–Q4
//! (q-commerce order monitoring) and the NEXMark q6 join, each run at DOP 4
//! on both engines — the columnar (vectorized) executor and the row engine.
//! Per-query best wall time and throughput land in a JSON report
//! (`BENCH_sql.json` at the repo root, committed as the baseline).
//!
//! With `--check`, the run compares its per-query columnar-vs-row speedup
//! against the committed baseline and **fails (exit 1) when any query's
//! speedup drops more than 15%**. Raw wall time is machine-dependent, so
//! the row engine acts as the per-query machine-speed canary: both engines
//! are timed in interleaved iterations of the same window, and only their
//! ratio is compared across hosts. A uniformly or transiently slower
//! machine cancels out; the columnar engine getting slower *relative to
//! the row engine on the same query* fails.
//!
//! ```text
//! bench-gate [--check] [--baseline PATH] [--out PATH] [--summary PATH]
//!            [--iters N] [--orders N] [--sellers N]
//! ```

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::{PartitionId, SnapshotId, Value};
use squery_nexmark::q6::{average_state_schema, maxbid_state_schema};
use squery_qcommerce::events::{order_info_event, order_status_event};
use squery_qcommerce::{QUERY_1, QUERY_2, QUERY_3, QUERY_4};
use std::fmt::Write as _;
use std::time::Instant;

/// The q6 analytics join over the two operator states (the golden file's
/// join shape, aggregated so the result is scale-independent).
const NEXMARK_Q6: &str = "SELECT COUNT(*), AVG(average) FROM \"snapshot_average\" a \
                          JOIN \"snapshot_maxbid\" b ON a.partitionKey = b.seller";

const DOP: usize = 4;
/// A query whose columnar-vs-row speedup drops below 85% of its baseline
/// speedup fails the gate.
const REGRESSION_FLOOR: f64 = 0.85;

struct Args {
    check: bool,
    baseline: String,
    out: String,
    summary: Option<String>,
    iters: usize,
    orders: u64,
    sellers: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        baseline: "BENCH_sql.json".into(),
        out: "BENCH_sql.json".into(),
        summary: None,
        iters: 25,
        orders: 20_000,
        sellers: 4_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--check" => args.check = true,
            "--baseline" => args.baseline = val("--baseline"),
            "--out" => args.out = val("--out"),
            "--summary" => args.summary = Some(val("--summary")),
            "--iters" => args.iters = val("--iters").parse().expect("--iters: integer"),
            "--orders" => args.orders = val("--orders").parse().expect("--orders: integer"),
            "--sellers" => args.sellers = val("--sellers").parse().expect("--sellers: integer"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// The q-commerce fixture: orderinfo/orderstate snapshot state for `orders`
/// keys, written directly (no job) for setup speed.
fn qcommerce_system(orders: u64) -> SQuery {
    let system =
        SQuery::new(SQueryConfig::default().with_state(StateConfig::live_and_snapshot())).unwrap();
    let grid = system.grid();
    let info_store = grid.snapshot_store("orderinfo");
    let state_store = grid.snapshot_store("orderstate");
    info_store.set_value_schema(squery_qcommerce::events::order_info_schema());
    state_store.set_value_schema(squery_qcommerce::events::order_state_schema());
    let ssid = grid.registry().begin().unwrap();
    for pid in 0..grid.partitioner().partition_count() {
        info_store.write_partition(ssid, PartitionId(pid), vec![], true);
        state_store.write_partition(ssid, PartitionId(pid), vec![], true);
    }
    for o in 0..orders {
        let info = order_info_event(o);
        let status = order_status_event(o, 7);
        info_store.write_partition(
            ssid,
            info_store.partition_of(&info.key),
            vec![(info.key, Some(info.value))],
            true,
        );
        state_store.write_partition(
            ssid,
            state_store.partition_of(&status.key),
            vec![(status.key, Some(status.value))],
            true,
        );
    }
    grid.registry().commit(ssid).unwrap();
    system
}

/// The NEXMark q6 fixture: per-auction maxbid state and per-seller average
/// state, written directly to the snapshot stores.
fn nexmark_system(sellers: u64) -> SQuery {
    let system =
        SQuery::new(SQueryConfig::default().with_state(StateConfig::live_and_snapshot())).unwrap();
    let grid = system.grid();
    let maxbid = grid.snapshot_store("maxbid");
    let average = grid.snapshot_store("average");
    maxbid.set_value_schema(maxbid_state_schema());
    average.set_value_schema(average_state_schema());
    let ssid = grid.registry().begin().unwrap();
    for pid in 0..grid.partitioner().partition_count() {
        maxbid.write_partition(ssid, PartitionId(pid), vec![], true);
        average.write_partition(ssid, PartitionId(pid), vec![], true);
    }
    let write = |store: &std::sync::Arc<squery_storage::SnapshotStore>,
                 ssid: SnapshotId,
                 key: Value,
                 value: Value| {
        store.write_partition(
            ssid,
            store.partition_of(&key),
            vec![(key, Some(value))],
            true,
        );
    };
    for s in 0..sellers {
        // ~5 auctions per seller in maxbid, one average row per seller.
        for a in 0..5u64 {
            let auction = (s * 5 + a) as i64;
            write(
                &maxbid,
                ssid,
                Value::Int(auction),
                Value::record(
                    &maxbid_state_schema(),
                    vec![
                        Value::Int(s as i64),
                        Value::Float((auction % 97) as f64 + 0.25),
                        Value::Bool(auction % 3 == 0),
                    ],
                ),
            );
        }
        write(
            &average,
            ssid,
            Value::Int(s as i64),
            Value::record(
                &average_state_schema(),
                vec![
                    Value::Int(10),
                    Value::Float(s as f64 * 3.0),
                    Value::Float(s as f64 * 0.3),
                    Value::list(vec![Value::Float(s as f64)]),
                ],
            ),
        );
    }
    grid.registry().commit(ssid).unwrap();
    system
}

/// Best (minimum) wall times (µs) for `(row, columnar)` over `iters`
/// interleaved runs, after one warmup of each engine.
///
/// Two noise defenses, both needed on shared CI runners: the *minimum* is
/// the low-variance estimator of a query's true cost (scheduler and
/// neighbor noise is strictly additive), and *interleaving* the engines
/// within one window means a load burst hits both timings alike, so their
/// ratio — the only thing the gate compares across hosts — stays stable.
fn measure_pair_us(system: &SQuery, sql: &str, iters: usize) -> (u64, u64) {
    let one = |vectorized: bool| {
        let t = Instant::now();
        let rs = system
            .query_with_opts(sql, DOP, vectorized)
            .unwrap_or_else(|e| panic!("query failed ({sql}): {e}"));
        std::hint::black_box(rs.rows().len());
        t.elapsed().as_micros().max(1) as u64
    };
    let _ = (one(false), one(true)); // warmup (and columnar cache fill)
    let (mut row_best, mut vec_best) = (u64::MAX, u64::MAX);
    for _ in 0..iters {
        row_best = row_best.min(one(false));
        vec_best = vec_best.min(one(true));
    }
    (row_best, vec_best)
}

struct QueryReport {
    name: String,
    row_wall_us: u64,
    vec_wall_us: u64,
    row_qps: f64,
    vec_qps: f64,
    speedup: f64,
}

fn run_query(system: &SQuery, name: &str, sql: &str, iters: usize) -> QueryReport {
    // Both engines must agree before their timings mean anything.
    let row = system
        .query_with_opts(sql, DOP, false)
        .unwrap()
        .sorted_rows();
    let vec = system
        .query_with_opts(sql, DOP, true)
        .unwrap()
        .sorted_rows();
    assert_eq!(row, vec, "{name}: vectorized and row results differ");
    let (row_wall_us, vec_wall_us) = measure_pair_us(system, sql, iters);
    let report = QueryReport {
        name: name.to_string(),
        row_wall_us,
        vec_wall_us,
        row_qps: 1e6 / row_wall_us as f64,
        vec_qps: 1e6 / vec_wall_us as f64,
        speedup: row_wall_us as f64 / vec_wall_us as f64,
    };
    eprintln!(
        "  {name}: row {}us, columnar {}us ({:.2}x)",
        report.row_wall_us, report.vec_wall_us, report.speedup
    );
    report
}

fn render_json(args: &Args, reports: &[QueryReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"dop\": {DOP}, \"iters\": {}, \"orders\": {}, \"sellers\": {},",
        args.iters, args.orders, args.sellers
    );
    out.push_str("  \"queries\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"row_wall_us\": {}, \"vec_wall_us\": {}, \
             \"row_qps\": {:.3}, \"vec_qps\": {:.3}, \"speedup\": {:.3}}}",
            r.name, r.row_wall_us, r.vec_wall_us, r.row_qps, r.vec_qps, r.speedup
        );
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_markdown(reports: &[QueryReport]) -> String {
    let mut out = String::new();
    out.push_str("### SQL engine: columnar vs row (DOP 4, best wall time)\n\n");
    out.push_str("| query | row (µs) | columnar (µs) | speedup |\n");
    out.push_str("|---|---:|---:|---:|\n");
    for r in reports {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2}× |",
            r.name, r.row_wall_us, r.vec_wall_us, r.speedup
        );
    }
    out
}

/// Pull `"key": <number>` out of one line of our own JSON format.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

struct BaselineEntry {
    name: String,
    speedup: f64,
}

fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineEntry {
                name: json_str(line, "name")?,
                speedup: json_num(line, "speedup")?,
            })
        })
        .collect()
}

/// Compare against the committed baseline; returns the failure messages.
///
/// The comparison is per-query and host-independent: each query's
/// columnar-vs-row speedup (both engines timed interleaved on *this* host)
/// must stay within 15% of the baseline speedup. Absolute throughputs never
/// cross hosts, so machine speed and transient load cancel out.
fn check_regressions(reports: &[QueryReport], baseline: &[BaselineEntry]) -> Vec<String> {
    if !baseline
        .iter()
        .any(|b| reports.iter().any(|r| r.name == b.name))
    {
        return vec!["baseline has no queries in common with this run".into()];
    }
    let mut failures = Vec::new();
    for b in baseline {
        let Some(r) = reports.iter().find(|r| r.name == b.name) else {
            failures.push(format!("{}: present in baseline but not measured", b.name));
            continue;
        };
        if r.speedup < REGRESSION_FLOOR * b.speedup {
            failures.push(format!(
                "{}: columnar speedup {:.2}x is {:.0}% of baseline {:.2}x (floor {:.0}%)",
                r.name,
                r.speedup,
                r.speedup / b.speedup * 100.0,
                b.speedup,
                REGRESSION_FLOOR * 100.0,
            ));
        }
    }
    failures
}

/// One full measurement pass over every gated query.
fn measure_all(args: &Args) -> Vec<QueryReport> {
    let qsys = qcommerce_system(args.orders);
    let mut reports = Vec::new();
    for (name, sql) in [
        ("q1", QUERY_1),
        ("q2", QUERY_2),
        ("q3", QUERY_3),
        ("q4", QUERY_4),
    ] {
        reports.push(run_query(&qsys, name, sql, args.iters));
    }
    drop(qsys);
    let nsys = nexmark_system(args.sellers);
    reports.push(run_query(&nsys, "nexmark_q6", NEXMARK_Q6, args.iters));
    reports
}

/// Full measurement passes a suspected regression may consume before the
/// gate believes it.
const MAX_ATTEMPTS: usize = 3;

fn main() {
    let args = parse_args();
    // Read the committed baseline *before* the report overwrites it.
    let baseline = if args.check {
        let text = std::fs::read_to_string(&args.baseline).unwrap_or_else(|e| {
            panic!(
                "--check needs a committed baseline at {}: {e}",
                args.baseline
            )
        });
        let entries = parse_baseline(&text);
        assert!(
            !entries.is_empty(),
            "baseline {} holds no query entries",
            args.baseline
        );
        Some(entries)
    } else {
        None
    };

    eprintln!(
        "bench-gate: {} orders / {} sellers, dop {DOP}, {} iterations",
        args.orders, args.sellers, args.iters
    );
    let mut reports = measure_all(&args);

    // A sub-millisecond query can have its whole measurement window covered
    // by one sustained load burst, which no ratio or minimum can cancel. A
    // true regression reproduces, transient load does not — so a suspected
    // regression earns up to two full re-measurements, keeping each query's
    // best observed speedup.
    let failures = baseline.as_ref().map(|b| {
        let mut failures = check_regressions(&reports, b);
        for attempt in 2..=MAX_ATTEMPTS {
            if failures.is_empty() {
                break;
            }
            eprintln!(
                "bench-gate: suspected regression, re-measuring (attempt {attempt}/{MAX_ATTEMPTS})"
            );
            for fresh in measure_all(&args) {
                if let Some(r) = reports.iter_mut().find(|r| r.name == fresh.name) {
                    if fresh.speedup > r.speedup {
                        *r = fresh;
                    }
                }
            }
            failures = check_regressions(&reports, b);
        }
        failures
    });

    std::fs::write(&args.out, render_json(&args, &reports))
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    eprintln!("wrote {}", args.out);
    if let Some(path) = &args.summary {
        std::fs::write(path, render_markdown(&reports))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }

    if let Some(failures) = failures {
        if !failures.is_empty() {
            eprintln!("bench-gate: REGRESSION");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "bench-gate: no query regressed more than {:.0}% vs {}",
            (1.0 - REGRESSION_FLOOR) * 100.0,
            args.baseline
        );
    }
}
