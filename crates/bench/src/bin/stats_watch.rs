//! Continuous state-statistics smoke/watch driver. Wired into CI as
//! `scripts/check.sh --only stats`.
//!
//! `--smoke` populates a skewed key distribution, runs sampling passes, and
//! asserts the statistics pipeline end to end: per-partition accounting
//! matches real scan counts at DOP 1 and 4, the planted hot key surfaces in
//! `sys_hot_keys`, `EXPLAIN` carries catalog row estimates, and the JSON
//! dump is well-formed. `--watch` prints the stats catalog for a few
//! sampling rounds instead of asserting.
//!
//! ```text
//! cargo run -p squery-bench --release --bin stats-watch -- --smoke
//! cargo run -p squery-bench --release --bin stats-watch -- --smoke --json target/stats.json
//! cargo run -p squery-bench --release --bin stats-watch -- --watch --rounds 5
//! ```

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::Value;
use std::time::Duration;

/// A system with a `orders` live map holding a skewed population: every
/// 10th write hits key 0, the rest spread over `keys` distinct keys.
fn skewed_system(writes: u64, keys: u64) -> SQuery {
    let config = SQueryConfig::default()
        .with_state(StateConfig::live_and_snapshot())
        .with_stats_interval(Some(Duration::from_millis(20)))
        .with_stats_hot_keys(16);
    let system = SQuery::new(config).unwrap();
    let map = system.grid().map("orders");
    for i in 0..writes {
        let key = if i % 10 == 0 { 0 } else { 1 + i % keys };
        map.put(Value::Int(key as i64), Value::Int(i as i64));
    }
    system
}

fn count_rows(system: &SQuery, sql: &str, dop: usize) -> i64 {
    system
        .query_with_dop(sql, dop)
        .unwrap()
        .scalar("n")
        .unwrap()
        .as_int()
        .unwrap()
}

fn smoke(json_path: Option<&str>) -> Result<(), String> {
    let system = skewed_system(50_000, 1_000);
    system.sample_stats_now();
    // Hot-key evidence flows through the armed ring, so write again now
    // that the sampler armed the maps, then sample once more.
    let map = system.grid().map("orders");
    for i in 0..50_000u64 {
        let key = if i % 10 == 0 { 0 } else { 1 + i % 1_000 };
        map.put(Value::Int(key as i64), Value::Int(i as i64));
        if i % 2_048 == 0 {
            // Keep the ring from overflowing between passes.
            system.sample_stats_now();
        }
    }
    system.sample_stats_now();

    // 1. sys_partitions row totals equal real scan counts at DOP 1 and 4.
    let direct = count_rows(&system, "SELECT COUNT(*) AS n FROM orders", 1);
    for dop in [1usize, 4] {
        let accounted = count_rows(
            &system,
            "SELECT SUM(rows) AS n FROM sys_partitions WHERE table = 'orders'",
            dop,
        );
        if accounted != direct {
            return Err(format!(
                "sys_partitions rows {accounted} != scan count {direct} at dop {dop}"
            ));
        }
    }

    // 2. The planted hot key (10% of the stream) tops sys_hot_keys.
    let rs = system
        .query("SELECT key FROM sys_hot_keys WHERE table = 'orders' ORDER BY count DESC LIMIT 1")
        .unwrap();
    let hottest = rs.rows()[0][0].to_string();
    if hottest != "0" {
        return Err(format!("planted hot key not found (hottest = {hottest})"));
    }

    // 3. EXPLAIN carries a catalog row estimate on the scan node.
    let rs = system.query("EXPLAIN SELECT this FROM orders").unwrap();
    let explain = rs
        .rows()
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    if !explain.contains("[est_rows=") {
        return Err(format!("EXPLAIN output lacks est_rows:\n{explain}"));
    }

    // 4. sys_state_stats reflects samples and a sane distinct estimate.
    //    The skewed stream hits exactly `direct` distinct keys; the HLL
    //    must land within 5% of that.
    let rs = system
        .query("SELECT distinct_keys, samples FROM sys_state_stats WHERE table = 'orders'")
        .unwrap();
    let distinct = rs.rows()[0][0].as_int().unwrap();
    let samples = rs.rows()[0][1].as_int().unwrap();
    if samples < 2 {
        return Err(format!("expected >=2 samples, saw {samples}"));
    }
    let tolerance = direct / 20;
    if (distinct - direct).abs() > tolerance {
        return Err(format!(
            "distinct-key estimate {distinct} outside {direct} ± 5%"
        ));
    }

    // 5. The JSON dump is non-empty and structurally sound.
    let json = system.stats().dump_json();
    if !json.starts_with("{\"samples_total\":") || !json.contains("\"table\":\"orders\"") {
        return Err(format!("malformed stats JSON: {json}"));
    }
    if let Some(path) = json_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        println!("stats JSON written to {path}");
    }

    println!(
        "stats smoke OK: {direct} rows accounted, hot key 0 found, \
         distinct ≈ {distinct}, {samples} samples"
    );
    Ok(())
}

fn watch(rounds: u64) {
    let system = skewed_system(10_000, 100);
    for round in 1..=rounds {
        std::thread::sleep(Duration::from_millis(50));
        system.sample_stats_now();
        println!("--- round {round} ---");
        for t in system.stats().snapshot() {
            println!(
                "{}: rows={} bytes={} writes={} distinct={} skew={:.2} hot_keys={}",
                t.table,
                t.rows,
                t.bytes,
                t.writes,
                t.distinct_keys,
                t.skew,
                t.hot_keys.len()
            );
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut mode = "";
    let mut json_path: Option<String> = None;
    let mut rounds = 3u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode = "smoke",
            "--watch" => mode = "watch",
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }));
            }
            "--rounds" => {
                rounds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--rounds requires a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: stats-watch --smoke [--json PATH] | --watch [--rounds N]");
                std::process::exit(2);
            }
        }
    }
    match mode {
        "smoke" => {
            if let Err(e) = smoke(json_path.as_deref()) {
                eprintln!("stats smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
        "watch" => watch(rounds),
        _ => {
            eprintln!("usage: stats-watch --smoke [--json PATH] | --watch [--rounds N]");
            std::process::exit(2);
        }
    }
}
