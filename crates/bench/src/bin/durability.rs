//! Durability soak driver: run the kill-restart harness over a range of
//! seeds, each in its own throwaway WAL directory, and record the recovered
//! state fingerprints as a JSON artifact. Exits non-zero on any failure.
//! Wired into CI as `scripts/check.sh --only durability`.
//!
//! Each seed picks one of four kill shapes (`seed % 4`): freeze after the
//! seal record, tear a phase-1 delta, freeze before the seal, or freeze
//! mid-compaction — then cold-starts a fresh system from the WAL alone and
//! checks the recovered snapshot byte-for-byte against the pre-kill one.
//!
//! ```text
//! cargo run -p squery-bench --release --bin durability
//! cargo run -p squery-bench --release --bin durability -- --seeds 50 --time-budget-secs 300
//! DURABILITY_JSON=out.json cargo run -p squery-bench --release --bin durability
//! ```

use squery::durability::{run_durability_seed, DurabilityConfig, DurabilityReport};
use squery_bench::workload_durability::run_workload_kill_restart;
use std::time::{Duration, Instant};

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn artifact(
    reports: &[DurabilityReport],
    workload: &str,
    failures: u64,
    elapsed: Duration,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"seeds_run\": {},\n", reports.len()));
    out.push_str(&format!("  \"failures\": {failures},\n"));
    out.push_str(&format!(
        "  \"workload_fingerprint\": \"{}\",\n",
        json_escape(workload)
    ));
    out.push_str(&format!(
        "  \"elapsed_secs\": {:.1},\n",
        elapsed.as_secs_f64()
    ));
    out.push_str("  \"seeds\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seed\": {}, \"shape\": {}, \"recovered\": {}, \
             \"torn_truncations\": {}, \"faults\": {}, \"fingerprint\": \"{}\"}}{}\n",
            r.seed,
            r.shape,
            r.recovered.0,
            r.torn_truncations,
            r.faults.len(),
            json_escape(&r.fingerprint),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut seeds = 25u64;
    let mut base_seed = 1u64;
    let mut budget = Duration::from_secs(120);
    while let Some(a) = args.next() {
        let mut num = |flag: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a non-negative integer");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--seeds" => seeds = num("--seeds"),
            "--base-seed" => base_seed = num("--base-seed"),
            "--time-budget-secs" => budget = Duration::from_secs(num("--time-budget-secs")),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: durability [--seeds N] [--base-seed S] [--time-budget-secs T]");
                std::process::exit(2);
            }
        }
    }

    let wal_root = std::env::temp_dir().join(format!("squery-durability-{}", std::process::id()));
    let start = Instant::now();
    let mut ran = 0u64;
    let mut failures = 0u64;
    let mut torn = 0i64;
    let mut reports = Vec::new();
    for seed in base_seed..base_seed + seeds {
        if start.elapsed() > budget {
            println!("time budget exhausted after {ran}/{seeds} seeds");
            break;
        }
        let cfg = DurabilityConfig::new(wal_root.join(format!("seed-{seed}")));
        match run_durability_seed(&cfg, seed) {
            Ok(report) => {
                ran += 1;
                torn += report.torn_truncations;
                println!(
                    "seed {seed}: ok (shape {}, recovered v{}, {} torn, {} faults)",
                    report.shape,
                    report.recovered.0,
                    report.torn_truncations,
                    report.faults.len()
                );
                reports.push(report);
            }
            Err(e) => {
                ran += 1;
                failures += 1;
                eprintln!("seed {seed}: FAILED: {e}");
            }
        }
    }
    // The acceptance shape: the full SQL workload (Q1–Q4 + NEXMark q6 +
    // direct get_many) must survive a kill-after-commit byte-identically.
    let workload = match run_workload_kill_restart(&wal_root.join("workload")) {
        Ok(fp) => {
            println!("workload kill-restart: ok (Q1-Q4 + q6 + get_many byte-identical)");
            fp
        }
        Err(e) => {
            failures += 1;
            eprintln!("workload kill-restart: FAILED: {e}");
            String::from("FAILED")
        }
    };
    let _ = std::fs::remove_dir_all(&wal_root);

    let path = std::env::var("DURABILITY_JSON").unwrap_or_else(|_| "target/durability.json".into());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let body = artifact(&reports, &workload, failures, start.elapsed());
    match std::fs::write(&path, &body) {
        Ok(()) => println!("fingerprint artifact written to {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            failures += 1;
        }
    }

    println!(
        "durability soak: {ran} seeds in {:.1}s — {torn} torn tails truncated, {failures} failures",
        start.elapsed().as_secs_f64()
    );
    if failures > 0 || ran == 0 {
        std::process::exit(1);
    }
}
