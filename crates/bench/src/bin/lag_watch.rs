//! Watermark / freshness smoke and live lag monitor. Wired into CI as
//! `scripts/check.sh --only freshness`.
//!
//! `--smoke` runs NEXMark q6 under offered load, drives several checkpoint
//! rounds, and asserts the freshness pipeline end to end: per-round global
//! watermarks are non-decreasing, `sys_freshness` covers exactly the
//! committed snapshots `sys_snapshots` reports, live frontiers in
//! `sys_watermarks` sit at or ahead of the sealed watermark, and `EXPLAIN
//! ANALYZE` annotates snapshot scans with a staleness bound. With `--json`
//! the per-round lag report is written as JSON. `--watch` prints the live
//! frontier and per-snapshot staleness for a few rounds instead of
//! asserting.
//!
//! ```text
//! cargo run -p squery-bench --release --bin lag-watch -- --smoke
//! cargo run -p squery-bench --release --bin lag-watch -- --smoke --json target/lag.json
//! cargo run -p squery-bench --release --bin lag-watch -- --watch --rounds 5
//! ```

use squery::{SQuery, SQueryConfig, StateConfig};
use squery_common::Value;
use squery_nexmark::{q6_job, NexmarkConfig};
use std::time::Duration;

const ROUNDS: usize = 3;

fn paced_cfg() -> NexmarkConfig {
    NexmarkConfig {
        sellers: 200,
        active_auctions: 400,
        events_per_instance: 0, // unbounded: the job runs until stopped
        rate_per_instance: Some(50_000.0),
    }
}

/// One checkpoint round's freshness record.
struct Round {
    ssid: i64,
    watermark_us: i64,
    staleness_us: i64,
}

fn int(v: &Value) -> i64 {
    v.as_int().unwrap_or(0)
}

fn smoke(json_path: Option<&str>) -> Result<(), String> {
    let system = SQuery::new(SQueryConfig::default().with_state(StateConfig::live_and_snapshot()))
        .map_err(|e| e.to_string())?;
    let job = system
        .submit(q6_job(paced_cfg(), 1, 2))
        .map_err(|e| e.to_string())?;

    // Drive explicit checkpoint rounds with the stream flowing in between,
    // so each seal pins a later event-time frontier than the one before.
    let mut rounds: Vec<Round> = Vec::new();
    for _ in 0..ROUNDS {
        std::thread::sleep(Duration::from_millis(150));
        let ssid = job.checkpoint_now().map_err(|e| e.to_string())?;
        let rs = system
            .query(&format!(
                "SELECT ssid, watermark_us, staleness_us FROM sys_freshness \
                 WHERE ssid = {}",
                ssid.0
            ))
            .map_err(|e| e.to_string())?;
        let row = rs
            .rows()
            .first()
            .ok_or_else(|| format!("snapshot {ssid} missing from sys_freshness"))?;
        rounds.push(Round {
            ssid: int(&row[0]),
            watermark_us: int(&row[1]),
            staleness_us: int(&row[2]),
        });
    }

    // 1. Global low watermarks are positive and non-decreasing across rounds.
    for pair in rounds.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.watermark_us <= 0 || b.watermark_us <= 0 {
            return Err(format!(
                "round watermarks must be positive (ssid {} → {}us, ssid {} → {}us)",
                a.ssid, a.watermark_us, b.ssid, b.watermark_us
            ));
        }
        if b.watermark_us < a.watermark_us {
            return Err(format!(
                "watermark regressed: ssid {} sealed {}us, ssid {} sealed {}us",
                a.ssid, a.watermark_us, b.ssid, b.watermark_us
            ));
        }
    }

    // 2. sys_freshness covers exactly the committed snapshots sys_snapshots
    //    reports (retention prunes both in lockstep). sys_snapshots has one
    //    row per (store, ssid), so dedupe before comparing the ssid sets.
    let committed: std::collections::BTreeSet<i64> = system
        .query("SELECT ssid FROM sys_snapshots WHERE committed = 1")
        .map_err(|e| e.to_string())?
        .rows()
        .iter()
        .map(|r| int(&r[0]))
        .collect();
    let fresh: std::collections::BTreeSet<i64> = system
        .query("SELECT ssid FROM sys_freshness")
        .map_err(|e| e.to_string())?
        .rows()
        .iter()
        .map(|r| int(&r[0]))
        .collect();
    if committed != fresh {
        return Err(format!(
            "sys_freshness ssids {fresh:?} diverge from committed sys_snapshots ssids {committed:?}"
        ));
    }

    // 3. Live frontiers exist for every pipeline stage and none sits behind
    //    the last sealed global watermark (the seal took a min over them).
    let rs = system
        .query("SELECT operator, MIN(watermark_us) AS wm FROM sys_watermarks GROUP BY operator")
        .map_err(|e| e.to_string())?;
    if rs.rows().len() < 3 {
        return Err(format!(
            "expected live frontiers for sources and operators, saw {} rows",
            rs.rows().len()
        ));
    }
    let last_sealed = rounds.last().map(|r| r.watermark_us).unwrap_or(0);
    for row in rs.rows() {
        if int(&row[1]) < last_sealed {
            return Err(format!(
                "live frontier of {} ({}us) behind sealed watermark {last_sealed}us",
                row[0],
                int(&row[1])
            ));
        }
    }

    // 4. EXPLAIN ANALYZE annotates the pinned snapshot scan with staleness.
    let rs = system
        .query("EXPLAIN ANALYZE SELECT count FROM snapshot_average")
        .map_err(|e| e.to_string())?;
    let plan = rs
        .rows()
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    if !plan.contains("[staleness=") {
        return Err(format!("EXPLAIN ANALYZE lacks staleness bound:\n{plan}"));
    }

    let _ = job.stop();

    // 5. The JSON lag report is well-formed (hand-rendered; nothing in the
    //    build serializes for us).
    let json = format!(
        "{{\"rounds\":[{}],\"last_sealed_watermark_us\":{last_sealed}}}",
        rounds
            .iter()
            .map(|r| format!(
                "{{\"ssid\":{},\"watermark_us\":{},\"staleness_us\":{}}}",
                r.ssid, r.watermark_us, r.staleness_us
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    if !json.starts_with("{\"rounds\":[{\"ssid\":") {
        return Err(format!("malformed lag JSON: {json}"));
    }
    if let Some(path) = json_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        println!("lag JSON written to {path}");
    }

    println!(
        "freshness smoke OK: {} rounds, watermarks {} → {}us, staleness {}us at seal",
        rounds.len(),
        rounds.first().map(|r| r.watermark_us).unwrap_or(0),
        last_sealed,
        rounds.last().map(|r| r.staleness_us).unwrap_or(0),
    );
    Ok(())
}

fn watch(rounds: u64) {
    let system = SQuery::new(SQueryConfig::default().with_state(StateConfig::live_and_snapshot()))
        .expect("deployment comes up");
    let job = system
        .submit(q6_job(paced_cfg(), 1, 2))
        .expect("q6 submits");
    for round in 1..=rounds {
        std::thread::sleep(Duration::from_millis(200));
        let ssid = job.checkpoint_now().expect("checkpoint");
        println!("--- round {round} (sealed ssid {ssid}) ---");
        let live = system
            .query(
                "SELECT operator, instance, watermark_us, lag_us FROM sys_watermarks \
                 ORDER BY operator, instance",
            )
            .expect("sys_watermarks");
        for row in live.rows() {
            println!(
                "live  {}[{}] watermark={}us lag={}us",
                row[0], row[1], row[2], row[3]
            );
        }
        let fresh = system
            .query("SELECT ssid, watermark_us, staleness_us FROM sys_freshness ORDER BY ssid")
            .expect("sys_freshness");
        for row in fresh.rows() {
            println!(
                "snap  ssid={} watermark={}us staleness={}us",
                row[0], row[1], row[2]
            );
        }
    }
    let _ = job.stop();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut mode = "";
    let mut json_path: Option<String> = None;
    let mut rounds = 3u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode = "smoke",
            "--watch" => mode = "watch",
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }));
            }
            "--rounds" => {
                rounds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--rounds requires a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: lag-watch --smoke [--json PATH] | --watch [--rounds N]");
                std::process::exit(2);
            }
        }
    }
    match mode {
        "smoke" => {
            if let Err(e) = smoke(json_path.as_deref()) {
                eprintln!("freshness smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
        "watch" => watch(rounds),
        _ => {
            eprintln!("usage: lag-watch --smoke [--json PATH] | --watch [--rounds N]");
            std::process::exit(2);
        }
    }
}
