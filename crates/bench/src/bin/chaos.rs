//! Chaos soak driver: run the seeded fault-injection harness over a range
//! of seeds inside a wall-clock budget, exit non-zero on any invariant
//! violation. Wired into CI as `scripts/check.sh --only chaos`.
//!
//! ```text
//! cargo run -p squery-bench --release --bin chaos
//! cargo run -p squery-bench --release --bin chaos -- --seeds 200 --time-budget-secs 300
//! cargo run -p squery-bench --release --bin chaos -- --base-seed 1000 --seeds 50
//! ```

use squery::chaos::{run_seed, ChaosConfig};
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut seeds = 50u64;
    let mut base_seed = 1u64;
    let mut budget = Duration::from_secs(60);
    while let Some(a) = args.next() {
        let mut num = |flag: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a non-negative integer");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--seeds" => seeds = num("--seeds"),
            "--base-seed" => base_seed = num("--base-seed"),
            "--time-budget-secs" => budget = Duration::from_secs(num("--time-budget-secs")),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: chaos [--seeds N] [--base-seed S] [--time-budget-secs T]");
                std::process::exit(2);
            }
        }
    }

    let cfg = ChaosConfig::default();
    let start = Instant::now();
    let mut ran = 0u64;
    let mut failures = 0u64;
    let mut faults = 0usize;
    let mut restarts = 0u32;
    let mut retries = 0u64;
    for seed in base_seed..base_seed + seeds {
        if start.elapsed() > budget {
            println!("time budget exhausted after {ran}/{seeds} seeds");
            break;
        }
        match run_seed(&cfg, seed) {
            Ok(report) => {
                ran += 1;
                faults += report.faults.len();
                restarts += report.restarts;
                retries += report.checkpoint_retries;
                println!(
                    "seed {seed}: ok ({} faults, {} restarts, {} retries, {} aborted rounds)",
                    report.faults.len(),
                    report.restarts,
                    report.checkpoint_retries,
                    report.aborted_checkpoints
                );
            }
            Err(e) => {
                ran += 1;
                failures += 1;
                eprintln!("seed {seed}: FAILED: {e}");
            }
        }
    }
    println!(
        "chaos soak: {ran} seeds in {:.1}s — {faults} faults fired, \
         {restarts} supervisor restarts, {retries} checkpoint retries, {failures} failures",
        start.elapsed().as_secs_f64()
    );
    if failures > 0 || ran == 0 {
        std::process::exit(1);
    }
}
