//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p squery-bench --release --bin paper-figures -- all
//! cargo run -p squery-bench --release --bin paper-figures -- fig10 fig14
//! cargo run -p squery-bench --release --bin paper-figures -- --quick all
//! ```

use squery_bench::figures::{all, by_id, ALL_IDS};
use squery_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let requested: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if requested.is_empty() || requested.iter().any(|a| a.as_str() == "help") {
        eprintln!("usage: paper-figures [--quick] all | <artifact>...");
        eprintln!("artifacts: {}", ALL_IDS.join(", "));
        std::process::exit(if requested.is_empty() { 2 } else { 0 });
    }

    println!(
        "S-QUERY evaluation harness — scale: {}",
        if quick { "quick (smoke)" } else { "full" }
    );
    if requested.iter().any(|a| a.as_str() == "all") {
        for result in all(scale) {
            println!("{result}");
        }
        return;
    }
    for id in requested {
        match by_id(id, scale) {
            Some(result) => println!("{result}"),
            None => {
                eprintln!("unknown artifact '{id}' (known: {})", ALL_IDS.join(", "));
                std::process::exit(2);
            }
        }
    }
}
