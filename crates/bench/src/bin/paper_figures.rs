//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p squery-bench --release --bin paper-figures -- all
//! cargo run -p squery-bench --release --bin paper-figures -- fig10 fig14
//! cargo run -p squery-bench --release --bin paper-figures -- --quick all
//! cargo run -p squery-bench --release --bin paper-figures -- --telemetry-json telemetry.json
//! cargo run -p squery-bench --release --bin paper-figures -- --quick --dop 4 --trace-json trace.json
//! cargo run -p squery-bench --release --bin paper-figures -- --quick --dop 4 fig13
//! ```

use squery_bench::figures::{all, by_id, ALL_IDS};
use squery_bench::util::{telemetry_dump, trace_dump};
use squery_bench::Scale;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut quick = false;
    let mut dop = 1usize;
    let mut telemetry_json: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut requested: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--dop" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => dop = n,
                _ => {
                    eprintln!("--dop requires a positive integer");
                    std::process::exit(2);
                }
            },
            "--telemetry-json" => match args.next() {
                Some(path) => telemetry_json = Some(path),
                None => {
                    eprintln!("--telemetry-json requires a path");
                    std::process::exit(2);
                }
            },
            "--trace-json" => match args.next() {
                Some(path) => trace_json = Some(path),
                None => {
                    eprintln!("--trace-json requires a path");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(2);
            }
            artifact => requested.push(artifact.to_string()),
        }
    }
    let scale = if quick { Scale::quick() } else { Scale::full() }.with_dop(dop);

    if let Some(path) = &telemetry_json {
        // Run a small instrumented workload and dump the engine telemetry:
        // `<path>` gets the JSON, `<path>.prom` the Prometheus text format.
        let (json, prom) = telemetry_dump();
        std::fs::write(path, json).expect("write telemetry json");
        std::fs::write(format!("{path}.prom"), prom).expect("write telemetry prom");
        println!("telemetry dump written to {path} (+ {path}.prom)");
        if requested.is_empty() && trace_json.is_none() {
            return;
        }
    }

    if let Some(path) = &trace_json {
        // Run a traced fig13-style workload (checkpoint round + Query 1 at
        // the requested dop) and export the spans as Chrome trace-event
        // JSON, loadable in chrome://tracing or Perfetto.
        let json = trace_dump(dop);
        std::fs::write(path, json).expect("write trace json");
        println!("chrome trace written to {path}");
        if requested.is_empty() {
            return;
        }
    }

    if requested.is_empty() || requested.iter().any(|a| a.as_str() == "help") {
        eprintln!(
            "usage: paper-figures [--quick] [--dop <n>] [--telemetry-json <path>] [--trace-json <path>] all | <artifact>..."
        );
        eprintln!("artifacts: {}", ALL_IDS.join(", "));
        std::process::exit(if requested.is_empty() { 2 } else { 0 });
    }

    println!(
        "S-QUERY evaluation harness — scale: {}",
        if quick { "quick (smoke)" } else { "full" }
    );
    if requested.iter().any(|a| a.as_str() == "all") {
        for result in all(scale) {
            println!("{result}");
        }
        return;
    }
    for id in requested {
        match by_id(&id, scale) {
            Some(result) => println!("{result}"),
            None => {
                eprintln!("unknown artifact '{id}' (known: {})", ALL_IDS.join(", "));
                std::process::exit(2);
            }
        }
    }
}
