//! # squery-bench
//!
//! The evaluation harness: regenerates every table and figure of the paper's
//! §IX at laptop scale.
//!
//! Two entry paths:
//!
//! * the **`paper-figures` binary** — `cargo run -p squery-bench --release
//!   --bin paper-figures -- all` prints, for each figure, the same
//!   rows/series the paper reports (percentile distributions, throughput
//!   tables, power-law points). Use `--quick` for a fast smoke run.
//! * **criterion benches** (`cargo bench`) — micro-benchmarks of the exact
//!   mechanisms each figure exercises (live write-through, snapshot 2PC
//!   path, differential incremental reads, SQL Query 1, the two direct-query
//!   systems), so regressions in any figure's machinery are caught at the
//!   operation level.
//!
//! Scaling note (recorded per-experiment in EXPERIMENTS.md): the paper runs
//! on 7×16-vCPU AWS nodes; this reproduction runs everything in one process,
//! frequently on a single vCPU. Offered loads are expressed as fractions of
//! the measured sustainable maximum instead of the paper's absolute 1–9 M
//! events/s, key counts scale 1K/10K/100K exactly as the paper's, and the
//! DOP-scalability figure reports both the measured single-core numbers and
//! a calibrated extrapolation (per-instance service rate × DOP, minus the
//! measured checkpoint overhead share), since physical speedup cannot
//! manifest without physical cores.

pub mod figures;
pub mod scale;
pub mod util;
pub mod workload_durability;

pub use figures::FigureResult;
pub use scale::Scale;
