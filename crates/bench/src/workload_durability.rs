//! Workload-level durability check: the paper's SQL workload state
//! (q-commerce `orderinfo`/`orderstate`, NEXMark q6 `maxbid`/`average`)
//! written under a WAL, sealed and committed, then the whole system dropped
//! and cold-started from the directory alone. Q1–Q4, the NEXMark q6 join,
//! and direct `get_many` reads must come back byte-identical to the
//! pre-kill captures — the acceptance shape of the durability story, run
//! by the `durability` soak binary on every CI push.

use squery::{FsyncMode, SQuery, SQueryConfig, StateConfig, StateView};
use squery_common::{PartitionId, SnapshotId, Value};
use squery_nexmark::q6::{average_state_schema, maxbid_state_schema};
use squery_qcommerce::events::{order_info_event, order_status_event};
use squery_qcommerce::{QUERY_1, QUERY_2, QUERY_3, QUERY_4};
use std::collections::BTreeMap;
use std::path::Path;

/// One store's phase-1 batches, keyed by partition.
type PartitionBatches = BTreeMap<PartitionId, Vec<(Value, Option<Value>)>>;

/// The q6 analytics join over the two operator states (the bench gate's
/// shape, aggregated so the result is scale-independent).
const NEXMARK_Q6: &str = "SELECT COUNT(*), AVG(average) FROM \"snapshot_average\" a \
                          JOIN \"snapshot_maxbid\" b ON a.partitionKey = b.seller";

const ORDERS: u64 = 600;
const SELLERS: u64 = 40;
const DOP: usize = 4;

fn config(wal_dir: &Path) -> SQueryConfig {
    SQueryConfig::default()
        .with_state(StateConfig::live_and_snapshot())
        .with_wal_dir(wal_dir)
        .with_fsync(FsyncMode::OnCommit)
        .with_wal_retention(4)
}

/// Value schemas are application setup, re-registered on every start (a
/// resumed job's operators would do the same) — recovery restores bytes,
/// not catalog metadata.
fn set_schemas(system: &SQuery) {
    let grid = system.grid();
    grid.snapshot_store("orderinfo")
        .set_value_schema(squery_qcommerce::events::order_info_schema());
    grid.snapshot_store("orderstate")
        .set_value_schema(squery_qcommerce::events::order_state_schema());
    grid.snapshot_store("maxbid")
        .set_value_schema(maxbid_state_schema());
    grid.snapshot_store("average")
        .set_value_schema(average_state_schema());
}

/// Write the full workload fixture as one checkpoint round: every store's
/// entries batched per partition (one `write_partition` per partition, as
/// phase 1 produces), then sealed and committed.
fn populate(system: &SQuery) -> SnapshotId {
    let grid = system.grid();
    let ssid = grid.registry().begin().unwrap();
    let stores = ["orderinfo", "orderstate", "maxbid", "average"];
    let mut batches: BTreeMap<&str, PartitionBatches> =
        stores.iter().map(|s| (*s, BTreeMap::new())).collect();
    let pid_of = |store: &str, key: &Value| grid.snapshot_store(store).partition_of(key);
    for o in 0..ORDERS {
        let info = order_info_event(o);
        let status = order_status_event(o, 7);
        batches
            .get_mut("orderinfo")
            .unwrap()
            .entry(pid_of("orderinfo", &info.key))
            .or_default()
            .push((info.key, Some(info.value)));
        batches
            .get_mut("orderstate")
            .unwrap()
            .entry(pid_of("orderstate", &status.key))
            .or_default()
            .push((status.key, Some(status.value)));
    }
    for s in 0..SELLERS {
        for a in 0..5u64 {
            let auction = (s * 5 + a) as i64;
            let key = Value::Int(auction);
            let value = Value::record(
                &maxbid_state_schema(),
                vec![
                    Value::Int(s as i64),
                    Value::Float((auction % 97) as f64 + 0.25),
                    Value::Bool(auction % 3 == 0),
                ],
            );
            batches
                .get_mut("maxbid")
                .unwrap()
                .entry(pid_of("maxbid", &key))
                .or_default()
                .push((key, Some(value)));
        }
        let key = Value::Int(s as i64);
        let value = Value::record(
            &average_state_schema(),
            vec![
                Value::Int(10),
                Value::Float(s as f64 * 3.0),
                Value::Float(s as f64 * 0.3),
                Value::list(vec![Value::Float(s as f64)]),
            ],
        );
        batches
            .get_mut("average")
            .unwrap()
            .entry(pid_of("average", &key))
            .or_default()
            .push((key, Some(value)));
    }
    for (name, parts) in batches {
        let store = grid.snapshot_store(name);
        for pid in 0..grid.partitioner().partition_count() {
            let entries = parts.get(&PartitionId(pid)).cloned().unwrap_or_default();
            store.write_partition(ssid, PartitionId(pid), entries, true);
        }
    }
    grid.wal_seal(ssid).unwrap();
    grid.registry().commit(ssid).unwrap();
    ssid
}

/// `Value`'s `Display` walks struct fields in schema order, unlike `Debug`
/// (whose field-index map is a `HashMap` with unstable iteration order) —
/// the captures must be canonical bytes.
fn render_rows(rows: &[Vec<Value>]) -> String {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(Value::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

fn render_direct(pairs: &[(Value, Option<Value>)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| match v {
            Some(v) => format!("{k}={v}"),
            None => format!("{k}=<missing>"),
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Every result the acceptance criterion names, as one canonical string:
/// Q1–Q4 and the q6 join via SQL (sorted rows), plus direct `get_many`
/// over a key sample of both workloads pinned to `ssid`.
fn capture(system: &SQuery, ssid: SnapshotId) -> Result<String, String> {
    let mut out = String::new();
    for (name, sql) in [
        ("q1", QUERY_1),
        ("q2", QUERY_2),
        ("q3", QUERY_3),
        ("q4", QUERY_4),
        ("nexmark_q6", NEXMARK_Q6),
    ] {
        let rows = system
            .query_with_opts(sql, DOP, true)
            .map_err(|e| format!("{name} failed: {e}"))?
            .sorted_rows();
        out.push_str(&format!("{name}:{}\n", render_rows(&rows)));
    }
    let order_keys: Vec<Value> = (0..ORDERS)
        .step_by(17)
        .map(|o| Value::Int(o as i64))
        .collect();
    let direct_orders = system
        .direct()
        .get_many("orderstate", &order_keys, StateView::Snapshot(ssid))
        .map_err(|e| format!("direct get_many(orderstate) failed: {e}"))?;
    out.push_str(&format!(
        "direct_orderstate:{}\n",
        render_direct(&direct_orders)
    ));
    let bid_keys: Vec<Value> = (0..SELLERS * 5)
        .step_by(7)
        .map(|a| Value::Int(a as i64))
        .collect();
    let direct_bids = system
        .direct()
        .get_many("maxbid", &bid_keys, StateView::Snapshot(ssid))
        .map_err(|e| format!("direct get_many(maxbid) failed: {e}"))?;
    out.push_str(&format!("direct_maxbid:{}\n", render_direct(&direct_bids)));
    Ok(out)
}

/// Populate, capture, kill (drop every in-memory structure), cold-start
/// from the WAL directory alone, and require the post-restart captures to
/// be byte-identical. Returns the shared fingerprint. The directory is
/// created fresh and removed on success.
pub fn run_workload_kill_restart(wal_dir: &Path) -> Result<String, String> {
    let _ = std::fs::remove_dir_all(wal_dir);

    let system = SQuery::new(config(wal_dir)).map_err(|e| format!("first start failed: {e}"))?;
    set_schemas(&system);
    let ssid = populate(&system);
    let pre_kill = capture(&system, ssid)?;
    drop(system); // the kill: nothing survives but the directory

    let system = SQuery::new(config(wal_dir)).map_err(|e| format!("cold start failed: {e}"))?;
    set_schemas(&system);
    let recovered = system
        .latest_snapshot()
        .ok_or_else(|| "cold start recovered no committed snapshot".to_string())?;
    if recovered != ssid {
        return Err(format!(
            "cold start recovered v{} instead of v{}",
            recovered.0, ssid.0
        ));
    }
    let post_kill = capture(&system, ssid)?;
    if post_kill != pre_kill {
        return Err(format!(
            "recovered results differ from pre-kill results:\n--- pre-kill\n{pre_kill}\n--- recovered\n{post_kill}"
        ));
    }

    let _ = std::fs::remove_dir_all(wal_dir);
    Ok(format!("v{}|{post_kill}", recovered.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_q4_and_q6_survive_a_cold_start_byte_identically() {
        let dir =
            std::env::temp_dir().join(format!("squery-workload-durability-{}", std::process::id()));
        let fingerprint = run_workload_kill_restart(&dir).unwrap();
        assert!(fingerprint.starts_with("v1|q1:"));
        assert!(fingerprint.contains("nexmark_q6:"));
        assert!(fingerprint.contains("direct_maxbid:"));
    }
}
