//! The grid: this reproduction's Hazelcast IMDG.
//!
//! One [`Grid`] per cluster. It owns the partition table, the snapshot
//! registry, every operator's live-state map and snapshot store, and the
//! replication service. The stream engine and the query system both talk to
//! the same grid — that shared state store *is* the architecture of the
//! paper's Figure 1.

use crate::imap::IMap;
use crate::partition_table::PartitionTable;
use crate::registry::{SnapshotFreshness, SnapshotRegistry};
use crate::replication::{ReplOp, Replicator};
use crate::snapshot::SnapshotStore;
use crate::stats::StateStats;
use crate::wal::{StoreWal, WalManager};
use parking_lot::RwLock;
use squery_common::config::ClusterConfig;
use squery_common::fault::FaultInjector;
use squery_common::lockorder::{self, LockClass};
use squery_common::telemetry::{EventKind, MetricsRegistry};
use squery_common::{NodeId, Partitioner, SnapshotId, SqError, SqResult, Value};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Prefix distinguishing snapshot tables from live tables (paper §V-B).
pub const SNAPSHOT_TABLE_PREFIX: &str = "snapshot_";

/// The partitioned in-memory data grid.
pub struct Grid {
    config: ClusterConfig,
    partitioner: Partitioner,
    partition_table: PartitionTable,
    registry: SnapshotRegistry,
    maps: RwLock<HashMap<String, Arc<IMap>>>,
    snapshots: RwLock<HashMap<String, Arc<SnapshotStore>>>,
    replicator: Option<Arc<Replicator>>,
    telemetry: MetricsRegistry,
    faults: RwLock<Option<Arc<FaultInjector>>>,
    stats: StateStats,
    /// Durable snapshot WAL, when the deployment configured one (first
    /// attach wins; absent by default so in-memory deployments pay nothing).
    wal: OnceLock<Arc<WalManager>>,
}

impl Grid {
    /// Build a grid for `config`. Replication starts if `backup_count > 0`.
    pub fn new(config: ClusterConfig) -> SqResult<Arc<Grid>> {
        Grid::new_with_telemetry(config, MetricsRegistry::new())
    }

    /// Build a grid recording into a caller-provided telemetry registry
    /// (how `SQueryConfig` controls the event-ring capacity and span
    /// tracing: build the registry, then hand it to the grid).
    pub fn new_with_telemetry(
        config: ClusterConfig,
        telemetry: MetricsRegistry,
    ) -> SqResult<Arc<Grid>> {
        config.validate()?;
        let partitioner = Partitioner::new(config.partitions);
        let partition_table =
            PartitionTable::new(config.partitions, config.nodes, config.backup_count)?;
        let replicator = if config.backup_count > 0 {
            Some(Arc::new(Replicator::start(config.network)))
        } else {
            None
        };
        Ok(Arc::new(Grid {
            config,
            partitioner,
            partition_table,
            registry: SnapshotRegistry::new(),
            maps: RwLock::new(HashMap::new()),
            snapshots: RwLock::new(HashMap::new()),
            replicator,
            telemetry,
            faults: RwLock::new(None),
            stats: StateStats::new(),
            wal: OnceLock::new(),
        }))
    }

    /// A single-node grid with defaults — the standard test fixture.
    pub fn single_node() -> Arc<Grid> {
        Grid::new(ClusterConfig::single_node()).expect("default config is valid")
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared partitioner (also used by the stream engine's exchanges).
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The partition table.
    pub fn partition_table(&self) -> &PartitionTable {
        &self.partition_table
    }

    /// The snapshot registry (2PC commit point, retention authority).
    pub fn registry(&self) -> &SnapshotRegistry {
        &self.registry
    }

    /// The engine-wide metrics/event registry. Every map and snapshot store
    /// created through the grid is attached to it; the stream engine, SQL
    /// engine, and `sys_*` tables all share this one instance.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Attach a fault injector. The grid is the rendezvous point: the
    /// stream engine, the replicator, and the `sys_faults` table all reach
    /// the injector through here, so one attach covers every subsystem.
    pub fn attach_fault_injector(&self, injector: Arc<FaultInjector>) {
        if let Some(r) = &self.replicator {
            r.set_fault_injector(Arc::clone(&injector));
        }
        if let Some(wal) = self.wal.get() {
            wal.attach_fault_injector(Arc::clone(&injector));
        }
        let _lo = lockorder::acquired(LockClass::GridCatalog);
        *self.faults.write() = Some(injector);
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        let _lo = lockorder::acquired(LockClass::GridCatalog);
        self.faults.read().clone()
    }

    /// Attach the durable snapshot WAL (first attach wins). Wires telemetry
    /// and any already-attached fault injector into the manager, and hooks
    /// every existing snapshot store; stores created later hook on creation.
    pub fn attach_wal(&self, manager: Arc<WalManager>) {
        manager.attach_telemetry(&self.telemetry);
        if let Some(injector) = self.fault_injector() {
            manager.attach_fault_injector(injector);
        }
        if self.wal.set(Arc::clone(&manager)).is_err() {
            return;
        }
        let stores: Vec<(String, Arc<SnapshotStore>)> = {
            let _lo = lockorder::acquired(LockClass::GridCatalog);
            self.snapshots
                .read()
                .iter()
                .map(|(op, s)| (op.clone(), Arc::clone(s)))
                .collect()
        };
        let partitions = self.partitioner.partition_count() as usize;
        for (op, store) in stores {
            store.attach_wal(manager.store_wal(&op, partitions));
        }
    }

    /// The attached WAL manager, if any.
    pub fn wal(&self) -> Option<&Arc<WalManager>> {
        self.wal.get()
    }

    /// Durably seal checkpoint round `ssid` in the WAL (no-op when no WAL
    /// is attached). The checkpoint coordinator calls this between phase-1
    /// completion and the registry's in-memory commit, so the on-disk and
    /// in-memory commit points coincide.
    pub fn wal_seal(&self, ssid: SnapshotId) -> SqResult<()> {
        match self.wal.get() {
            Some(wal) => wal.seal_round(ssid.0),
            None => Ok(()),
        }
    }

    /// [`wal_seal`](Self::wal_seal), stamping the commit record with the
    /// round's global low watermark and seal time — both in µs since the
    /// unix epoch, so the snapshot's freshness survives a cold start as a
    /// true age rather than a process-relative reading.
    pub fn wal_seal_with(
        &self,
        ssid: SnapshotId,
        watermark_us: u64,
        sealed_at_us: u64,
    ) -> SqResult<()> {
        match self.wal.get() {
            Some(wal) => wal.seal_round_with(ssid.0, watermark_us, sealed_at_us),
            None => Ok(()),
        }
    }

    /// Cold-start recovery: rebuild every snapshot store from the attached
    /// WAL directory and seed the registry with the sealed rounds, so
    /// queries answer from the restored committed version immediately.
    ///
    /// Returns the latest recovered snapshot id, or `None` when the log
    /// holds no sealed rounds (fresh directory, or every round was torn).
    pub fn recover_from_wal(&self) -> SqResult<Option<SnapshotId>> {
        let Some(manager) = self.wal.get() else {
            return Ok(None);
        };
        let mut span = self.telemetry.spans().start("wal_recover");
        let recovery = manager.recover(self.partitioner.partition_count() as usize)?;
        let partitions = self.partitioner.partition_count() as usize;
        let mut restored_stores = 0u64;
        for (op, store_rec) in &recovery.stores {
            // Segment directories are named by operator, so recovery can
            // recreate the store exactly as a live deployment would.
            let store = self.snapshot_store(op);
            store.attach_wal(manager.store_wal(op, partitions));
            StoreWal::apply_recovery(&store, store_rec);
            restored_stores += 1;
        }
        let sealed: Vec<SnapshotId> = recovery.sealed.iter().map(|&s| SnapshotId(s)).collect();
        // Each sealed round restores with the freshness its seal record
        // carried (zeros for pre-freshness history).
        let fresh_by_ssid: HashMap<u64, SnapshotFreshness> = recovery
            .freshness
            .iter()
            .map(|&(ssid, wm, at)| {
                (
                    ssid,
                    SnapshotFreshness {
                        watermark_us: wm,
                        sealed_at_us: at,
                    },
                )
            })
            .collect();
        let restored: Vec<(SnapshotId, SnapshotFreshness)> = sealed
            .iter()
            .map(|&s| (s, fresh_by_ssid.get(&s.0).copied().unwrap_or_default()))
            .collect();
        self.registry.restore_committed_with_freshness(&restored);
        span.label("stores", restored_stores);
        span.label("sealed_rounds", sealed.len() as u64);
        if recovery.torn_truncations > 0 {
            self.telemetry.event(
                EventKind::WalTornTail,
                None,
                sealed.last().map(|s| s.0),
                None,
                format!(
                    "discarded {} torn WAL tail(s) during recovery",
                    recovery.torn_truncations
                ),
            );
        }
        let latest = sealed.last().copied();
        self.telemetry.event(
            EventKind::WalRecovered,
            None,
            latest.map(|s| s.0),
            Some(recovery.elapsed_us),
            format!(
                "rebuilt {restored_stores} store(s), {} sealed round(s)",
                sealed.len()
            ),
        );
        if latest.is_some() {
            // Re-anchor the continuous statistics baselines on the restored
            // state, exactly as a supervisor restart does.
            self.stats.note_recovery(self);
        }
        Ok(latest)
    }

    /// Continuous state statistics: always-on accounting rollups plus the
    /// sampled key-distribution sketches.
    pub fn stats(&self) -> &StateStats {
        &self.stats
    }

    /// Arm or disarm stats sampling on every live map, current and future.
    pub fn arm_stats(&self, on: bool) {
        self.stats.set_armed(on);
        let maps: Vec<Arc<IMap>> = {
            let _lo = lockorder::acquired(LockClass::GridCatalog);
            self.maps.read().values().cloned().collect()
        };
        for map in maps {
            map.arm_stats(on);
        }
    }

    /// The node currently owning `key`'s partition.
    pub fn node_of_key(&self, key: &Value) -> NodeId {
        self.partition_table
            .primary_of(self.partitioner.partition_of(key))
    }

    /// Get-or-create the live-state map named `name`.
    ///
    /// Creation wires the replication listener when backups are enabled.
    pub fn map(&self, name: &str) -> Arc<IMap> {
        let _lo = lockorder::acquired(LockClass::GridCatalog);
        if let Some(m) = self.maps.read().get(name) {
            return Arc::clone(m);
        }
        let mut maps = self.maps.write();
        if let Some(m) = maps.get(name) {
            return Arc::clone(m);
        }
        let map = Arc::new(IMap::new(name, self.partitioner));
        map.attach_telemetry(&self.telemetry);
        map.arm_stats(self.stats.is_armed());
        if let Some(repl) = &self.replicator {
            let repl = Arc::clone(repl);
            let map_name = name.to_string();
            map.set_write_listener(Arc::new(move |pid, key, value| {
                let op = match value {
                    Some(v) => ReplOp::Put {
                        map: map_name.clone(),
                        pid,
                        key: key.clone(),
                        value: v.clone(),
                    },
                    None => ReplOp::Remove {
                        map: map_name.clone(),
                        pid,
                        key: key.clone(),
                    },
                };
                repl.enqueue(op);
            }));
        }
        maps.insert(name.to_string(), Arc::clone(&map));
        map
    }

    /// The live-state map named `name`, if it exists.
    pub fn get_map(&self, name: &str) -> Option<Arc<IMap>> {
        let _lo = lockorder::acquired(LockClass::GridCatalog);
        self.maps.read().get(name).cloned()
    }

    /// Get-or-create the snapshot store for operator `operator_name`
    /// (its table name becomes `snapshot_<operator_name>`).
    pub fn snapshot_store(&self, operator_name: &str) -> Arc<SnapshotStore> {
        let _lo = lockorder::acquired(LockClass::GridCatalog);
        if let Some(s) = self.snapshots.read().get(operator_name) {
            return Arc::clone(s);
        }
        let mut stores = self.snapshots.write();
        if let Some(s) = stores.get(operator_name) {
            return Arc::clone(s);
        }
        let store = Arc::new(SnapshotStore::new(operator_name, self.partitioner));
        store.attach_telemetry(&self.telemetry);
        if let Some(wal) = self.wal.get() {
            store.attach_wal(
                wal.store_wal(operator_name, self.partitioner.partition_count() as usize),
            );
        }
        stores.insert(operator_name.to_string(), Arc::clone(&store));
        store
    }

    /// The snapshot store for operator `operator_name`, if it exists.
    pub fn get_snapshot_store(&self, operator_name: &str) -> Option<Arc<SnapshotStore>> {
        let _lo = lockorder::acquired(LockClass::GridCatalog);
        self.snapshots.read().get(operator_name).cloned()
    }

    /// Resolve a SQL table name: `snapshot_<op>` names a snapshot store,
    /// anything else names a live map.
    pub fn table_exists(&self, table: &str) -> bool {
        match table.strip_prefix(SNAPSHOT_TABLE_PREFIX) {
            Some(op) => self.snapshots.read().contains_key(op),
            None => self.maps.read().contains_key(table),
        }
    }

    /// Names of all live-state maps.
    pub fn map_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.maps.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Table names of all snapshot stores (`snapshot_<op>`).
    pub fn snapshot_table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .snapshots
            .read()
            .keys()
            .map(|op| format!("{SNAPSHOT_TABLE_PREFIX}{op}"))
            .collect();
        names.sort();
        names
    }

    /// Every queryable table name (live + snapshot), sorted.
    pub fn all_table_names(&self) -> Vec<String> {
        let mut names = self.map_names();
        names.extend(self.snapshot_table_names());
        names.sort();
        names
    }

    /// Block until asynchronous replication has drained (tests/failover).
    pub fn flush_replication(&self) {
        if let Some(r) = &self.replicator {
            r.flush();
        }
    }

    /// Simulate the failure of `node`: its partitions lose their primary
    /// live-state copies; the partition table promotes backups; with
    /// replication enabled the promoted backups' data is restored into the
    /// live maps. Returns the partitions that changed owner.
    ///
    /// (Snapshot stores are durable in this reproduction — the paper stores
    /// them replicated in the grid, and recovery reads them back; modelling
    /// their loss would only exercise the same promotion path again.)
    pub fn fail_node(&self, node: NodeId) -> SqResult<Vec<squery_common::PartitionId>> {
        if node.0 >= self.config.nodes {
            return Err(SqError::Storage(format!("unknown node {node}")));
        }
        if let Some(r) = &self.replicator {
            r.flush();
        }
        let promoted = self.partition_table.fail_node(node)?;
        let maps: Vec<Arc<IMap>> = self.maps.read().values().cloned().collect();
        for map in maps {
            map.clear_partitions(&promoted);
            if let Some(r) = &self.replicator {
                let restored = r.backups_of(map.name(), &promoted);
                map.load_silent(restored);
            }
        }
        if let Some(injector) = self.fault_injector() {
            injector.on_node_loss(node.0, promoted.len());
        }
        Ok(promoted)
    }

    /// Total approximate bytes of live state across maps.
    pub fn total_live_bytes(&self) -> usize {
        self.maps
            .read()
            .values()
            .map(|m| m.approximate_bytes())
            .sum()
    }

    /// Total approximate bytes of snapshot state across stores.
    pub fn total_snapshot_bytes(&self) -> usize {
        self.snapshots
            .read()
            .values()
            .map(|s| s.stats().approx_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_get_or_create_is_idempotent() {
        let g = Grid::single_node();
        let a = g.map("average");
        let b = g.map("average");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(g.map_names(), vec!["average"]);
        assert!(g.get_map("average").is_some());
        assert!(g.get_map("missing").is_none());
    }

    #[test]
    fn snapshot_store_naming_convention() {
        let g = Grid::single_node();
        let s = g.snapshot_store("statefulmap");
        assert_eq!(s.name(), "snapshot_statefulmap");
        assert_eq!(g.snapshot_table_names(), vec!["snapshot_statefulmap"]);
        assert!(g.table_exists("snapshot_statefulmap"));
        assert!(!g.table_exists("snapshot_other"));
    }

    #[test]
    fn all_table_names_combines_live_and_snapshot() {
        let g = Grid::single_node();
        g.map("orderinfo");
        g.snapshot_store("orderinfo");
        g.snapshot_store("orderstate");
        assert_eq!(
            g.all_table_names(),
            vec!["orderinfo", "snapshot_orderinfo", "snapshot_orderstate"]
        );
    }

    #[test]
    fn node_of_key_follows_partition_table() {
        let g = Grid::new(ClusterConfig::simulated(3)).unwrap();
        for i in 0..100i64 {
            let key = Value::Int(i);
            let node = g.node_of_key(&key);
            assert!(node.0 < 3);
            let pid = g.partitioner().partition_of(&key);
            assert_eq!(node, g.partition_table().primary_of(pid));
        }
    }

    #[test]
    fn failover_restores_live_state_from_backups() {
        let mut config = ClusterConfig::simulated(3);
        config.network = squery_common::config::NetworkConfig::instant();
        let g = Grid::new(config).unwrap();
        let m = g.map("orders");
        for i in 0..300i64 {
            m.put(Value::Int(i), Value::Int(i * 10));
        }
        g.flush_replication();
        let victim = NodeId(0);
        let owned_parts = g.partition_table().partitions_of(victim);
        assert!(!owned_parts.is_empty());
        let promoted = g.fail_node(victim).unwrap();
        assert_eq!(promoted, owned_parts);
        // Every key is still readable after promotion.
        for i in 0..300i64 {
            assert_eq!(
                m.get(&Value::Int(i)),
                Some(Value::Int(i * 10)),
                "key {i} lost in failover"
            );
        }
    }

    #[test]
    fn failover_without_replication_loses_partitions() {
        // A 1-node cluster has no backups; failing the only node is an error
        // (no backup to promote).
        let g = Grid::single_node();
        g.map("m").put(Value::Int(1), Value::Int(1));
        assert!(g.fail_node(NodeId(0)).is_err());
        assert!(g.fail_node(NodeId(9)).is_err(), "unknown node rejected");
    }

    #[test]
    fn byte_totals_aggregate() {
        let g = Grid::single_node();
        assert_eq!(g.total_live_bytes(), 0);
        g.map("a").put(Value::Int(1), Value::str("x"));
        g.map("b").put(Value::Int(2), Value::str("y"));
        assert!(g.total_live_bytes() > 0);
        let s = g.snapshot_store("a");
        s.write_partition(
            squery_common::SnapshotId(1),
            g.partitioner().partition_of(&Value::Int(1)),
            vec![(Value::Int(1), Some(Value::str("x")))],
            true,
        );
        assert!(g.total_snapshot_bytes() > 0);
    }

    #[test]
    fn fail_node_records_node_loss_fault() {
        use squery_common::fault::{FaultInjector, FaultPlan, InjectionPoint};
        let mut config = ClusterConfig::simulated(3);
        config.network = squery_common::config::NetworkConfig::instant();
        let g = Grid::new(config).unwrap();
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(0)));
        g.attach_fault_injector(Arc::clone(&injector));
        g.map("m").put(Value::Int(1), Value::Int(1));
        let promoted = g.fail_node(NodeId(1)).unwrap();
        let records = injector.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].point, InjectionPoint::NodeLoss);
        assert_eq!(records[0].outcome, format!("promoted_{}", promoted.len()));
        assert!(g.fault_injector().is_some());
    }

    #[test]
    fn registry_is_shared() {
        let g = Grid::single_node();
        let s = g.registry().begin().unwrap();
        g.registry().commit(s).unwrap();
        assert_eq!(g.registry().latest_committed(), s);
    }

    #[test]
    fn wal_round_trip_through_grid_cold_start() {
        use crate::wal::{FsyncMode, WalManager};
        let dir = std::env::temp_dir().join(format!("squery-grid-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First incarnation: two committed rounds, one unsealed attempt.
        {
            let g = Grid::single_node();
            g.attach_wal(Arc::new(WalManager::new(&dir, FsyncMode::Never, 4)));
            let store = g.snapshot_store("counts");
            for round in 1..=2u64 {
                let ssid = g.registry().begin().unwrap();
                assert_eq!(ssid.0, round);
                let key = Value::Int(7);
                store.write_partition(
                    ssid,
                    store.partition_of(&key),
                    vec![(key, Some(Value::Int(round as i64 * 10)))],
                    round == 1,
                );
                g.wal_seal(ssid).unwrap();
                g.registry().commit(ssid).unwrap();
            }
            // Phase-1 of round 3 reaches the disk but never seals.
            let ssid = g.registry().begin().unwrap();
            let key = Value::Int(7);
            store.write_partition(
                ssid,
                store.partition_of(&key),
                vec![(key, Some(Value::Int(999)))],
                false,
            );
        }

        // Cold start: a brand-new grid over the same directory.
        let g2 = Grid::single_node();
        g2.attach_wal(Arc::new(WalManager::new(&dir, FsyncMode::Never, 4)));
        let latest = g2.recover_from_wal().unwrap();
        assert_eq!(latest, Some(squery_common::SnapshotId(2)));
        assert_eq!(g2.registry().latest_committed().0, 2);
        let store = g2.get_snapshot_store("counts").expect("store recovered");
        assert_eq!(
            store
                .read_at(squery_common::SnapshotId(2), &Value::Int(7))
                .unwrap(),
            Some(Value::Int(20)),
            "recovered state must answer from the last sealed round"
        );
        // The unsealed round-3 write is gone.
        assert_eq!(store.stored_ssids().len(), 2);
        // Post-restart checkpoints continue past recovered history.
        assert_eq!(g2.registry().begin().unwrap().0, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
