//! Key-level lock striping.
//!
//! The paper (§VII-B): *"S-QUERY protects state updates from read actions via
//! key-level locking for the duration of access to each key-value pair"* —
//! this is what lifts live-state queries to read committed in the absence of
//! failures. A full lock per key would be wasteful; like most KV stores we
//! stripe: a fixed pool of mutexes per partition, a key locks the stripe its
//! hash selects. Two distinct keys may share a stripe (false sharing of the
//! lock, never of the data), which preserves correctness.

use parking_lot::{Mutex, MutexGuard};
use squery_common::lockorder::{self, LockClass, LockOrderGuard};
use squery_common::partition::hash_key;
use squery_common::Value;

/// Number of stripes per [`LockStripes`] pool. Power of two for cheap masking.
pub const STRIPES_PER_POOL: usize = 64;

/// Guard for one key stripe; the key's lock is held until this drops.
///
/// Carries the runtime lock-order tracking entry so the stripe counts as
/// held (class [`LockClass::KeyStripe`]) for exactly the guard's lifetime.
#[must_use = "the stripe unlocks immediately if the guard is dropped"]
pub struct StripeGuard<'a> {
    // Field order is drop order: release the stripe before retiring its
    // lock-order entry, so the tracker never under-reports what is held.
    _guard: MutexGuard<'a, ()>,
    _order: LockOrderGuard,
}

/// A mutex whose every acquisition registers with the runtime lock-order
/// tracker under a fixed [`LockClass`].
///
/// [`StripeGuard`] bakes its class in because key stripes are the hot
/// path; everything else that wants tracked locking without repeating the
/// `lockorder::acquired` + `lock` pair wraps its state in one of these.
/// The WAL uses it for segment files and the commit log (class
/// [`LockClass::WalSegment`]) and its store catalog
/// ([`LockClass::GridCatalog`]).
pub struct ClassedMutex<T> {
    class: LockClass,
    inner: Mutex<T>,
}

/// Guard for a [`ClassedMutex`]; derefs to the protected value.
#[must_use = "the lock releases immediately if the guard is dropped"]
pub struct ClassedGuard<'a, T> {
    // Field order is drop order: release the mutex before retiring its
    // lock-order entry (same invariant as StripeGuard).
    guard: MutexGuard<'a, T>,
    _order: LockOrderGuard,
}

impl<T> std::ops::Deref for ClassedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for ClassedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> ClassedMutex<T> {
    /// Wrap `value` in a mutex tracked under `class`.
    pub fn new(class: LockClass, value: T) -> ClassedMutex<T> {
        ClassedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Acquire, registering the acquisition with the lock-order tracker.
    pub fn lock(&self) -> ClassedGuard<'_, T> {
        let order = lockorder::acquired(self.class);
        ClassedGuard {
            guard: self.inner.lock(),
            _order: order,
        }
    }
}

/// A pool of striped key-level locks.
pub struct LockStripes {
    stripes: Vec<Mutex<()>>,
}

impl LockStripes {
    /// A pool with the default stripe count.
    pub fn new() -> LockStripes {
        LockStripes::with_stripes(STRIPES_PER_POOL)
    }

    /// A pool with `n` stripes (rounded up to a power of two, minimum 1).
    pub fn with_stripes(n: usize) -> LockStripes {
        let n = n.max(1).next_power_of_two();
        LockStripes {
            stripes: (0..n).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether the pool is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    fn stripe_of(&self, key: &Value) -> usize {
        (hash_key(key) as usize) & (self.stripes.len() - 1)
    }

    /// Acquire the key's lock; released when the guard drops.
    ///
    /// This is the "duration of access to each key-value pair" lock of
    /// §VII-B: held across one read or one write, not across a whole query
    /// (that would be the repeatable-read design the paper rejects for its
    /// performance cost).
    pub fn lock(&self, key: &Value) -> StripeGuard<'_> {
        let order = lockorder::acquired(LockClass::KeyStripe);
        StripeGuard {
            _guard: self.stripes[self.stripe_of(key)].lock(),
            _order: order,
        }
    }

    /// Acquire the key's lock and report how long the acquisition waited.
    ///
    /// The fast path (uncontended stripe) is a `try_lock` and reports zero
    /// without consulting the clock; only a contended acquisition pays for
    /// two `Instant` reads. Telemetry feeds the `*_lock_wait_us` histograms
    /// and, above a threshold, `lock_contention` engine events.
    pub fn lock_timed(&self, key: &Value) -> (StripeGuard<'_>, u64) {
        let order = lockorder::acquired(LockClass::KeyStripe);
        let stripe = &self.stripes[self.stripe_of(key)];
        if let Some(guard) = stripe.try_lock() {
            return (
                StripeGuard {
                    _guard: guard,
                    _order: order,
                },
                0,
            );
        }
        let start = std::time::Instant::now();
        let guard = stripe.lock();
        (
            StripeGuard {
                _guard: guard,
                _order: order,
            },
            start.elapsed().as_micros() as u64,
        )
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self, key: &Value) -> Option<StripeGuard<'_>> {
        let order = lockorder::acquired(LockClass::KeyStripe);
        self.stripes[self.stripe_of(key)]
            .try_lock()
            .map(|guard| StripeGuard {
                _guard: guard,
                _order: order,
            })
    }

    /// Whether two keys would contend on the same stripe.
    pub fn same_stripe(&self, a: &Value, b: &Value) -> bool {
        self.stripe_of(a) == self.stripe_of(b)
    }
}

impl Default for LockStripes {
    fn default() -> Self {
        LockStripes::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn classed_mutex_locks_and_derefs() {
        let m = ClassedMutex::new(LockClass::WalSegment, 41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(LockStripes::with_stripes(3).len(), 4);
        assert_eq!(LockStripes::with_stripes(64).len(), 64);
        assert_eq!(LockStripes::with_stripes(0).len(), 1);
        assert!(!LockStripes::new().is_empty());
    }

    #[test]
    fn same_key_always_same_stripe() {
        let l = LockStripes::new();
        let k = Value::str("order-42");
        assert!(l.same_stripe(&k, &Value::str("order-42")));
    }

    #[test]
    fn lock_excludes_same_key() {
        let l = LockStripes::new();
        let k = Value::Int(7);
        let g = l.lock(&k);
        assert!(l.try_lock(&k).is_none(), "second lock must fail while held");
        drop(g);
        assert!(l.try_lock(&k).is_some(), "lock must be free after drop");
    }

    #[test]
    fn lock_timed_is_free_uncontended_and_measures_contention() {
        let locks = Arc::new(LockStripes::with_stripes(1));
        let (g, wait) = locks.lock_timed(&Value::Int(1));
        assert_eq!(wait, 0, "uncontended acquisition must report zero wait");
        let locks2 = Arc::clone(&locks);
        let t = std::thread::spawn(move || {
            let (_g, wait) = locks2.lock_timed(&Value::Int(1));
            wait
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(g);
        let waited = t.join().unwrap();
        assert!(waited >= 5_000, "contended wait was only {waited}us");
    }

    #[test]
    fn concurrent_increments_are_serialized() {
        let locks = Arc::new(LockStripes::with_stripes(4));
        let counter = Arc::new(AtomicU64::new(0));
        let key = Value::str("shared");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let locks = Arc::clone(&locks);
                let counter = Arc::clone(&counter);
                let key = key.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _g = locks.lock(&key);
                        // A non-atomic read-modify-write made safe by the lock.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8000);
    }
}
