//! Asynchronous backup replication.
//!
//! The paper (§V-A): *"each snapshot is first written locally and the KV
//! store can replicate it according to its internal replication strategy"*;
//! live-state writes are likewise local-first with the store replicating in
//! the background. This module is that data plane: a background worker drains
//! a queue of write ops into backup copies, charging the simulated network's
//! transfer delay. The control plane (which node logically holds which backup)
//! lives in [`crate::partition_table::PartitionTable`]; after a node failure
//! the grid promotes backup data for the partitions the failed node owned.
//!
//! Replication is deliberately off the write hot path — enqueueing is a
//! channel send — so enabling backups does not serialize operator progress,
//! matching the paper's local-first design.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use squery_common::codec::encoded_len;
use squery_common::config::NetworkConfig;
use squery_common::fault::{FaultAction, FaultInjector};
use squery_common::lockorder::{self, LockClass};
use squery_common::{PartitionId, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A replicated write operation.
#[derive(Debug, Clone)]
pub enum ReplOp {
    /// Upsert of `key` in `map`'s partition `pid`.
    Put {
        /// Target map name.
        map: String,
        /// Target partition.
        pid: PartitionId,
        /// Entry key.
        key: Value,
        /// New value.
        value: Value,
    },
    /// Removal of `key` from `map`'s partition `pid`.
    Remove {
        /// Target map name.
        map: String,
        /// Target partition.
        pid: PartitionId,
        /// Entry key.
        key: Value,
    },
}

type BackupData = HashMap<(String, u32), HashMap<Value, Value>>;

/// Asynchronous replicator with an inspectable backup store.
pub struct Replicator {
    tx: Sender<ReplOp>,
    backups: Arc<RwLock<BackupData>>,
    pending: Arc<AtomicU64>,
    /// Fault injector slot, shared with the worker thread. The replicator
    /// starts inside `Grid::new`, before any injector can be attached, so
    /// the slot is settable after the fact.
    faults: Arc<RwLock<Option<Arc<FaultInjector>>>>,
    worker: Option<JoinHandle<()>>,
}

impl Replicator {
    /// Start the replication worker. `network` charges per-op transfer delay
    /// (instant networks charge nothing).
    pub fn start(network: NetworkConfig) -> Replicator {
        let (tx, rx): (Sender<ReplOp>, Receiver<ReplOp>) = unbounded();
        let backups: Arc<RwLock<BackupData>> = Arc::new(RwLock::new(HashMap::new()));
        let pending = Arc::new(AtomicU64::new(0));
        let faults: Arc<RwLock<Option<Arc<FaultInjector>>>> = Arc::new(RwLock::new(None));
        let worker_backups = Arc::clone(&backups);
        let worker_pending = Arc::clone(&pending);
        let worker_faults = Arc::clone(&faults);
        let worker = std::thread::Builder::new()
            .name("squery-replicator".into())
            .spawn(move || {
                for op in rx.iter() {
                    if !network.is_instant() {
                        let bytes = match &op {
                            ReplOp::Put { key, value, .. } => encoded_len(key) + encoded_len(value),
                            ReplOp::Remove { key, .. } => encoded_len(key),
                        };
                        std::thread::sleep(network.transfer_delay(bytes));
                    }
                    let injector = {
                        let _lo = lockorder::acquired(LockClass::Replication);
                        worker_faults.read().clone()
                    };
                    if let Some(injector) = injector {
                        let pid = match &op {
                            ReplOp::Put { pid, .. } | ReplOp::Remove { pid, .. } => pid.0,
                        };
                        if let Some(FaultAction::DelayReplication { micros }) =
                            injector.on_replication_op(pid)
                        {
                            // Backlog spike: the queue keeps growing while
                            // this op sits on the wire.
                            std::thread::sleep(Duration::from_micros(micros));
                        }
                    }
                    let _lo = lockorder::acquired(LockClass::Replication);
                    let mut guard = worker_backups.write();
                    match op {
                        ReplOp::Put {
                            map,
                            pid,
                            key,
                            value,
                        } => {
                            guard.entry((map, pid.0)).or_default().insert(key, value);
                        }
                        ReplOp::Remove { map, pid, key } => {
                            if let Some(part) = guard.get_mut(&(map, pid.0)) {
                                part.remove(&key);
                            }
                        }
                    }
                    drop(guard);
                    worker_pending.fetch_sub(1, Ordering::AcqRel);
                }
            })
            .expect("spawn replicator");
        Replicator {
            tx,
            backups,
            pending,
            faults,
            worker: Some(worker),
        }
    }

    /// Attach a fault injector; subsequent backup writes consult it for
    /// `DelayReplication` faults.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        let _lo = lockorder::acquired(LockClass::Replication);
        *self.faults.write() = Some(injector);
    }

    /// Enqueue a replicated write; returns immediately.
    pub fn enqueue(&self, op: ReplOp) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        // The worker only stops when the Replicator drops, so sends succeed.
        let _ = self.tx.send(op);
    }

    /// Number of ops not yet applied to the backup store.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }

    /// Block until every enqueued op has been applied.
    pub fn flush(&self) {
        while self.pending() > 0 {
            std::thread::yield_now();
        }
    }

    /// The backup copy of `map`'s partition `pid` (what a promotion restores).
    pub fn backup_of(&self, map: &str, pid: PartitionId) -> Vec<(Value, Value)> {
        self.backups
            .read()
            .get(&(map.to_string(), pid.0))
            .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default()
    }

    /// Backup copies for several partitions of one map.
    pub fn backups_of(&self, map: &str, pids: &[PartitionId]) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        for pid in pids {
            out.extend(self.backup_of(map, *pid));
        }
        out
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        // Closing the channel ends the worker's iterator.
        drop(std::mem::replace(&mut self.tx, unbounded().0));
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(map: &str, pid: u32, key: i64, value: i64) -> ReplOp {
        ReplOp::Put {
            map: map.into(),
            pid: PartitionId(pid),
            key: Value::Int(key),
            value: Value::Int(value),
        }
    }

    #[test]
    fn puts_reach_backup_store() {
        let r = Replicator::start(NetworkConfig::instant());
        r.enqueue(put("orders", 3, 1, 10));
        r.enqueue(put("orders", 3, 2, 20));
        r.flush();
        let mut b = r.backup_of("orders", PartitionId(3));
        b.sort();
        assert_eq!(
            b,
            vec![
                (Value::Int(1), Value::Int(10)),
                (Value::Int(2), Value::Int(20))
            ]
        );
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn removes_erase_from_backup() {
        let r = Replicator::start(NetworkConfig::instant());
        r.enqueue(put("m", 0, 1, 10));
        r.enqueue(ReplOp::Remove {
            map: "m".into(),
            pid: PartitionId(0),
            key: Value::Int(1),
        });
        r.flush();
        assert!(r.backup_of("m", PartitionId(0)).is_empty());
    }

    #[test]
    fn later_put_wins_in_order() {
        let r = Replicator::start(NetworkConfig::instant());
        for v in 0..100 {
            r.enqueue(put("m", 1, 7, v));
        }
        r.flush();
        assert_eq!(
            r.backup_of("m", PartitionId(1)),
            vec![(Value::Int(7), Value::Int(99))]
        );
    }

    #[test]
    fn backups_of_gathers_multiple_partitions() {
        let r = Replicator::start(NetworkConfig::instant());
        r.enqueue(put("m", 0, 1, 10));
        r.enqueue(put("m", 1, 2, 20));
        r.enqueue(put("other", 0, 3, 30));
        r.flush();
        let mut all = r.backups_of("m", &[PartitionId(0), PartitionId(1)]);
        all.sort();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], (Value::Int(2), Value::Int(20)));
    }

    #[test]
    fn unknown_partition_is_empty() {
        let r = Replicator::start(NetworkConfig::instant());
        assert!(r.backup_of("nope", PartitionId(9)).is_empty());
    }

    #[test]
    fn injected_replication_delay_backs_up_the_queue() {
        use squery_common::fault::{FaultPlan, FaultSpec, FaultTrigger, InjectionPoint};
        let r = Replicator::start(NetworkConfig::instant());
        let plan = FaultPlan::new(0).with(FaultSpec {
            point: InjectionPoint::Replication,
            action: FaultAction::DelayReplication { micros: 20_000 },
            trigger: FaultTrigger::default(),
            once: true,
        });
        let injector = Arc::new(FaultInjector::new(plan));
        r.set_fault_injector(Arc::clone(&injector));
        let start = std::time::Instant::now();
        for v in 0..10 {
            r.enqueue(put("m", 0, v, v));
        }
        r.flush();
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "the delayed op held the queue"
        );
        assert_eq!(injector.fired(), 1, "`once` fault fires a single time");
        assert_eq!(r.backup_of("m", PartitionId(0)).len(), 10, "all ops land");
    }

    #[test]
    fn modelled_network_still_delivers() {
        let net = NetworkConfig {
            latency_us: 10,
            bandwidth_bytes_per_sec: 1_000_000_000,
        };
        let r = Replicator::start(net);
        r.enqueue(put("m", 0, 1, 1));
        r.flush();
        assert_eq!(r.backup_of("m", PartitionId(0)).len(), 1);
    }
}
