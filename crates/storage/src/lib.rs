//! # squery-storage
//!
//! The partitioned in-memory key-value grid — this reproduction's analogue of
//! Hazelcast IMDG, the state store S-QUERY uses (paper §VI-A).
//!
//! A [`grid::Grid`] hosts:
//!
//! * **Live-state maps** ([`imap::IMap`]) — one distributed map per stateful
//!   operator, named after the operator (paper §V-B, Table I). The stream
//!   engine write-throughs every state update into it; external queries read
//!   it live. Keys hash to one of 271 partitions via the *same*
//!   [`squery_common::Partitioner`] the engine's keyed exchange uses, so an
//!   operator instance's updates always land in partitions whose primary
//!   replica lives on the instance's own node (the co-partitioning
//!   optimization of §II/§V-A).
//! * **Snapshot stores** ([`snapshot::SnapshotStore`]) — one per operator,
//!   named `snapshot_<operator>` (Table II), holding `(key, snapshot id) →
//!   state object` entries. Supports full and incremental snapshots, version
//!   retention with pruning, and the backwards differential read the paper
//!   describes for incremental snapshots (§VI-A).
//! * **The snapshot registry** ([`registry::SnapshotRegistry`]) — the 2PC
//!   commit point: the latest *committed* snapshot id is published atomically
//!   so that every query sees a consistent, fully-acknowledged snapshot
//!   ("S-QUERY ensures that the latest snapshot is atomically acknowledged
//!   across the distributed system", §VI-A).
//! * **Key-level locks** ([`locks::LockStripes`]) — the mechanism behind the
//!   read-committed guarantee for live queries absent failures (§VII-B).
//! * **The write-ahead log** ([`wal::WalManager`], optional) — CRC-checked
//!   per-partition segment files plus a store-spanning commit log that give
//!   snapshot state a crash-consistent disk footprint: phase-1 writes append
//!   delta records, phase 2 seals the round with one commit record, and a
//!   cold start replays sealed rounds back into the snapshot stores.
//! * **Replication** ([`replication::Replicator`]) — asynchronous backup
//!   copies per partition; on node failure the backup is promoted, mirroring
//!   "if a node fails, the respective operator can be scheduled on the node
//!   holding that snapshot's replica" (§V-A).

pub mod grid;
pub mod imap;
pub mod locks;
pub mod partition_table;
pub mod registry;
pub mod replication;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use grid::Grid;
pub use imap::{IMap, PartitionStats};
pub use registry::{SnapshotFreshness, SnapshotRegistry};
pub use snapshot::{ExecCached, SnapshotMode, SnapshotStore};
pub use stats::{StateStats, TableStats};
pub use wal::{FsyncMode, StoreWal, WalManager, WalStoreStats};
