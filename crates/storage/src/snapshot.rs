//! `SnapshotStore`: the queryable **snapshot state** of one operator.
//!
//! Mirrors the paper's Table II — entries are addressed by `(key, snapshot
//! id)` and the store is named `snapshot_<operator>` (§V-B). Two snapshot
//! modes (§VI-A):
//!
//! * **Full** — every checkpoint writes the operator's complete state for the
//!   new snapshot id. Reads at a snapshot id hit exactly one version map.
//! * **Incremental** — each checkpoint records only the keys that changed
//!   since the previous one (plus tombstones for removals). A read "starts
//!   from the latest snapshot of interest … and goes backwards to supplement
//!   the query results with the latest state updates for other keys" — the
//!   differential walk whose growing cost the paper measures in Figures 12
//!   and 13, and which [`SnapshotStore::prune_below`] bounds by folding old
//!   deltas into a new complete base ("S-QUERY prunes obsolete states").
//!
//! The store itself is version-agnostic about commit status: the snapshot
//! registry decides which ids are committed/queryable; aborted checkpoint
//! attempts are erased with [`SnapshotStore::discard`].

use crate::wal::StoreWal;
use parking_lot::{Mutex, RwLock};
use squery_common::codec::encoded_len;
use squery_common::lockorder::{self, LockClass};
use squery_common::metrics::SharedHistogram;
use squery_common::schema::Schema;
use squery_common::telemetry::{Counter, MetricsRegistry};
use squery_common::{PartitionId, Partitioner, SnapshotId, SqError, SqResult, Value};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// An opaque executor-cache value: a derived read-only structure (decoded
/// column batches, a frozen join table) memoized over committed — hence
/// immutable — snapshot state. The store is deliberately type-agnostic; the
/// query layer downcasts.
pub type ExecCached = Arc<dyn Any + Send + Sync>;

/// Cache key: what was derived (`kind`), from which pinned snapshot ids,
/// which slice (or `u32::MAX` for whole-scan structures), and which schema
/// columns it covers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ExecCacheKey {
    kind: String,
    ssids: Vec<SnapshotId>,
    slice: u32,
    cols: Vec<usize>,
}

/// Per-store handles into the engine-wide [`MetricsRegistry`].
struct StoreTelemetry {
    writes: Counter,
    reads: Counter,
    scans: Counter,
    write_us: SharedHistogram,
    read_us: SharedHistogram,
    scan_us: SharedHistogram,
}

/// Whether checkpoints record complete state or per-checkpoint deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Every checkpoint stores the operator's whole state.
    Full,
    /// Every checkpoint stores only changed keys (`None` = removal).
    Incremental,
}

/// One checkpoint's worth of entries for one partition.
struct VersionMap {
    /// A complete view (base) rather than a delta.
    full: bool,
    /// `None` values are tombstones (key removed in this checkpoint).
    entries: HashMap<Value, Option<Value>>,
}

#[derive(Default)]
struct PartitionSnapshots {
    versions: BTreeMap<u64, VersionMap>,
}

/// Aggregate statistics, used by the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Distinct snapshot ids currently stored (across partitions).
    pub retained_versions: usize,
    /// Total stored `(key, ssid)` entries including tombstones.
    pub stored_entries: usize,
    /// Approximate encoded bytes of all stored entries.
    pub approx_bytes: usize,
}

/// The snapshot state store for a single stateful operator.
pub struct SnapshotStore {
    name: String,
    partitioner: Partitioner,
    parts: Vec<RwLock<PartitionSnapshots>>,
    value_schema: RwLock<Option<Arc<Schema>>>,
    /// Snapshot ids below this have been pruned; reads there are errors.
    pruned_below: AtomicU64,
    approx_bytes: AtomicU64,
    telemetry: RwLock<Option<Arc<StoreTelemetry>>>,
    /// Memoized executor structures over committed snapshots. Entries for
    /// snapshot ids older than the newest inserted one are evicted on
    /// insert, bounding the cache to roughly one snapshot's worth of
    /// derived state per store.
    exec_cache: Mutex<HashMap<ExecCacheKey, ExecCached>>,
    /// Durable WAL for this store, when the deployment enabled one
    /// (first attach wins). Phase-1 writes append here *before* touching
    /// the in-memory partition, aborts truncate, prunes compact.
    wal: OnceLock<Arc<StoreWal>>,
}

impl SnapshotStore {
    /// An empty store named `snapshot_<operator>`.
    pub fn new(operator_name: &str, partitioner: Partitioner) -> SnapshotStore {
        SnapshotStore {
            name: format!("snapshot_{operator_name}"),
            partitioner,
            parts: (0..partitioner.partition_count())
                .map(|_| RwLock::new(PartitionSnapshots::default()))
                .collect(),
            value_schema: RwLock::new(None),
            pruned_below: AtomicU64::new(0),
            approx_bytes: AtomicU64::new(0),
            telemetry: RwLock::new(None),
            exec_cache: Mutex::new(HashMap::new()),
            wal: OnceLock::new(),
        }
    }

    /// Attach the durable WAL this store appends to (first attach wins).
    pub fn attach_wal(&self, wal: Arc<StoreWal>) {
        let _ = self.wal.set(wal);
    }

    /// Look up a memoized executor structure. Returns a clone of the `Arc`
    /// slot; the caller downcasts to the concrete type it stored.
    pub fn exec_cache_get(
        &self,
        kind: &str,
        ssids: &[SnapshotId],
        slice: u32,
        cols: &[usize],
    ) -> Option<ExecCached> {
        let key = ExecCacheKey {
            kind: kind.to_string(),
            ssids: ssids.to_vec(),
            slice,
            cols: cols.to_vec(),
        };
        let _lo = lockorder::acquired(LockClass::ExecCache);
        self.exec_cache.lock().get(&key).cloned()
    }

    /// Memoize an executor structure derived from the given committed
    /// snapshots. Inserting a structure for a newer snapshot evicts every
    /// entry that only covers older ones.
    pub fn exec_cache_put(
        &self,
        kind: &str,
        ssids: &[SnapshotId],
        slice: u32,
        cols: &[usize],
        value: ExecCached,
    ) {
        let key = ExecCacheKey {
            kind: kind.to_string(),
            ssids: ssids.to_vec(),
            slice,
            cols: cols.to_vec(),
        };
        let newest = ssids.iter().copied().max();
        let _lo = lockorder::acquired(LockClass::ExecCache);
        let mut cache = self.exec_cache.lock();
        if let Some(newest) = newest {
            cache.retain(|k, _| k.ssids.iter().copied().max() >= Some(newest));
        }
        cache.insert(key, value);
    }

    /// Drop every memoized structure derived from a snapshot id for which
    /// `dead` holds — called when those ids stop being readable (prune,
    /// discard) so the cache can never outlive the data it mirrors.
    fn exec_cache_purge(&self, dead: impl Fn(SnapshotId) -> bool) {
        let _lo = lockorder::acquired(LockClass::ExecCache);
        self.exec_cache
            .lock()
            .retain(|k, _| !k.ssids.iter().any(|&s| dead(s)));
    }

    /// Wire this store into `registry`: operation counters and latency
    /// histograms labelled `store=<name>`.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry) {
        let labels = [("store", self.name.as_str())];
        *self.telemetry.write() = Some(Arc::new(StoreTelemetry {
            writes: registry.counter("snapshot_writes_total", &labels),
            reads: registry.counter("snapshot_reads_total", &labels),
            scans: registry.counter("snapshot_scans_total", &labels),
            write_us: registry.histogram("snapshot_write_us", &labels),
            read_us: registry.histogram("snapshot_read_us", &labels),
            scan_us: registry.histogram("snapshot_scan_us", &labels),
        }));
    }

    fn telemetry(&self) -> Option<Arc<StoreTelemetry>> {
        self.telemetry.read().clone()
    }

    /// The store's table name (`snapshot_<operator>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register the state-object schema for SQL exposure.
    pub fn set_value_schema(&self, schema: Arc<Schema>) {
        *self.value_schema.write() = Some(schema);
    }

    /// The registered state-object schema, if any.
    pub fn value_schema(&self) -> Option<Arc<Schema>> {
        self.value_schema.read().clone()
    }

    /// The partition that owns `key` (same partitioner as the live map).
    pub fn partition_of(&self, key: &Value) -> PartitionId {
        self.partitioner.partition_of(key)
    }

    /// Number of partitions (partition-parallel scans slice on this).
    pub fn partition_count(&self) -> u32 {
        self.partitioner.partition_count()
    }

    /// Phase-1 write: store one partition's entries for checkpoint `ssid`.
    ///
    /// `full` marks a complete view; otherwise the entries are a delta
    /// against the previous checkpoint, with `None` tombstoning removals.
    /// Writing the same `(ssid, partition)` twice replaces the first attempt
    /// (coordinator retry).
    pub fn write_partition(
        &self,
        ssid: SnapshotId,
        pid: PartitionId,
        entries: Vec<(Value, Option<Value>)>,
        full: bool,
    ) {
        let tel = self.telemetry();
        let start = tel.as_ref().map(|_| Instant::now());
        if let Some(wal) = self.wal.get() {
            // Durable record first, in-memory version map second: a kill
            // between the two costs nothing (the round is unsealed either
            // way). A WAL write error is fail-stop — continuing would let
            // the disk silently fall behind the commit point.
            wal.append(ssid.0, pid.0, full, &entries)
                .expect("WAL phase-1 append failed");
        }
        let mut bytes = 0u64;
        let mut map = HashMap::with_capacity(entries.len());
        for (k, v) in entries {
            bytes += entry_bytes(&k, v.as_ref());
            map.insert(k, v);
        }
        let _lo = lockorder::acquired(LockClass::SnapshotPartition);
        let mut part = self.parts[pid.0 as usize].write();
        if let Some(old) = part
            .versions
            .insert(ssid.0, VersionMap { full, entries: map })
        {
            self.approx_bytes
                .fetch_sub(version_bytes(&old), Ordering::Relaxed);
        }
        self.approx_bytes.fetch_add(bytes, Ordering::Relaxed);
        if let (Some(t), Some(s)) = (tel.as_ref(), start) {
            t.writes.inc();
            t.write_us.record(s.elapsed().as_micros() as u64);
        }
    }

    /// Erase an aborted checkpoint attempt everywhere.
    pub fn discard(&self, ssid: SnapshotId) {
        for part in &self.parts {
            let _lo = lockorder::acquired(LockClass::SnapshotPartition);
            let mut guard = part.write();
            if let Some(old) = guard.versions.remove(&ssid.0) {
                self.approx_bytes
                    .fetch_sub(version_bytes(&old), Ordering::Relaxed);
            }
        }
        if let Some(wal) = self.wal.get() {
            wal.discard(ssid.0);
        }
        self.exec_cache_purge(|s| s == ssid);
    }

    /// Load one recovered version directly into the partition map,
    /// bypassing the WAL (the record being loaded came *from* the WAL).
    pub fn load_recovered(
        &self,
        ssid: u64,
        pid: u32,
        full: bool,
        entries: Vec<(Value, Option<Value>)>,
    ) {
        let mut bytes = 0u64;
        let mut map = HashMap::with_capacity(entries.len());
        for (k, v) in entries {
            bytes += entry_bytes(&k, v.as_ref());
            map.insert(k, v);
        }
        let _lo = lockorder::acquired(LockClass::SnapshotPartition);
        let mut part = self.parts[pid as usize].write();
        if let Some(old) = part
            .versions
            .insert(ssid, VersionMap { full, entries: map })
        {
            self.approx_bytes
                .fetch_sub(version_bytes(&old), Ordering::Relaxed);
        }
        self.approx_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record that recovery restored nothing below `min_sealed`: reads
    /// under it report the same pruned error a live prune would produce.
    pub fn note_recovered_floor(&self, min_sealed: u64) {
        self.pruned_below.fetch_max(min_sealed, Ordering::AcqRel);
    }

    /// Point read of `key` as of snapshot `ssid`.
    ///
    /// Walks version maps newest-first starting at `ssid`; the first map
    /// mentioning the key decides (tombstone ⇒ `None`); a full map terminates
    /// the walk.
    pub fn read_at(&self, ssid: SnapshotId, key: &Value) -> SqResult<Option<Value>> {
        self.check_not_pruned(ssid)?;
        let tel = self.telemetry();
        let start = tel.as_ref().map(|_| Instant::now());
        let out = (|| {
            let _lo = lockorder::acquired(LockClass::SnapshotPartition);
            let part = self.parts[self.partition_of(key).0 as usize].read();
            for (_, vm) in part.versions.range(..=ssid.0).rev() {
                if let Some(v) = vm.entries.get(key) {
                    return v.clone();
                }
                if vm.full {
                    return None;
                }
            }
            None
        })();
        if let (Some(t), Some(s)) = (tel.as_ref(), start) {
            t.reads.inc();
            t.read_us.record(s.elapsed().as_micros() as u64);
        }
        Ok(out)
    }

    /// Scan the complete state as of snapshot `ssid`.
    ///
    /// This is the differential read of §VI-A: per partition, walk versions
    /// newest-first from `ssid`, keep the first occurrence of each key, stop
    /// at a full map. The second element of the return is the number of
    /// version maps consulted (the "chain length" the incremental-vs-full
    /// experiments report).
    pub fn scan_at(&self, ssid: SnapshotId) -> SqResult<(Vec<(Value, Value)>, usize)> {
        self.check_not_pruned(ssid)?;
        let tel = self.telemetry();
        let start = tel.as_ref().map(|_| Instant::now());
        let mut out = Vec::new();
        let mut maps_consulted = 0usize;
        for part in &self.parts {
            let _lo = lockorder::acquired(LockClass::SnapshotPartition);
            let guard = part.read();
            let mut seen: HashMap<&Value, ()> = HashMap::new();
            for (_, vm) in guard.versions.range(..=ssid.0).rev() {
                maps_consulted += 1;
                for (k, v) in vm.entries.iter() {
                    if seen.contains_key(k) {
                        continue;
                    }
                    seen.insert(k, ());
                    if let Some(value) = v {
                        out.push((k.clone(), value.clone()));
                    }
                }
                if vm.full {
                    break;
                }
            }
        }
        if let (Some(t), Some(s)) = (tel.as_ref(), start) {
            t.scans.inc();
            t.scan_us.record(s.elapsed().as_micros() as u64);
        }
        Ok((out, maps_consulted))
    }

    /// Scan one partition's state as of `ssid` (used by recovery, which
    /// restores each operator instance's partitions independently).
    pub fn scan_partition_at(
        &self,
        ssid: SnapshotId,
        pid: PartitionId,
    ) -> SqResult<Vec<(Value, Value)>> {
        self.check_not_pruned(ssid)?;
        let guard = self.parts[pid.0 as usize].read();
        let mut seen: HashMap<&Value, ()> = HashMap::new();
        let mut out = Vec::new();
        for (_, vm) in guard.versions.range(..=ssid.0).rev() {
            for (k, v) in vm.entries.iter() {
                if seen.contains_key(k) {
                    continue;
                }
                seen.insert(k, ());
                if let Some(value) = v {
                    out.push((k.clone(), value.clone()));
                }
            }
            if vm.full {
                break;
            }
        }
        Ok(out)
    }

    /// Streaming variant of [`scan_partition_at`](Self::scan_partition_at):
    /// resolves the partition's view as of `ssid` and hands each live
    /// `(key, value)` to `f` by reference, without materializing an entry
    /// vector. Visit order is identical to `scan_partition_at` on the same
    /// store (the version walk and per-version entry iteration are the
    /// same), which columnar scans rely on for row-order equivalence.
    pub fn for_each_partition_at(
        &self,
        ssid: SnapshotId,
        pid: PartitionId,
        mut f: impl FnMut(&Value, &Value),
    ) -> SqResult<()> {
        self.check_not_pruned(ssid)?;
        let guard = self.parts[pid.0 as usize].read();
        let mut seen: HashMap<&Value, ()> = HashMap::new();
        for (_, vm) in guard.versions.range(..=ssid.0).rev() {
            for (k, v) in vm.entries.iter() {
                if seen.contains_key(k) {
                    continue;
                }
                seen.insert(k, ());
                if let Some(value) = v {
                    f(k, value);
                }
            }
            if vm.full {
                break;
            }
        }
        Ok(())
    }

    /// Every `(ssid, key, value)` across a set of committed snapshot ids,
    /// each id fully resolved. Powers SQL scans of `snapshot_<op>` without an
    /// `ssid` predicate ("a result set can integrate the state of multiple
    /// snapshot versions with explicit mention of each pair's version").
    pub fn scan_versions(&self, ssids: &[SnapshotId]) -> SqResult<Vec<(SnapshotId, Value, Value)>> {
        let mut out = Vec::new();
        for &ssid in ssids {
            let (entries, _) = self.scan_at(ssid)?;
            out.extend(entries.into_iter().map(|(k, v)| (ssid, k, v)));
        }
        Ok(out)
    }

    /// Distinct snapshot ids currently stored, ascending.
    pub fn stored_ssids(&self) -> Vec<SnapshotId> {
        let mut ids: Vec<u64> = Vec::new();
        for part in &self.parts {
            for id in part.read().versions.keys() {
                if !ids.contains(id) {
                    ids.push(*id);
                }
            }
        }
        ids.sort_unstable();
        ids.into_iter().map(SnapshotId).collect()
    }

    /// Fold every version at or below `oldest_retained` into a single
    /// complete base at `oldest_retained`, dropping tombstones.
    ///
    /// Afterwards, reads at ids below `oldest_retained` fail with
    /// [`SqError::NotFound`]; reads at or above it are unaffected. This is
    /// the paper's pruning of obsolete states, bounding both snapshot memory
    /// and the differential-read chain length.
    pub fn prune_below(&self, oldest_retained: SnapshotId) {
        for part in &self.parts {
            let mut guard = part.write();
            let to_fold: Vec<u64> = guard
                .versions
                .range(..=oldest_retained.0)
                .map(|(id, _)| *id)
                .collect();
            if to_fold.len() <= 1 {
                // Zero or one version at/below the horizon: if exactly one, it
                // already is the base (mark it full — it has nothing older to
                // depend on).
                if let Some(id) = to_fold.first() {
                    if let Some(vm) = guard.versions.get_mut(id) {
                        vm.full = true;
                    }
                }
                continue;
            }
            // Resolve oldest→newest so later deltas win, then drop tombstones:
            // in a complete base an absent key means "not present".
            let mut folded: HashMap<Value, Option<Value>> = HashMap::new();
            for id in &to_fold {
                let vm = guard.versions.remove(id).expect("id listed above");
                self.approx_bytes
                    .fetch_sub(version_bytes(&vm), Ordering::Relaxed);
                for (k, v) in vm.entries {
                    folded.insert(k, v);
                }
            }
            folded.retain(|_, v| v.is_some());
            let mut bytes = 0u64;
            for (k, v) in folded.iter() {
                bytes += entry_bytes(k, v.as_ref());
            }
            self.approx_bytes.fetch_add(bytes, Ordering::Relaxed);
            guard.versions.insert(
                oldest_retained.0,
                VersionMap {
                    full: true,
                    entries: folded,
                },
            );
        }
        self.pruned_below
            .fetch_max(oldest_retained.0, Ordering::AcqRel);
        if let Some(wal) = self.wal.get() {
            // Retention on disk follows retention in memory: fold segments
            // whose stale-version count passed the configured threshold.
            wal.maybe_compact(oldest_retained.0)
                .expect("WAL compaction failed");
        }
        self.exec_cache_purge(|s| s < oldest_retained);
    }

    /// Physically remove every stored version of `key` (right-to-erasure
    /// support, paper §III "Auditing and Compliance": organizations "need to
    /// provide even their internal state on request" — and, under GDPR
    /// article 17, to erase it). Returns how many stored entries were
    /// removed. The key simply stops existing at every retained snapshot id.
    pub fn erase_key(&self, key: &Value) -> usize {
        let mut part = self.parts[self.partition_of(key).0 as usize].write();
        let mut removed = 0;
        for vm in part.versions.values_mut() {
            if let Some(old) = vm.entries.remove(key) {
                self.approx_bytes
                    .fetch_sub(entry_bytes(key, old.as_ref()), Ordering::Relaxed);
                removed += 1;
            }
        }
        drop(part);
        // Erasure rewrites history in place, so every memoized structure may
        // still carry the key — drop them all.
        if removed > 0 {
            self.exec_cache_purge(|_| true);
        }
        removed
    }

    /// Resolved per-partition `(rows, bytes)` as of snapshot `ssid`: exactly
    /// what a scan at that id would return from each partition, including
    /// the backward differential walk. Backs `sys_partitions` rows for
    /// snapshot tables.
    pub fn resolved_partition_stats(&self, ssid: SnapshotId) -> SqResult<Vec<(u64, u64)>> {
        self.check_not_pruned(ssid)?;
        let mut out = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            let _lo = lockorder::acquired(LockClass::SnapshotPartition);
            let guard = part.read();
            let mut seen: HashMap<&Value, ()> = HashMap::new();
            let mut rows = 0u64;
            let mut bytes = 0u64;
            for (_, vm) in guard.versions.range(..=ssid.0).rev() {
                for (k, v) in vm.entries.iter() {
                    if seen.contains_key(k) {
                        continue;
                    }
                    seen.insert(k, ());
                    if let Some(value) = v {
                        rows += 1;
                        bytes += entry_bytes(k, Some(value));
                    }
                }
                if vm.full {
                    break;
                }
            }
            out.push((rows, bytes));
        }
        Ok(out)
    }

    /// Per-version statistics: `(ssid, stored entries, approx bytes)` for
    /// every snapshot id currently held, ascending. Backs the `sys_snapshots`
    /// system table.
    pub fn version_stats(&self) -> Vec<(SnapshotId, usize, u64)> {
        let mut per_ssid: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
        for part in &self.parts {
            let guard = part.read();
            for (id, vm) in guard.versions.iter() {
                let slot = per_ssid.entry(*id).or_insert((0, 0));
                slot.0 += vm.entries.len();
                slot.1 += version_bytes(vm);
            }
        }
        per_ssid
            .into_iter()
            .map(|(id, (entries, bytes))| (SnapshotId(id), entries, bytes))
            .collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SnapshotStats {
        let mut stored_entries = 0usize;
        let mut ids: Vec<u64> = Vec::new();
        for part in &self.parts {
            let guard = part.read();
            for (id, vm) in guard.versions.iter() {
                stored_entries += vm.entries.len();
                if !ids.contains(id) {
                    ids.push(*id);
                }
            }
        }
        SnapshotStats {
            retained_versions: ids.len(),
            stored_entries,
            approx_bytes: self.approx_bytes.load(Ordering::Relaxed) as usize,
        }
    }

    fn check_not_pruned(&self, ssid: SnapshotId) -> SqResult<()> {
        let floor = self.pruned_below.load(Ordering::Acquire);
        if ssid.0 < floor {
            return Err(SqError::NotFound(format!(
                "snapshot {ssid} of {} was pruned (oldest retained: ss{floor})",
                self.name
            )));
        }
        Ok(())
    }
}

fn entry_bytes(key: &Value, value: Option<&Value>) -> u64 {
    (encoded_len(key) + value.map(encoded_len).unwrap_or(1) + 8) as u64
}

fn version_bytes(vm: &VersionMap) -> u64 {
    vm.entries
        .iter()
        .map(|(k, v)| entry_bytes(k, v.as_ref()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SnapshotStore {
        SnapshotStore::new("orders", Partitioner::new(8))
    }

    /// Write `entries` routed to their correct partitions.
    fn write_all(s: &SnapshotStore, ssid: u64, entries: Vec<(Value, Option<Value>)>, full: bool) {
        let mut by_pid: HashMap<u32, Vec<(Value, Option<Value>)>> = HashMap::new();
        for (k, v) in entries {
            by_pid.entry(s.partition_of(&k).0).or_default().push((k, v));
        }
        // Even partitions not touched get an (empty) write in full mode so the
        // version exists everywhere — mirrors what operator instances do.
        for pid in 0..8 {
            let e = by_pid.remove(&pid).unwrap_or_default();
            s.write_partition(SnapshotId(ssid), PartitionId(pid), e, full);
        }
    }

    #[test]
    fn named_after_operator() {
        assert_eq!(store().name(), "snapshot_orders");
    }

    #[test]
    fn full_snapshots_read_their_own_version() {
        let s = store();
        write_all(&s, 1, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        write_all(&s, 2, vec![(Value::Int(1), Some(Value::Int(20)))], true);
        assert_eq!(
            s.read_at(SnapshotId(1), &Value::Int(1)).unwrap(),
            Some(Value::Int(10))
        );
        assert_eq!(
            s.read_at(SnapshotId(2), &Value::Int(1)).unwrap(),
            Some(Value::Int(20))
        );
    }

    #[test]
    fn full_map_terminates_backward_walk() {
        let s = store();
        // Key 2 exists only in the (full) version 1; version 2 is also full
        // and omits it, so at ssid 2 the key is gone.
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(99))),
            ],
            true,
        );
        write_all(&s, 2, vec![(Value::Int(1), Some(Value::Int(11)))], true);
        assert_eq!(s.read_at(SnapshotId(2), &Value::Int(2)).unwrap(), None);
        assert_eq!(
            s.read_at(SnapshotId(1), &Value::Int(2)).unwrap(),
            Some(Value::Int(99))
        );
    }

    #[test]
    fn incremental_walks_backwards_for_untouched_keys() {
        let s = store();
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
            ],
            true, // first checkpoint is always complete
        );
        write_all(&s, 2, vec![(Value::Int(1), Some(Value::Int(11)))], false);
        write_all(&s, 3, vec![(Value::Int(1), Some(Value::Int(12)))], false);
        // Key 2 untouched since ssid 1: resolves through the chain.
        assert_eq!(
            s.read_at(SnapshotId(3), &Value::Int(2)).unwrap(),
            Some(Value::Int(20))
        );
        assert_eq!(
            s.read_at(SnapshotId(3), &Value::Int(1)).unwrap(),
            Some(Value::Int(12))
        );
        assert_eq!(
            s.read_at(SnapshotId(2), &Value::Int(1)).unwrap(),
            Some(Value::Int(11))
        );
    }

    #[test]
    fn tombstones_delete_in_deltas() {
        let s = store();
        write_all(&s, 1, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        write_all(&s, 2, vec![(Value::Int(1), None)], false);
        assert_eq!(s.read_at(SnapshotId(2), &Value::Int(1)).unwrap(), None);
        assert_eq!(
            s.read_at(SnapshotId(1), &Value::Int(1)).unwrap(),
            Some(Value::Int(10))
        );
        let (scan, _) = s.scan_at(SnapshotId(2)).unwrap();
        assert!(scan.is_empty());
    }

    #[test]
    fn scan_at_resolves_differentially() {
        let s = store();
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
                (Value::Int(3), Some(Value::Int(30))),
            ],
            true,
        );
        write_all(
            &s,
            2,
            vec![(Value::Int(2), Some(Value::Int(21))), (Value::Int(3), None)],
            false,
        );
        let (mut scan, consulted) = s.scan_at(SnapshotId(2)).unwrap();
        scan.sort();
        assert_eq!(
            scan,
            vec![
                (Value::Int(1), Value::Int(10)),
                (Value::Int(2), Value::Int(21)),
            ]
        );
        assert!(consulted >= 8, "walked both versions across partitions");
    }

    #[test]
    fn unknown_ssid_scans_resolve_to_older_state() {
        // Querying a not-yet-written ssid resolves to the newest available
        // (callers gate on the registry's committed id; the store is lenient).
        let s = store();
        write_all(&s, 1, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        assert_eq!(
            s.read_at(SnapshotId(5), &Value::Int(1)).unwrap(),
            Some(Value::Int(10))
        );
    }

    #[test]
    fn discard_erases_aborted_attempt() {
        let s = store();
        write_all(&s, 1, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        write_all(&s, 2, vec![(Value::Int(1), Some(Value::Int(99)))], false);
        s.discard(SnapshotId(2));
        assert_eq!(
            s.read_at(SnapshotId(2), &Value::Int(1)).unwrap(),
            Some(Value::Int(10)),
            "aborted write must not be visible"
        );
        assert_eq!(s.stored_ssids(), vec![SnapshotId(1)]);
    }

    #[test]
    fn prune_folds_deltas_into_base() {
        let s = store();
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
            ],
            true,
        );
        write_all(&s, 2, vec![(Value::Int(1), Some(Value::Int(11)))], false);
        write_all(&s, 3, vec![(Value::Int(2), None)], false);
        write_all(&s, 4, vec![(Value::Int(1), Some(Value::Int(12)))], false);
        s.prune_below(SnapshotId(3));
        // ssid 3 must still resolve exactly as before pruning.
        assert_eq!(
            s.read_at(SnapshotId(3), &Value::Int(1)).unwrap(),
            Some(Value::Int(11))
        );
        assert_eq!(s.read_at(SnapshotId(3), &Value::Int(2)).unwrap(), None);
        assert_eq!(
            s.read_at(SnapshotId(4), &Value::Int(1)).unwrap(),
            Some(Value::Int(12))
        );
        // Below the horizon: gone.
        assert!(matches!(
            s.read_at(SnapshotId(2), &Value::Int(1)),
            Err(SqError::NotFound(_))
        ));
        assert!(matches!(
            s.scan_at(SnapshotId(1)),
            Err(SqError::NotFound(_))
        ));
        // Only two ids remain: the folded base (3) and the delta (4).
        assert_eq!(s.stored_ssids(), vec![SnapshotId(3), SnapshotId(4)]);
    }

    #[test]
    fn prune_marks_single_survivor_as_base() {
        let s = store();
        write_all(&s, 1, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        write_all(&s, 2, vec![(Value::Int(2), Some(Value::Int(20)))], false);
        s.prune_below(SnapshotId(2));
        // After folding, a scan at 2 must still see both keys.
        let (mut scan, _) = s.scan_at(SnapshotId(2)).unwrap();
        scan.sort();
        assert_eq!(scan.len(), 2);
    }

    #[test]
    fn scan_versions_labels_rows_with_their_ssid() {
        let s = store();
        write_all(&s, 1, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        write_all(&s, 2, vec![(Value::Int(1), Some(Value::Int(11)))], false);
        let rows = s.scan_versions(&[SnapshotId(1), SnapshotId(2)]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&(SnapshotId(1), Value::Int(1), Value::Int(10))));
        assert!(rows.contains(&(SnapshotId(2), Value::Int(1), Value::Int(11))));
    }

    #[test]
    fn stats_track_entries_and_bytes() {
        let s = store();
        assert_eq!(s.stats().stored_entries, 0);
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
            ],
            true,
        );
        let st = s.stats();
        assert_eq!(st.retained_versions, 1);
        assert_eq!(st.stored_entries, 2);
        assert!(st.approx_bytes > 0);
        write_all(&s, 2, vec![(Value::Int(1), None)], false);
        assert_eq!(s.stats().retained_versions, 2);
        assert_eq!(s.stats().stored_entries, 3);
    }

    #[test]
    fn version_stats_report_per_ssid_entries_and_bytes() {
        let s = store();
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
            ],
            true,
        );
        write_all(&s, 2, vec![(Value::Int(1), None)], false);
        let stats = s.version_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!((stats[0].0, stats[0].1), (SnapshotId(1), 2));
        assert_eq!((stats[1].0, stats[1].1), (SnapshotId(2), 1));
        assert!(stats[0].2 > 0);
        let total: u64 = stats.iter().map(|(_, _, b)| *b).sum();
        assert_eq!(total as usize, s.stats().approx_bytes);
    }

    #[test]
    fn resolved_partition_stats_match_scans() {
        let s = store();
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
                (Value::Int(3), Some(Value::Int(30))),
            ],
            true,
        );
        write_all(
            &s,
            2,
            vec![(Value::Int(2), Some(Value::Int(21))), (Value::Int(3), None)],
            false,
        );
        for ssid in [1u64, 2] {
            let stats = s.resolved_partition_stats(SnapshotId(ssid)).unwrap();
            assert_eq!(stats.len(), 8);
            let (scan, _) = s.scan_at(SnapshotId(ssid)).unwrap();
            assert_eq!(
                stats.iter().map(|(r, _)| r).sum::<u64>(),
                scan.len() as u64,
                "ssid {ssid} totals"
            );
            // Per partition, rows match the per-partition resolved scan.
            for (pid, (rows, bytes)) in stats.iter().enumerate() {
                let part = s
                    .scan_partition_at(SnapshotId(ssid), PartitionId(pid as u32))
                    .unwrap();
                assert_eq!(*rows, part.len() as u64);
                if part.is_empty() {
                    assert_eq!(*bytes, 0);
                }
            }
        }
        s.prune_below(SnapshotId(2));
        assert!(s.resolved_partition_stats(SnapshotId(1)).is_err());
    }

    #[test]
    fn attached_telemetry_counts_store_operations() {
        use squery_common::telemetry::MetricsRegistry;
        let s = store();
        let reg = MetricsRegistry::new();
        s.attach_telemetry(&reg);
        write_all(&s, 1, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        s.read_at(SnapshotId(1), &Value::Int(1)).unwrap();
        s.scan_at(SnapshotId(1)).unwrap();
        let l = [("store", "snapshot_orders")];
        assert_eq!(reg.counter_value("snapshot_writes_total", &l), Some(8));
        assert_eq!(reg.counter_value("snapshot_reads_total", &l), Some(1));
        assert_eq!(reg.counter_value("snapshot_scans_total", &l), Some(1));
    }

    #[test]
    fn erase_key_removes_every_version() {
        let s = store();
        write_all(
            &s,
            1,
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
            ],
            true,
        );
        write_all(&s, 2, vec![(Value::Int(1), Some(Value::Int(11)))], false);
        let removed = s.erase_key(&Value::Int(1));
        assert_eq!(removed, 2, "both stored versions physically removed");
        assert_eq!(s.read_at(SnapshotId(1), &Value::Int(1)).unwrap(), None);
        assert_eq!(s.read_at(SnapshotId(2), &Value::Int(1)).unwrap(), None);
        // Other keys untouched.
        assert_eq!(
            s.read_at(SnapshotId(2), &Value::Int(2)).unwrap(),
            Some(Value::Int(20))
        );
        assert_eq!(s.erase_key(&Value::Int(99)), 0);
    }

    #[test]
    fn rewriting_same_ssid_replaces() {
        let s = store();
        let pid = s.partition_of(&Value::Int(1));
        s.write_partition(
            SnapshotId(1),
            pid,
            vec![(Value::Int(1), Some(Value::Int(10)))],
            true,
        );
        s.write_partition(
            SnapshotId(1),
            pid,
            vec![(Value::Int(1), Some(Value::Int(77)))],
            true,
        );
        assert_eq!(
            s.read_at(SnapshotId(1), &Value::Int(1)).unwrap(),
            Some(Value::Int(77))
        );
        assert_eq!(s.stats().stored_entries, 1);
    }

    #[test]
    fn exec_cache_roundtrip_and_newer_snapshot_evicts() {
        let s = store();
        let v1: ExecCached = Arc::new(vec![1u64, 2, 3]);
        s.exec_cache_put("batches", &[SnapshotId(1)], 0, &[0, 2], v1);
        let hit = s
            .exec_cache_get("batches", &[SnapshotId(1)], 0, &[0, 2])
            .expect("cached");
        assert_eq!(*hit.downcast::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
        // Different kind / slice / cols are distinct entries.
        assert!(s
            .exec_cache_get("join", &[SnapshotId(1)], 0, &[0, 2])
            .is_none());
        assert!(s
            .exec_cache_get("batches", &[SnapshotId(1)], 1, &[0, 2])
            .is_none());
        assert!(s
            .exec_cache_get("batches", &[SnapshotId(1)], 0, &[0])
            .is_none());
        // A newer snapshot's insert evicts the older snapshot's entries.
        s.exec_cache_put("batches", &[SnapshotId(2)], 0, &[0, 2], Arc::new(0u8));
        assert!(s
            .exec_cache_get("batches", &[SnapshotId(1)], 0, &[0, 2])
            .is_none());
        assert!(s
            .exec_cache_get("batches", &[SnapshotId(2)], 0, &[0, 2])
            .is_some());
    }

    #[test]
    fn exec_cache_purged_by_prune_discard_and_erase() {
        let s = store();
        s.exec_cache_put("batches", &[SnapshotId(3)], 0, &[0], Arc::new(0u8));
        s.exec_cache_put("batches", &[SnapshotId(5)], 0, &[0], Arc::new(0u8));
        s.prune_below(SnapshotId(5));
        assert!(s
            .exec_cache_get("batches", &[SnapshotId(3)], 0, &[0])
            .is_none());
        assert!(s
            .exec_cache_get("batches", &[SnapshotId(5)], 0, &[0])
            .is_some());
        s.discard(SnapshotId(5));
        assert!(s
            .exec_cache_get("batches", &[SnapshotId(5)], 0, &[0])
            .is_none());

        write_all(&s, 7, vec![(Value::Int(1), Some(Value::Int(10)))], true);
        s.exec_cache_put("join", &[SnapshotId(7)], u32::MAX, &[0], Arc::new(0u8));
        assert_eq!(s.erase_key(&Value::Int(1)), 1);
        assert!(s
            .exec_cache_get("join", &[SnapshotId(7)], u32::MAX, &[0])
            .is_none());
    }
}
