//! The snapshot registry: the atomic commit point of the checkpoint 2PC.
//!
//! The paper (§VI-A): *"S-QUERY ensures that the latest snapshot is atomically
//! acknowledged across the distributed system in order to guarantee that a
//! query is answered from the most recent snapshot at the time the query is
//! issued"*, and (§VII-B) the atomic flip is what evades phantom reads in the
//! snapshot-isolation argument. Figure 1's caption is the behavioural spec:
//! while snapshot 9 is still in progress, queries keep reading snapshot 8.
//!
//! The registry also owns version retention (§VI-A "Snapshot Versions"): by
//! default the two most recent committed versions are kept — constant memory,
//! and always at least one queryable version — and committing a new snapshot
//! yields the prune horizon the stores should fold up to.

use parking_lot::Mutex;
use squery_common::lockorder::{self, LockClass};
use squery_common::{SnapshotId, SqError, SqResult};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of committed snapshot versions to retain.
pub const DEFAULT_RETAINED_VERSIONS: usize = 2;

/// Event-time freshness of one committed snapshot: the global low watermark
/// of the consistent cut (minimum over the acks that sealed it) and the
/// stamp of the phase-2 seal. Both fields are µs since the unix epoch —
/// the sealing coordinator rebases its engine-clock values before they are
/// persisted, so they remain comparable after a cold-start recovery and
/// across independent clock instances. Either field may be 0 when unknown —
/// pre-watermark WAL history recovers as all-zero freshness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotFreshness {
    /// Global low watermark (µs since the unix epoch, rebased from the
    /// `Record::src_ts` frontier by the sealing coordinator); 0 = unknown.
    pub watermark_us: u64,
    /// Seal time (µs since the unix epoch); 0 = unknown.
    pub sealed_at_us: u64,
}

/// Lifecycle and retention authority for snapshot ids.
pub struct SnapshotRegistry {
    latest_committed: AtomicU64,
    next_ssid: AtomicU64,
    in_progress: Mutex<Option<SnapshotId>>,
    committed: Mutex<VecDeque<(SnapshotId, SnapshotFreshness)>>,
    retained_versions: AtomicU64,
}

impl SnapshotRegistry {
    /// A fresh registry with the default retention of two versions.
    pub fn new() -> SnapshotRegistry {
        SnapshotRegistry::with_retention(DEFAULT_RETAINED_VERSIONS)
    }

    /// A registry retaining `versions` committed snapshots (minimum 1).
    pub fn with_retention(versions: usize) -> SnapshotRegistry {
        SnapshotRegistry {
            latest_committed: AtomicU64::new(0),
            next_ssid: AtomicU64::new(1),
            in_progress: Mutex::new(None),
            committed: Mutex::new(VecDeque::new()),
            retained_versions: AtomicU64::new(versions.max(1) as u64),
        }
    }

    /// How many committed versions are retained.
    pub fn retained_versions(&self) -> usize {
        self.retained_versions.load(Ordering::Relaxed) as usize
    }

    /// Change the retention window (minimum 1). Takes effect at next commit.
    pub fn set_retained_versions(&self, versions: usize) {
        self.retained_versions
            .store(versions.max(1) as u64, Ordering::Relaxed);
    }

    /// The latest committed snapshot id; [`SnapshotId::NONE`] before the
    /// first commit. This is the single atomic read every query starts from.
    pub fn latest_committed(&self) -> SnapshotId {
        SnapshotId(self.latest_committed.load(Ordering::Acquire))
    }

    /// The snapshot id currently being written (phase 1 underway), if any.
    pub fn in_progress(&self) -> Option<SnapshotId> {
        let _lo = lockorder::acquired(LockClass::RegistryInProgress);
        *self.in_progress.lock()
    }

    /// All currently retained committed ids, oldest first.
    pub fn committed_ssids(&self) -> Vec<SnapshotId> {
        let _lo = lockorder::acquired(LockClass::RegistryCommitted);
        self.committed.lock().iter().map(|(s, _)| *s).collect()
    }

    /// The freshness recorded for a retained committed snapshot, or `None`
    /// if `ssid` is not committed/retained.
    pub fn freshness(&self, ssid: SnapshotId) -> Option<SnapshotFreshness> {
        let _lo = lockorder::acquired(LockClass::RegistryCommitted);
        self.committed
            .lock()
            .iter()
            .find(|(s, _)| *s == ssid)
            .map(|(_, f)| *f)
    }

    /// Freshness of every retained committed snapshot, oldest first — one
    /// lock acquisition, so the set is a consistent cut of the registry.
    pub fn freshness_all(&self) -> Vec<(SnapshotId, SnapshotFreshness)> {
        let _lo = lockorder::acquired(LockClass::RegistryCommitted);
        self.committed.lock().iter().copied().collect()
    }

    /// The full snapshot context a query pins at start: the latest committed
    /// id (`None` before the first commit) plus every retained committed id,
    /// oldest first — read under **one** lock acquisition.
    ///
    /// Reading `latest_committed()` and `committed_ssids()` separately leaves
    /// a window where a checkpoint commits in between, so two scans of one
    /// query could resolve different ids. This method is the race-free read
    /// every query should start from.
    pub fn query_context(&self) -> (Option<SnapshotId>, Vec<SnapshotId>) {
        let _lo = lockorder::acquired(LockClass::RegistryCommitted);
        let committed = self.committed.lock();
        (
            committed.back().map(|(s, _)| *s),
            committed.iter().map(|(s, _)| *s).collect(),
        )
    }

    /// Start a new checkpoint: allocates the next snapshot id and marks it in
    /// progress. Fails if another checkpoint is already in flight (the
    /// coordinator serializes checkpoints, like Jet).
    pub fn begin(&self) -> SqResult<SnapshotId> {
        let _lo = lockorder::acquired(LockClass::RegistryInProgress);
        let mut in_progress = self.in_progress.lock();
        if let Some(cur) = *in_progress {
            return Err(SqError::Storage(format!(
                "checkpoint {cur} still in progress"
            )));
        }
        let ssid = SnapshotId(self.next_ssid.fetch_add(1, Ordering::AcqRel));
        *in_progress = Some(ssid);
        Ok(ssid)
    }

    /// Phase 2: atomically publish `ssid` as the latest committed snapshot.
    ///
    /// Returns the prune horizon — the oldest id still retained — which the
    /// caller applies to every snapshot store (`prune_below`). Fails if
    /// `ssid` is not the in-progress checkpoint.
    pub fn commit(&self, ssid: SnapshotId) -> SqResult<SnapshotId> {
        self.commit_with_freshness(ssid, SnapshotFreshness::default())
    }

    /// [`commit`](Self::commit), also recording the round's event-time
    /// freshness so `sys_freshness` can bound the staleness of every query
    /// answered from this snapshot.
    pub fn commit_with_freshness(
        &self,
        ssid: SnapshotId,
        freshness: SnapshotFreshness,
    ) -> SqResult<SnapshotId> {
        let _lo = lockorder::acquired(LockClass::RegistryInProgress);
        let mut in_progress = self.in_progress.lock();
        if *in_progress != Some(ssid) {
            return Err(SqError::Storage(format!(
                "cannot commit {ssid}: not the in-progress checkpoint"
            )));
        }
        *in_progress = None;
        // Canonical order: `committed` nests inside `in_progress` (§9).
        let _co = lockorder::acquired(LockClass::RegistryCommitted);
        let mut committed = self.committed.lock();
        committed.push_back((ssid, freshness));
        let retain = self.retained_versions();
        while committed.len() > retain {
            committed.pop_front();
        }
        let horizon = committed.front().expect("just pushed").0;
        // The atomic flip: concurrent readers see either the previous id or
        // this one, never a partial state.
        self.latest_committed.store(ssid.0, Ordering::Release);
        Ok(horizon)
    }

    /// Cold-start restore: seed the registry with snapshot ids recovered
    /// from the WAL, as if each had been committed in order. `ssids` must
    /// be ascending; only the newest `retained_versions` are kept. The next
    /// allocated id continues past the newest recovered one, so post-restart
    /// checkpoints never reuse a sealed id.
    pub fn restore_committed(&self, ssids: &[SnapshotId]) {
        let with_freshness: Vec<(SnapshotId, SnapshotFreshness)> = ssids
            .iter()
            .map(|&s| (s, SnapshotFreshness::default()))
            .collect();
        self.restore_committed_with_freshness(&with_freshness);
    }

    /// [`restore_committed`](Self::restore_committed), also restoring each
    /// round's freshness as recovered from the WAL seal records.
    pub fn restore_committed_with_freshness(&self, ssids: &[(SnapshotId, SnapshotFreshness)]) {
        if ssids.is_empty() {
            return;
        }
        let _lo = lockorder::acquired(LockClass::RegistryInProgress);
        let mut in_progress = self.in_progress.lock();
        *in_progress = None;
        // Canonical order: `committed` nests inside `in_progress` (§9).
        let _co = lockorder::acquired(LockClass::RegistryCommitted);
        let mut committed = self.committed.lock();
        committed.clear();
        let retain = self.retained_versions();
        for &entry in &ssids[ssids.len().saturating_sub(retain)..] {
            committed.push_back(entry);
        }
        let newest = committed.back().expect("ssids non-empty").0;
        self.latest_committed.store(newest.0, Ordering::Release);
        self.next_ssid.fetch_max(newest.0 + 1, Ordering::AcqRel);
    }

    /// Abort the in-progress checkpoint (coordinator decided to give up;
    /// callers must also `discard` the stores' phase-1 writes).
    pub fn abort(&self, ssid: SnapshotId) -> SqResult<()> {
        let _lo = lockorder::acquired(LockClass::RegistryInProgress);
        let mut in_progress = self.in_progress.lock();
        if *in_progress != Some(ssid) {
            return Err(SqError::Storage(format!(
                "cannot abort {ssid}: not the in-progress checkpoint"
            )));
        }
        *in_progress = None;
        Ok(())
    }

    /// Resolve the snapshot id a query should read: an explicit requested id
    /// (validated to be committed and retained), or the latest committed.
    pub fn resolve_query_ssid(&self, requested: Option<SnapshotId>) -> SqResult<SnapshotId> {
        match requested {
            None => {
                let latest = self.latest_committed();
                if !latest.is_some() {
                    return Err(SqError::NotFound("no snapshot committed yet".into()));
                }
                Ok(latest)
            }
            Some(ssid) => {
                let _lo = lockorder::acquired(LockClass::RegistryCommitted);
                if self.committed.lock().iter().any(|(s, _)| *s == ssid) {
                    Ok(ssid)
                } else {
                    Err(SqError::NotFound(format!(
                        "snapshot {ssid} is not committed/retained"
                    )))
                }
            }
        }
    }
}

impl Default for SnapshotRegistry {
    fn default() -> Self {
        SnapshotRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn begin_commit_cycle_advances_latest() {
        let r = SnapshotRegistry::new();
        assert_eq!(r.latest_committed(), SnapshotId::NONE);
        let s1 = r.begin().unwrap();
        assert_eq!(s1, SnapshotId(1));
        assert_eq!(r.in_progress(), Some(s1));
        // Figure 1: while in progress, queries still see the previous state.
        assert_eq!(r.latest_committed(), SnapshotId::NONE);
        let horizon = r.commit(s1).unwrap();
        assert_eq!(horizon, s1);
        assert_eq!(r.latest_committed(), s1);
        assert_eq!(r.in_progress(), None);
    }

    #[test]
    fn restore_committed_seeds_registry_and_advances_ids() {
        let r = SnapshotRegistry::new();
        r.restore_committed(&[SnapshotId(3), SnapshotId(5), SnapshotId(6)]);
        // Default retention of two keeps only the newest two ids.
        assert_eq!(r.committed_ssids(), vec![SnapshotId(5), SnapshotId(6)]);
        assert_eq!(r.latest_committed(), SnapshotId(6));
        assert_eq!(r.in_progress(), None);
        // The next checkpoint continues past the recovered history.
        assert_eq!(r.begin().unwrap(), SnapshotId(7));
        // Restoring nothing is a no-op.
        let r2 = SnapshotRegistry::new();
        r2.restore_committed(&[]);
        assert_eq!(r2.latest_committed(), SnapshotId::NONE);
        assert_eq!(r2.begin().unwrap(), SnapshotId(1));
    }

    #[test]
    fn only_one_checkpoint_in_flight() {
        let r = SnapshotRegistry::new();
        let s1 = r.begin().unwrap();
        assert!(r.begin().is_err());
        r.commit(s1).unwrap();
        assert!(r.begin().is_ok());
    }

    #[test]
    fn commit_requires_matching_in_progress() {
        let r = SnapshotRegistry::new();
        assert!(r.commit(SnapshotId(1)).is_err());
        let s1 = r.begin().unwrap();
        assert!(r.commit(SnapshotId(99)).is_err());
        r.commit(s1).unwrap();
    }

    #[test]
    fn retention_keeps_last_two_by_default() {
        let r = SnapshotRegistry::new();
        let mut horizons = Vec::new();
        for _ in 0..4 {
            let s = r.begin().unwrap();
            horizons.push(r.commit(s).unwrap());
        }
        // After committing 1,2,3,4 with retention 2 the horizons were
        // 1,1,2,3 and ids 3,4 remain.
        assert_eq!(
            horizons,
            vec![SnapshotId(1), SnapshotId(1), SnapshotId(2), SnapshotId(3)]
        );
        assert_eq!(r.committed_ssids(), vec![SnapshotId(3), SnapshotId(4)]);
    }

    #[test]
    fn configurable_retention() {
        let r = SnapshotRegistry::with_retention(3);
        for _ in 0..5 {
            let s = r.begin().unwrap();
            r.commit(s).unwrap();
        }
        assert_eq!(
            r.committed_ssids(),
            vec![SnapshotId(3), SnapshotId(4), SnapshotId(5)]
        );
        assert_eq!(r.retained_versions(), 3);
    }

    #[test]
    fn abort_releases_in_progress_without_commit() {
        let r = SnapshotRegistry::new();
        let s1 = r.begin().unwrap();
        r.abort(s1).unwrap();
        assert_eq!(r.latest_committed(), SnapshotId::NONE);
        assert_eq!(r.in_progress(), None);
        // Ids are not reused after an abort.
        let s2 = r.begin().unwrap();
        assert_eq!(s2, SnapshotId(2));
    }

    #[test]
    fn resolve_query_ssid_defaults_to_latest() {
        let r = SnapshotRegistry::new();
        assert!(r.resolve_query_ssid(None).is_err(), "nothing committed yet");
        let s1 = r.begin().unwrap();
        r.commit(s1).unwrap();
        assert_eq!(r.resolve_query_ssid(None).unwrap(), s1);
        assert_eq!(r.resolve_query_ssid(Some(s1)).unwrap(), s1);
        assert!(r.resolve_query_ssid(Some(SnapshotId(9))).is_err());
    }

    #[test]
    fn resolve_rejects_pruned_ids() {
        let r = SnapshotRegistry::new();
        for _ in 0..3 {
            let s = r.begin().unwrap();
            r.commit(s).unwrap();
        }
        assert!(r.resolve_query_ssid(Some(SnapshotId(1))).is_err());
        assert!(r.resolve_query_ssid(Some(SnapshotId(2))).is_ok());
    }

    #[test]
    fn query_context_is_internally_consistent() {
        let r = SnapshotRegistry::new();
        assert_eq!(r.query_context(), (None, vec![]));
        for _ in 0..3 {
            let s = r.begin().unwrap();
            r.commit(s).unwrap();
        }
        let (latest, retained) = r.query_context();
        assert_eq!(latest, Some(SnapshotId(3)));
        assert_eq!(retained, vec![SnapshotId(2), SnapshotId(3)]);
        assert_eq!(
            latest,
            retained.last().copied(),
            "latest is always retained"
        );
    }

    /// The mid-query-checkpoint race the SQL layer must not see: the latest
    /// id returned by `query_context` is always a member of the retained set
    /// returned by the *same* call, even while commits are racing.
    #[test]
    fn query_context_atomic_under_concurrent_commits() {
        let r = Arc::new(SnapshotRegistry::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (latest, retained) = r.query_context();
                    if let Some(latest) = latest {
                        assert!(
                            retained.contains(&latest),
                            "latest {latest} missing from retained {retained:?}"
                        );
                        assert_eq!(retained.last(), Some(&latest));
                    }
                }
            })
        };
        for _ in 0..200 {
            let s = r.begin().unwrap();
            r.commit(s).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    }

    #[test]
    fn publication_is_atomic_under_concurrency() {
        let r = Arc::new(SnapshotRegistry::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let now = r.latest_committed().0;
                    assert!(now >= last, "latest_committed went backwards");
                    last = now;
                }
            })
        };
        for _ in 0..100 {
            let s = r.begin().unwrap();
            r.commit(s).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(r.latest_committed(), SnapshotId(100));
    }

    #[test]
    fn commit_records_freshness_and_retention_prunes_it() {
        let r = SnapshotRegistry::new();
        let s1 = r.begin().unwrap();
        r.commit_with_freshness(
            s1,
            SnapshotFreshness {
                watermark_us: 1_000,
                sealed_at_us: 2_000,
            },
        )
        .unwrap();
        assert_eq!(
            r.freshness(s1),
            Some(SnapshotFreshness {
                watermark_us: 1_000,
                sealed_at_us: 2_000,
            })
        );
        // Plain commit records unknown (zero) freshness.
        let s2 = r.begin().unwrap();
        r.commit(s2).unwrap();
        assert_eq!(r.freshness(s2), Some(SnapshotFreshness::default()));
        // Default retention of two prunes s1's freshness with its id.
        let s3 = r.begin().unwrap();
        r.commit_with_freshness(
            s3,
            SnapshotFreshness {
                watermark_us: 3_000,
                sealed_at_us: 4_000,
            },
        )
        .unwrap();
        assert_eq!(r.freshness(s1), None);
        let all = r.freshness_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, s2);
        assert_eq!(all[1], (s3, r.freshness(s3).unwrap()));
    }

    #[test]
    fn restore_with_freshness_round_trips() {
        let r = SnapshotRegistry::new();
        r.restore_committed_with_freshness(&[
            (SnapshotId(3), SnapshotFreshness::default()),
            (
                SnapshotId(5),
                SnapshotFreshness {
                    watermark_us: 50,
                    sealed_at_us: 55,
                },
            ),
            (
                SnapshotId(6),
                SnapshotFreshness {
                    watermark_us: 60,
                    sealed_at_us: 66,
                },
            ),
        ]);
        // Retention 2 keeps the newest two freshness entries.
        assert_eq!(r.freshness(SnapshotId(3)), None);
        assert_eq!(
            r.freshness(SnapshotId(5)),
            Some(SnapshotFreshness {
                watermark_us: 50,
                sealed_at_us: 55,
            })
        );
        assert_eq!(r.freshness(SnapshotId(6)).unwrap().watermark_us, 60);
        assert_eq!(r.latest_committed(), SnapshotId(6));
    }
}
