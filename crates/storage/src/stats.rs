//! Continuous state statistics: the grid-level aggregation layer.
//!
//! Two tiers, mirroring the tentpole split:
//!
//! 1. **Always-on accounting** lives in each [`crate::imap::IMap`] as
//!    relaxed per-partition atomics (rows, bytes, write/remove totals) —
//!    see `IMap::partition_stats`. It costs a handful of relaxed atomic
//!    ops per write and is never switched off.
//! 2. **Sampled sketches** live here, one [`TableSketches`] per live table
//!    behind the `SketchState` lock: an HLL distinct-count estimator fed by
//!    walking live partitions, a SpaceSaving heavy-hitter summary fed by
//!    the maps' armed recent-key rings, a skew coefficient over partition
//!    row counts, and write/remove rates from counter deltas. They update
//!    only when [`StateStats::sample`] runs (the runtime's sampler thread,
//!    interval from `SQueryConfig`) — when the sampler is off the only
//!    residual cost is one relaxed load per map write.
//!
//! [`StateStats::snapshot`] is the read side the `StatsCatalog` in
//! `squery-core` turns into the `sys_state_stats` / `sys_hot_keys` tables;
//! each sample also exports per-table gauges through the grid's
//! [`MetricsRegistry`], so Prometheus/JSON dumps carry the same numbers.

use crate::grid::Grid;
use parking_lot::Mutex;
use squery_common::lockorder::{self, LockClass};
use squery_common::sketch::{key_hash, skew_coefficient, HeavyHitter, Hll, SpaceSaving};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One table's sampled statistics, merged with its always-on accounting.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Live table name.
    pub table: String,
    /// Live entry count (sum of per-partition accounting).
    pub rows: u64,
    /// Approximate encoded bytes.
    pub bytes: u64,
    /// Total puts since map creation.
    pub writes: u64,
    /// Total removes since map creation.
    pub removes: u64,
    /// Puts per second over the last sampler interval.
    pub write_rate_per_s: f64,
    /// Removes per second over the last sampler interval.
    pub remove_rate_per_s: f64,
    /// HLL-estimated distinct keys ever written (since last reset).
    pub distinct_keys: u64,
    /// Partition-size skew coefficient (0 = perfectly uniform).
    pub skew: f64,
    /// Heavy hitters, highest estimated write count first.
    pub hot_keys: Vec<HeavyHitter>,
    /// Number of sampler passes that have observed this table.
    pub samples: u64,
}

struct TableSketches {
    hll: Hll,
    topk: SpaceSaving,
    skew: f64,
    samples: u64,
    last_writes: u64,
    last_removes: u64,
    last_sample: Option<Instant>,
    write_rate_per_s: f64,
    remove_rate_per_s: f64,
}

impl TableSketches {
    fn new(topk_capacity: usize) -> TableSketches {
        TableSketches {
            hll: Hll::new(),
            topk: SpaceSaving::new(topk_capacity),
            skew: 0.0,
            samples: 0,
            last_writes: 0,
            last_removes: 0,
            last_sample: None,
            write_rate_per_s: 0.0,
            remove_rate_per_s: 0.0,
        }
    }
}

/// Grid-wide sketch state and sampling entry points. One per [`Grid`].
pub struct StateStats {
    armed: AtomicBool,
    topk_capacity: AtomicUsize,
    samples_total: AtomicU64,
    sketches: Mutex<HashMap<String, TableSketches>>,
}

impl Default for StateStats {
    fn default() -> Self {
        StateStats::new()
    }
}

impl StateStats {
    /// Fresh, disarmed state with the default heavy-hitter capacity.
    pub fn new() -> StateStats {
        StateStats {
            armed: AtomicBool::new(false),
            topk_capacity: AtomicUsize::new(squery_common::sketch::DEFAULT_TOP_K),
            samples_total: AtomicU64::new(0),
            sketches: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the sampler is armed (maps collect recent keys).
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    pub(crate) fn set_armed(&self, on: bool) {
        self.armed.store(on, Ordering::Relaxed);
    }

    /// Set how many heavy hitters each table's sketch monitors. Applies to
    /// tables first seen after the call.
    pub fn set_hot_key_capacity(&self, capacity: usize) {
        self.topk_capacity.store(capacity.max(1), Ordering::Relaxed);
    }

    /// Total sampler passes across all tables.
    pub fn samples_total(&self) -> u64 {
        self.samples_total.load(Ordering::Relaxed)
    }

    /// Run one sampler pass over every live map in `grid`: drain the
    /// recent-key rings into the heavy-hitter sketches, walk live partitions
    /// into the HLL estimators, refresh skew and rates, and export the
    /// per-table gauges. Returns the number of tables sampled.
    pub fn sample(&self, grid: &Grid) -> usize {
        let t0 = Instant::now();
        let span = grid.telemetry().spans().start("stats_sample");
        let maps: Vec<_> = grid
            .map_names()
            .into_iter()
            .filter_map(|n| grid.get_map(&n))
            .collect();
        let mut exported: Vec<TableStats> = Vec::with_capacity(maps.len());
        for map in &maps {
            // Gather evidence before touching the sketch lock: the ring
            // drain takes StatsRing (rank 12) and the partition walk takes
            // PartitionMap (rank 10), both below SketchState (rank 13).
            let recent = map.drain_recent_keys();
            let part_stats = map.partition_stats();
            let mut hashes: Vec<u64> = Vec::new();
            for pid in 0..map.partitioner().partition_count() {
                map.for_each_in_partition(squery_common::PartitionId(pid), |k, _| {
                    hashes.push(key_hash(k));
                });
            }
            let rows_per_part: Vec<u64> = part_stats.iter().map(|s| s.rows).collect();
            let writes: u64 = part_stats.iter().map(|s| s.writes).sum();
            let removes: u64 = part_stats.iter().map(|s| s.removes).sum();
            let now = Instant::now();
            let stats = {
                let _so = lockorder::acquired(LockClass::SketchState);
                let mut tables = self.sketches.lock();
                let capacity = self.topk_capacity.load(Ordering::Relaxed);
                let sk = tables
                    .entry(map.name().to_string())
                    .or_insert_with(|| TableSketches::new(capacity));
                for h in &hashes {
                    sk.hll.offer_hash(*h);
                }
                for key in &recent {
                    sk.topk.offer(key);
                }
                sk.skew = skew_coefficient(&rows_per_part);
                if let Some(prev) = sk.last_sample {
                    let dt = now.duration_since(prev).as_secs_f64().max(1e-3);
                    sk.write_rate_per_s = writes.saturating_sub(sk.last_writes) as f64 / dt;
                    sk.remove_rate_per_s = removes.saturating_sub(sk.last_removes) as f64 / dt;
                }
                sk.last_sample = Some(now);
                sk.last_writes = writes;
                sk.last_removes = removes;
                sk.samples += 1;
                self.samples_total.fetch_add(1, Ordering::Relaxed);
                table_stats(map.name(), &part_stats, sk)
            };
            exported.push(stats);
        }
        // Gauge export outside the sketch lock (Telemetry ranks above
        // SketchState, but there is no reason to nest).
        let reg = grid.telemetry();
        for s in &exported {
            let labels = [("table", s.table.as_str())];
            reg.gauge("stats_distinct_keys", &labels)
                .set(s.distinct_keys as i64);
            reg.gauge("stats_hot_key_count", &labels)
                .set(s.hot_keys.len() as i64);
            reg.gauge("stats_skew_milli", &labels)
                .set((s.skew * 1000.0).round() as i64);
            reg.gauge("stats_write_rate_milli", &labels)
                .set((s.write_rate_per_s * 1000.0).round() as i64);
            reg.gauge("stats_remove_rate_milli", &labels)
                .set((s.remove_rate_per_s * 1000.0).round() as i64);
        }
        reg.counter("stats_samples_total", &[])
            .add(maps.len() as u64);
        reg.histogram("stats_sample_us", &[])
            .record(t0.elapsed().as_micros() as u64);
        drop(span);
        maps.len()
    }

    /// Current statistics for every live map, sorted by name. Counter
    /// fields (rows, bytes, writes, removes) come from the always-on
    /// write-path accounting and are live; sketch fields are zero until the
    /// first sampler pass covers the table.
    pub fn snapshot(&self, grid: &Grid) -> Vec<TableStats> {
        let mut out = Vec::new();
        let empty = TableSketches::new(1);
        let _so = lockorder::acquired(LockClass::SketchState);
        let tables = self.sketches.lock();
        for name in grid.map_names() {
            let Some(map) = grid.get_map(&name) else {
                continue;
            };
            let sk = tables.get(&name).unwrap_or(&empty);
            out.push(table_stats(&name, &map.partition_stats(), sk));
        }
        drop(tables);
        out.sort_by(|a, b| a.table.cmp(&b.table));
        out
    }

    /// Statistics for one table, if its live map exists. Sketch fields are
    /// zero until the first sampler pass covers the table.
    pub fn table(&self, grid: &Grid, name: &str) -> Option<TableStats> {
        let map = grid.get_map(name)?;
        let _so = lockorder::acquired(LockClass::SketchState);
        let tables = self.sketches.lock();
        let empty = TableSketches::new(1);
        let sk = tables.get(name).unwrap_or(&empty);
        Some(table_stats(name, &map.partition_stats(), sk))
    }

    /// Recovery hook: supervised restarts clear and reload live maps, so
    /// the rate baselines must re-anchor on the restored counters or the
    /// next sample would report a phantom churn spike (or, worse, negative
    /// deltas without the saturating math). Sketches survive — the key
    /// population is the same state, reloaded.
    pub fn note_recovery(&self, grid: &Grid) {
        let _so = lockorder::acquired(LockClass::SketchState);
        let mut tables = self.sketches.lock();
        for (name, sk) in tables.iter_mut() {
            let Some(map) = grid.get_map(name) else {
                continue;
            };
            let part_stats = map.partition_stats();
            sk.last_writes = part_stats.iter().map(|s| s.writes).sum();
            sk.last_removes = part_stats.iter().map(|s| s.removes).sum();
            sk.last_sample = None;
            sk.write_rate_per_s = 0.0;
            sk.remove_rate_per_s = 0.0;
        }
    }

    /// Drop all sketch state (tests and full resets).
    pub fn clear(&self) {
        let _so = lockorder::acquired(LockClass::SketchState);
        self.sketches.lock().clear();
        self.samples_total.store(0, Ordering::Relaxed);
    }
}

fn table_stats(
    name: &str,
    part_stats: &[crate::imap::PartitionStats],
    sk: &TableSketches,
) -> TableStats {
    TableStats {
        table: name.to_string(),
        rows: part_stats.iter().map(|s| s.rows).sum(),
        bytes: part_stats.iter().map(|s| s.bytes).sum(),
        writes: part_stats.iter().map(|s| s.writes).sum(),
        removes: part_stats.iter().map(|s| s.removes).sum(),
        write_rate_per_s: sk.write_rate_per_s,
        remove_rate_per_s: sk.remove_rate_per_s,
        distinct_keys: sk.hll.estimate().round() as u64,
        skew: sk.skew,
        hot_keys: sk.topk.top(usize::MAX),
        samples: sk.samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::Value;

    fn grid_with_data() -> std::sync::Arc<Grid> {
        let g = Grid::single_node();
        let m = g.map("orders");
        for i in 0..500i64 {
            m.put(Value::Int(i), Value::Int(i * 2));
        }
        g
    }

    #[test]
    fn sample_builds_sketches_and_exports_gauges() {
        let g = grid_with_data();
        g.arm_stats(true);
        // Writes after arming feed the heavy-hitter ring.
        let m = g.get_map("orders").unwrap();
        for _ in 0..50 {
            m.put(Value::Int(7), Value::Int(7));
        }
        let sampled = g.stats().sample(&g);
        assert_eq!(sampled, 1);
        let stats = g.stats().snapshot(&g);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.table, "orders");
        assert_eq!(s.rows, 500);
        let err = (s.distinct_keys as f64 - 500.0).abs() / 500.0;
        assert!(err < 0.05, "distinct ~500, got {}", s.distinct_keys);
        assert_eq!(s.hot_keys[0].key, Value::Int(7), "{:?}", s.hot_keys);
        assert!(s.skew >= 0.0);
        assert_eq!(s.samples, 1);
        assert_eq!(g.stats().samples_total(), 1);
        let labels = [("table", "orders")];
        let reg = g.telemetry();
        assert!(reg.gauge_value("stats_distinct_keys", &labels).unwrap() > 0);
        assert!(reg.gauge_value("stats_hot_key_count", &labels).unwrap() >= 1);
        assert_eq!(reg.counter_value("stats_samples_total", &[]), Some(1));
    }

    #[test]
    fn rates_follow_counter_deltas_and_recovery_resets_baselines() {
        let g = grid_with_data();
        g.stats().sample(&g);
        let m = g.get_map("orders").unwrap();
        for i in 0..100i64 {
            m.put(Value::Int(1000 + i), Value::Int(i));
        }
        g.stats().sample(&g);
        let s = g.stats().table(&g, "orders").unwrap();
        assert!(
            s.write_rate_per_s > 0.0,
            "second sample sees churn: {}",
            s.write_rate_per_s
        );
        // After a simulated recovery reset, the next sample must not claim
        // churn (and must never go negative).
        g.stats().note_recovery(&g);
        let s = g.stats().table(&g, "orders").unwrap();
        assert_eq!(s.write_rate_per_s, 0.0);
        g.stats().sample(&g);
        let s = g.stats().table(&g, "orders").unwrap();
        assert!(s.write_rate_per_s >= 0.0);
        assert_eq!(s.rows, 600);
    }

    #[test]
    fn disarmed_maps_collect_no_hot_keys() {
        let g = grid_with_data();
        assert!(!g.stats().is_armed());
        g.stats().sample(&g);
        let s = g.stats().table(&g, "orders").unwrap();
        assert!(s.hot_keys.is_empty(), "{:?}", s.hot_keys);
        // Distinct-count sampling still works: it walks live partitions.
        assert!(s.distinct_keys > 400);
    }

    #[test]
    fn arming_through_the_grid_reaches_existing_and_new_maps() {
        let g = Grid::single_node();
        let before = g.map("before");
        g.arm_stats(true);
        assert!(before.stats_armed(), "existing maps armed");
        let after = g.map("after");
        assert!(after.stats_armed(), "new maps arm on creation");
        g.arm_stats(false);
        assert!(!before.stats_armed());
        assert!(!after.stats_armed());
    }
}
