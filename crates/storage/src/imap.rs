//! `IMap`: the distributed map holding one operator's **live state**.
//!
//! Mirrors the paper's Table I — each entry is `key → state object`, the map
//! is named after its operator, and it is partitioned with the shared
//! partitioner so updates from the co-located operator instance are
//! node-local. External queries address the map by name through the SQL or
//! direct-object interfaces.
//!
//! Concurrency model: each partition's hash map sits behind a `RwLock`;
//! per-key access additionally serializes on a striped key lock (§VII-B's
//! key-level locking). Scans take only the partition read locks — they see a
//! live, possibly in-motion view, which is exactly the paper's live-state
//! semantics (read uncommitted across failures).

use crate::locks::LockStripes;
use parking_lot::{Mutex, RwLock};
use squery_common::codec::encoded_len;
use squery_common::lockorder::{self, LockClass};
use squery_common::metrics::SharedHistogram;
use squery_common::schema::Schema;
use squery_common::telemetry::{Counter, EventKind, Gauge, MetricsRegistry};
use squery_common::{PartitionId, Partitioner, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lock waits at or above this many µs also emit a `lock_contention`
/// engine event (every wait, contended or not, lands in the histogram).
pub const LOCK_CONTENTION_EVENT_US: u64 = 1_000;

/// Bound on the armed recent-key ring: enough for a sampler interval's worth
/// of hot-key evidence, small enough that an idle sampler costs nothing.
const RECENT_KEYS_CAP: usize = 4096;

/// Always-on accounting for one (table, partition): maintained with relaxed
/// atomics on the write path, read by `sys_partitions` and the stats
/// sampler. Counts are monotonic for `writes`/`removes` and clamped
/// non-negative for `rows`/`bytes` (bulk clears reset them exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Live entry count.
    pub rows: u64,
    /// Approximate encoded bytes (keys + values).
    pub bytes: u64,
    /// Total successful puts since creation.
    pub writes: u64,
    /// Total successful removes since creation.
    pub removes: u64,
}

#[derive(Default)]
struct PartStatCounters {
    rows: AtomicI64,
    bytes: AtomicI64,
    writes: AtomicU64,
    removes: AtomicU64,
}

impl PartStatCounters {
    fn snapshot(&self) -> PartitionStats {
        PartitionStats {
            rows: self.rows.load(Ordering::Relaxed).max(0) as u64,
            bytes: self.bytes.load(Ordering::Relaxed).max(0) as u64,
            writes: self.writes.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
        }
    }
}

/// Per-map handles into the engine-wide [`MetricsRegistry`], resolved once
/// at attach time so the hot path touches only atomics.
struct MapTelemetry {
    reads: Counter,
    writes: Counter,
    removes: Counter,
    read_us: SharedHistogram,
    write_us: SharedHistogram,
    lock_wait_us: SharedHistogram,
    entries: Gauge,
    bytes: Gauge,
    registry: MetricsRegistry,
}

impl MapTelemetry {
    fn lock_waited(&self, map: &str, wait_us: u64) {
        self.lock_wait_us.record(wait_us);
        if wait_us >= LOCK_CONTENTION_EVENT_US {
            self.registry.event(
                EventKind::LockContention,
                Some(map),
                None,
                Some(wait_us),
                "key lock wait",
            );
        }
    }
}

/// Callback invoked after every successful write (put/remove), used by the
/// grid to feed asynchronous replication. Arguments: partition, key, and the
/// new value (`None` for removals).
pub type WriteListener = Arc<dyn Fn(PartitionId, &Value, Option<&Value>) + Send + Sync>;

struct PartitionData {
    map: RwLock<HashMap<Value, Value>>,
    locks: LockStripes,
    stats: PartStatCounters,
}

/// A partitioned, concurrently accessible `key → state object` map.
pub struct IMap {
    name: String,
    partitioner: Partitioner,
    parts: Vec<PartitionData>,
    value_schema: RwLock<Option<Arc<Schema>>>,
    bytes: AtomicI64,
    write_listener: RwLock<Option<WriteListener>>,
    telemetry: RwLock<Option<Arc<MapTelemetry>>>,
    // Hot-key evidence for the stats sampler: when armed, put/remove push
    // the touched key into a bounded ring the sampler drains. One relaxed
    // load per write when disarmed.
    stats_armed: AtomicBool,
    recent_keys: Mutex<VecDeque<Value>>,
}

impl IMap {
    /// A new empty map named `name`, partitioned by `partitioner`.
    pub fn new(name: impl Into<String>, partitioner: Partitioner) -> IMap {
        let parts = (0..partitioner.partition_count())
            .map(|_| PartitionData {
                map: RwLock::new(HashMap::new()),
                locks: LockStripes::new(),
                stats: PartStatCounters::default(),
            })
            .collect();
        IMap {
            name: name.into(),
            partitioner,
            parts,
            value_schema: RwLock::new(None),
            bytes: AtomicI64::new(0),
            write_listener: RwLock::new(None),
            telemetry: RwLock::new(None),
            stats_armed: AtomicBool::new(false),
            recent_keys: Mutex::new(VecDeque::new()),
        }
    }

    /// Wire this map into `registry`: per-operation counters and latency
    /// histograms plus `map_entries` / `map_bytes` gauges, all labelled
    /// `map=<name>`. Gauges are seeded from current contents so attaching
    /// after a restore still reports the truth.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry) {
        let labels = [("map", self.name.as_str())];
        let tel = MapTelemetry {
            reads: registry.counter("map_reads_total", &labels),
            writes: registry.counter("map_writes_total", &labels),
            removes: registry.counter("map_removes_total", &labels),
            read_us: registry.histogram("map_read_us", &labels),
            write_us: registry.histogram("map_write_us", &labels),
            lock_wait_us: registry.histogram("map_lock_wait_us", &labels),
            entries: registry.gauge("map_entries", &labels),
            bytes: registry.gauge("map_bytes", &labels),
            registry: registry.clone(),
        };
        tel.entries.set(self.len() as i64);
        tel.bytes.set(self.bytes.load(Ordering::Relaxed));
        *self.telemetry.write() = Some(Arc::new(tel));
    }

    fn telemetry(&self) -> Option<Arc<MapTelemetry>> {
        self.telemetry.read().clone()
    }

    /// The map's name (equals the owning operator's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partitioner this map shares with the stream engine.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The partition that owns `key`.
    pub fn partition_of(&self, key: &Value) -> PartitionId {
        self.partitioner.partition_of(key)
    }

    /// Register the schema of this map's state objects so the SQL layer can
    /// expose their fields as columns.
    pub fn set_value_schema(&self, schema: Arc<Schema>) {
        *self.value_schema.write() = Some(schema);
    }

    /// The registered state-object schema, if any.
    pub fn value_schema(&self) -> Option<Arc<Schema>> {
        self.value_schema.read().clone()
    }

    /// Install the write listener (replication hook). At most one.
    pub fn set_write_listener(&self, listener: WriteListener) {
        *self.write_listener.write() = Some(listener);
    }

    /// Point read under the key lock.
    pub fn get(&self, key: &Value) -> Option<Value> {
        let tel = self.telemetry();
        let start = tel.as_ref().map(|_| Instant::now());
        let part = &self.parts[self.partition_of(key).0 as usize];
        let (_k, wait_us) = part.locks.lock_timed(key);
        let out = {
            let _mo = lockorder::acquired(LockClass::PartitionMap);
            part.map.read().get(key).cloned()
        };
        if let (Some(t), Some(s)) = (tel.as_ref(), start) {
            t.reads.inc();
            t.read_us.record(s.elapsed().as_micros() as u64);
            t.lock_waited(&self.name, wait_us);
        }
        out
    }

    /// Insert/overwrite under the key lock; returns the previous value.
    pub fn put(&self, key: Value, value: Value) -> Option<Value> {
        let tel = self.telemetry();
        let start = tel.as_ref().map(|_| Instant::now());
        let pid = self.partition_of(&key);
        let part = &self.parts[pid.0 as usize];
        let (_k, wait_us) = part.locks.lock_timed(&key);
        let delta_new = (encoded_len(&key) + encoded_len(&value)) as i64;
        let old = {
            let _mo = lockorder::acquired(LockClass::PartitionMap);
            part.map.write().insert(key.clone(), value.clone())
        };
        let delta_old = old
            .as_ref()
            .map(|o| (encoded_len(&key) + encoded_len(o)) as i64)
            .unwrap_or(0);
        self.bytes
            .fetch_add(delta_new - delta_old, Ordering::Relaxed);
        if old.is_none() {
            part.stats.rows.fetch_add(1, Ordering::Relaxed);
        }
        part.stats
            .bytes
            .fetch_add(delta_new - delta_old, Ordering::Relaxed);
        part.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.note_recent_key(&key);
        if let (Some(t), Some(s)) = (tel.as_ref(), start) {
            t.writes.inc();
            t.write_us.record(s.elapsed().as_micros() as u64);
            t.lock_waited(&self.name, wait_us);
            if old.is_none() {
                t.entries.add(1);
            }
            t.bytes.add(delta_new - delta_old);
        }
        let listener = {
            let _lo = lockorder::acquired(LockClass::MapMeta);
            self.write_listener.read().clone()
        };
        if let Some(listener) = listener {
            listener(pid, &key, Some(&value));
        }
        old
    }

    /// Remove under the key lock; returns the removed value.
    pub fn remove(&self, key: &Value) -> Option<Value> {
        let tel = self.telemetry();
        let start = tel.as_ref().map(|_| Instant::now());
        let pid = self.partition_of(key);
        let part = &self.parts[pid.0 as usize];
        let (_k, wait_us) = part.locks.lock_timed(key);
        let old = {
            let _mo = lockorder::acquired(LockClass::PartitionMap);
            part.map.write().remove(key)
        };
        let mut removed_bytes = 0i64;
        if let Some(old_v) = &old {
            removed_bytes = (encoded_len(key) + encoded_len(old_v)) as i64;
            self.bytes.fetch_sub(removed_bytes, Ordering::Relaxed);
            part.stats.rows.fetch_sub(1, Ordering::Relaxed);
            part.stats.bytes.fetch_sub(removed_bytes, Ordering::Relaxed);
            part.stats.removes.fetch_add(1, Ordering::Relaxed);
            self.note_recent_key(key);
        }
        if let (Some(t), Some(s)) = (tel.as_ref(), start) {
            t.removes.inc();
            t.write_us.record(s.elapsed().as_micros() as u64);
            t.lock_waited(&self.name, wait_us);
            if old.is_some() {
                t.entries.add(-1);
                t.bytes.add(-removed_bytes);
            }
        }
        if old.is_some() {
            let listener = {
                let _lo = lockorder::acquired(LockClass::MapMeta);
                self.write_listener.read().clone()
            };
            if let Some(listener) = listener {
                listener(pid, key, None);
            }
        }
        old
    }

    /// Whether the map contains `key`.
    pub fn contains_key(&self, key: &Value) -> bool {
        let part = &self.parts[self.partition_of(key).0 as usize];
        part.map.read().contains_key(key)
    }

    /// Total entry count across partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.map.read().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.map.read().is_empty())
    }

    /// Remove all entries.
    pub fn clear(&self) {
        for p in &self.parts {
            let mut guard = p.map.write();
            guard.clear();
            p.stats.rows.store(0, Ordering::Relaxed);
            p.stats.bytes.store(0, Ordering::Relaxed);
        }
        self.bytes.store(0, Ordering::Relaxed);
        self.resync_gauges();
    }

    /// Re-seed the entry/byte gauges after a bulk mutation that bypasses the
    /// per-key accounting (clear, silent load, partition drop).
    fn resync_gauges(&self) {
        if let Some(t) = self.telemetry() {
            t.entries.set(self.len() as i64);
            t.bytes.set(self.bytes.load(Ordering::Relaxed));
        }
    }

    /// Approximate encoded size of all entries, in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed).max(0) as usize
    }

    /// Snapshot copy of every entry (partition read locks, taken one at a
    /// time — a live scan, not an atomic cut).
    pub fn entries(&self) -> Vec<(Value, Value)> {
        let mut out = Vec::with_capacity(self.len());
        for p in &self.parts {
            let _mo = lockorder::acquired(LockClass::PartitionMap);
            let guard = p.map.read();
            out.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Snapshot copy of one partition's entries.
    pub fn entries_in_partition(&self, pid: PartitionId) -> Vec<(Value, Value)> {
        let _mo = lockorder::acquired(LockClass::PartitionMap);
        let guard = self.parts[pid.0 as usize].map.read();
        guard.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Visit every entry without materializing (still per-partition locked).
    pub fn for_each(&self, mut f: impl FnMut(&Value, &Value)) {
        for p in &self.parts {
            let _mo = lockorder::acquired(LockClass::PartitionMap);
            let guard = p.map.read();
            for (k, v) in guard.iter() {
                f(k, v);
            }
        }
    }

    /// Visit one partition's entries without materializing — the scan entry
    /// point partition-parallel query workers slice on. Takes only that
    /// partition's read lock, so workers on distinct partitions never
    /// contend.
    pub fn for_each_in_partition(&self, pid: PartitionId, mut f: impl FnMut(&Value, &Value)) {
        let _mo = lockorder::acquired(LockClass::PartitionMap);
        let guard = self.parts[pid.0 as usize].map.read();
        for (k, v) in guard.iter() {
            f(k, v);
        }
    }

    /// Read multiple keys under their key locks.
    pub fn get_all(&self, keys: &[Value]) -> Vec<(Value, Option<Value>)> {
        keys.iter().map(|k| (k.clone(), self.get(k))).collect()
    }

    /// Bulk-load entries without firing the write listener (recovery path:
    /// rebuilding live state from a committed snapshot must not re-replicate).
    pub fn load_silent(&self, entries: Vec<(Value, Value)>) {
        for (key, value) in entries {
            let pid = self.partition_of(&key);
            let part = &self.parts[pid.0 as usize];
            let delta = (encoded_len(&key) + encoded_len(&value)) as i64;
            let old = part.map.write().insert(key.clone(), value);
            let inserted = old.is_none();
            let delta_old = old
                .map(|o| (encoded_len(&key) + encoded_len(&o)) as i64)
                .unwrap_or(0);
            self.bytes.fetch_add(delta - delta_old, Ordering::Relaxed);
            // Row/byte accounting must stay exact through recovery, but the
            // restore is not churn: write/remove rate counters are untouched.
            if inserted {
                part.stats.rows.fetch_add(1, Ordering::Relaxed);
            }
            part.stats
                .bytes
                .fetch_add(delta - delta_old, Ordering::Relaxed);
        }
        self.resync_gauges();
    }

    /// Drop every entry in the given partitions (node-failure simulation).
    pub fn clear_partitions(&self, pids: &[PartitionId]) {
        for pid in pids {
            let part = &self.parts[pid.0 as usize];
            let mut guard = part.map.write();
            for (k, v) in guard.iter() {
                let delta = (encoded_len(k) + encoded_len(v)) as i64;
                self.bytes.fetch_sub(delta, Ordering::Relaxed);
            }
            guard.clear();
            part.stats.rows.store(0, Ordering::Relaxed);
            part.stats.bytes.store(0, Ordering::Relaxed);
        }
        self.resync_gauges();
    }

    /// Per-partition accounting snapshot, one entry per partition in
    /// partition order. Relaxed reads: the row/byte/rate numbers are each
    /// individually accurate but not an atomic cut across partitions.
    pub fn partition_stats(&self) -> Vec<PartitionStats> {
        self.parts.iter().map(|p| p.stats.snapshot()).collect()
    }

    /// Arm or disarm recent-key collection for the stats sampler.
    pub fn arm_stats(&self, on: bool) {
        self.stats_armed.store(on, Ordering::Relaxed);
        if !on {
            let _so = lockorder::acquired(LockClass::StatsRing);
            self.recent_keys.lock().clear();
        }
    }

    /// Whether recent-key collection is armed.
    pub fn stats_armed(&self) -> bool {
        self.stats_armed.load(Ordering::Relaxed)
    }

    /// Drain the armed recent-key ring (sampler-side; empty when disarmed).
    pub fn drain_recent_keys(&self) -> Vec<Value> {
        let _so = lockorder::acquired(LockClass::StatsRing);
        self.recent_keys.lock().drain(..).collect()
    }

    fn note_recent_key(&self, key: &Value) {
        if !self.stats_armed.load(Ordering::Relaxed) {
            return;
        }
        let _so = lockorder::acquired(LockClass::StatsRing);
        let mut ring = self.recent_keys.lock();
        if ring.len() == RECENT_KEYS_CAP {
            ring.pop_front();
        }
        ring.push_back(key.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::schema::schema;
    use squery_common::DataType;

    fn map() -> IMap {
        IMap::new("average", Partitioner::new(16))
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let m = map();
        assert_eq!(m.put(Value::Int(1), Value::str("a")), None);
        assert_eq!(m.get(&Value::Int(1)), Some(Value::str("a")));
        assert!(m.contains_key(&Value::Int(1)));
        assert_eq!(m.put(Value::Int(1), Value::str("b")), Some(Value::str("a")));
        assert_eq!(m.remove(&Value::Int(1)), Some(Value::str("b")));
        assert_eq!(m.get(&Value::Int(1)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn len_and_entries_span_partitions() {
        let m = map();
        for i in 0..100 {
            m.put(Value::Int(i), Value::Int(i * 2));
        }
        assert_eq!(m.len(), 100);
        let mut entries = m.entries();
        entries.sort();
        assert_eq!(entries.len(), 100);
        assert_eq!(entries[0], (Value::Int(0), Value::Int(0)));
        let mut seen = 0;
        m.for_each(|_, _| seen += 1);
        assert_eq!(seen, 100);
    }

    #[test]
    fn byte_accounting_tracks_updates() {
        let m = map();
        assert_eq!(m.approximate_bytes(), 0);
        m.put(Value::Int(1), Value::str("hello"));
        let after_put = m.approximate_bytes();
        assert!(after_put > 0);
        m.put(Value::Int(1), Value::str("hi"));
        assert!(m.approximate_bytes() < after_put, "smaller value shrinks");
        m.remove(&Value::Int(1));
        assert_eq!(m.approximate_bytes(), 0);
    }

    #[test]
    fn clear_resets() {
        let m = map();
        for i in 0..10 {
            m.put(Value::Int(i), Value::Int(i));
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.approximate_bytes(), 0);
    }

    #[test]
    fn value_schema_registration() {
        let m = map();
        assert!(m.value_schema().is_none());
        let s = schema(vec![("count", DataType::Int), ("total", DataType::Int)]);
        m.set_value_schema(Arc::clone(&s));
        assert_eq!(m.value_schema().unwrap().as_ref(), s.as_ref());
    }

    #[test]
    fn write_listener_sees_puts_and_removes() {
        use parking_lot::Mutex;
        let m = map();
        let log: Arc<Mutex<Vec<(Value, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        m.set_write_listener(Arc::new(move |_pid, key, value| {
            log2.lock().push((key.clone(), value.is_some()));
        }));
        m.put(Value::Int(5), Value::Int(50));
        m.remove(&Value::Int(5));
        m.remove(&Value::Int(6)); // absent: no event
        let events = log.lock().clone();
        assert_eq!(events, vec![(Value::Int(5), true), (Value::Int(5), false)]);
    }

    #[test]
    fn load_silent_skips_listener() {
        use std::sync::atomic::AtomicUsize;
        let m = map();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        m.set_write_listener(Arc::new(move |_, _, _| {
            hits2.fetch_add(1, Ordering::Relaxed);
        }));
        m.load_silent(vec![(Value::Int(1), Value::Int(10))]);
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert_eq!(m.get(&Value::Int(1)), Some(Value::Int(10)));
    }

    #[test]
    fn clear_partitions_drops_only_those() {
        let m = map();
        for i in 0..200 {
            m.put(Value::Int(i), Value::Int(i));
        }
        let victim = m.partition_of(&Value::Int(0));
        let victim_count = m.entries_in_partition(victim).len();
        assert!(victim_count > 0);
        m.clear_partitions(&[victim]);
        assert_eq!(m.entries_in_partition(victim).len(), 0);
        assert_eq!(m.len(), 200 - victim_count);
    }

    #[test]
    fn per_partition_visits_cover_the_whole_map() {
        let m = map();
        for i in 0..100 {
            m.put(Value::Int(i), Value::Int(i * 2));
        }
        let mut seen = 0usize;
        for pid in 0..m.partitioner().partition_count() {
            let mut in_part = 0usize;
            m.for_each_in_partition(PartitionId(pid), |k, v| {
                assert_eq!(m.partition_of(k), PartitionId(pid));
                assert_eq!(v.as_int(), k.as_int().map(|i| i * 2));
                in_part += 1;
            });
            assert_eq!(in_part, m.entries_in_partition(PartitionId(pid)).len());
            seen += in_part;
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn concurrent_writers_distinct_keys() {
        let m = Arc::new(IMap::new("mt", Partitioner::new(8)));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000i64 {
                        m.put(Value::Int(t * 10_000 + i), Value::Int(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.len(), 4000);
    }

    #[test]
    fn attached_telemetry_tracks_ops_and_gauges() {
        use squery_common::telemetry::MetricsRegistry;
        let m = map();
        let reg = MetricsRegistry::new();
        m.put(Value::Int(1), Value::Int(10)); // pre-attach write: uncounted
        m.attach_telemetry(&reg);
        let l = [("map", "average")];
        assert_eq!(reg.gauge_value("map_entries", &l), Some(1), "seeded");
        m.put(Value::Int(2), Value::Int(20));
        m.get(&Value::Int(2));
        m.remove(&Value::Int(1));
        assert_eq!(reg.counter_value("map_writes_total", &l), Some(1));
        assert_eq!(reg.counter_value("map_reads_total", &l), Some(1));
        assert_eq!(reg.counter_value("map_removes_total", &l), Some(1));
        assert_eq!(reg.gauge_value("map_entries", &l), Some(1));
        assert_eq!(
            reg.gauge_value("map_bytes", &l),
            Some(m.approximate_bytes() as i64)
        );
        m.clear();
        assert_eq!(reg.gauge_value("map_entries", &l), Some(0));
        assert_eq!(reg.gauge_value("map_bytes", &l), Some(0));
    }

    #[test]
    fn partition_stats_track_every_mutation_path() {
        let m = map();
        for i in 0..100 {
            m.put(Value::Int(i), Value::Int(i));
        }
        let stats = m.partition_stats();
        assert_eq!(stats.len(), m.partitioner().partition_count() as usize);
        assert_eq!(stats.iter().map(|s| s.rows).sum::<u64>(), 100);
        assert_eq!(stats.iter().map(|s| s.writes).sum::<u64>(), 100);
        assert_eq!(
            stats.iter().map(|s| s.bytes).sum::<u64>(),
            m.approximate_bytes() as u64
        );
        // Rows agree with each partition's actual contents.
        for (pid, s) in stats.iter().enumerate() {
            assert_eq!(
                s.rows as usize,
                m.entries_in_partition(PartitionId(pid as u32)).len()
            );
        }
        // Overwrites change bytes, not rows.
        m.put(Value::Int(0), Value::str("wider value"));
        let total_rows = |m: &IMap| m.partition_stats().iter().map(|s| s.rows).sum::<u64>();
        assert_eq!(total_rows(&m), 100);
        m.remove(&Value::Int(0));
        assert_eq!(total_rows(&m), 99);
        assert_eq!(
            m.partition_stats().iter().map(|s| s.removes).sum::<u64>(),
            1
        );
        // Bulk paths reset rows/bytes exactly.
        let victim = m.partition_of(&Value::Int(1));
        m.clear_partitions(&[victim]);
        assert_eq!(m.partition_stats()[victim.0 as usize].rows, 0);
        assert_eq!(m.partition_stats()[victim.0 as usize].bytes, 0);
        m.clear();
        assert_eq!(total_rows(&m), 0);
        // A silent (recovery) load restores rows without counting as churn.
        let writes_before = m.partition_stats().iter().map(|s| s.writes).sum::<u64>();
        m.load_silent(vec![(Value::Int(7), Value::Int(70))]);
        assert_eq!(total_rows(&m), 1);
        assert_eq!(
            m.partition_stats().iter().map(|s| s.writes).sum::<u64>(),
            writes_before
        );
    }

    #[test]
    fn recent_key_ring_is_gated_on_arming() {
        let m = map();
        m.put(Value::Int(1), Value::Int(1));
        assert!(!m.stats_armed());
        assert!(m.drain_recent_keys().is_empty(), "disarmed: no collection");
        m.arm_stats(true);
        m.put(Value::Int(2), Value::Int(2));
        m.put(Value::Int(2), Value::Int(3));
        m.remove(&Value::Int(1));
        let keys = m.drain_recent_keys();
        assert_eq!(keys, vec![Value::Int(2), Value::Int(2), Value::Int(1)]);
        assert!(m.drain_recent_keys().is_empty(), "drain empties the ring");
        m.put(Value::Int(9), Value::Int(9));
        m.arm_stats(false);
        assert!(
            m.drain_recent_keys().is_empty(),
            "disarming clears the ring"
        );
    }

    #[test]
    fn get_all_returns_hits_and_misses() {
        let m = map();
        m.put(Value::Int(1), Value::Int(10));
        let res = m.get_all(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(res[0], (Value::Int(1), Some(Value::Int(10))));
        assert_eq!(res[1], (Value::Int(2), None));
    }
}
